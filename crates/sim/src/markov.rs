//! Exact expected makespans via absorbing-Markov-chain analysis.
//!
//! The execution of a regimen is a Markov chain on the lattice of
//! unfinished-job sets (the left-hand picture of Figure 1 in the paper);
//! executing an oblivious schedule cyclically gives a Markov chain on pairs
//! (unfinished set, position within the schedule). For small `n` these chains
//! can be solved exactly, giving the ground-truth expected makespans that the
//! approximation-ratio experiments compare against.
//!
//! Both solvers run in `O(3ⁿ · m)`-ish time (submask enumeration over the
//! subset lattice), so they are restricted to `n ≤ MAX_EXACT_JOBS` jobs.

use suu_core::{Assignment, JobSet, SuuInstance};

use crate::executor::effective_assignment;

/// Maximum number of jobs the exact solvers accept (3ⁿ work and 2ⁿ memory).
pub const MAX_EXACT_JOBS: usize = 20;

/// Exact expected makespan of a regimen: a policy whose assignment depends
/// only on the set of unfinished jobs (Definition 2.2).
///
/// Returns `f64::INFINITY` if from some reachable state no job can make
/// progress (which cannot happen for valid instances when the regimen always
/// assigns at least one machine with positive probability to an eligible job).
///
/// # Panics
///
/// Panics if the instance has more than [`MAX_EXACT_JOBS`] jobs.
pub fn exact_expected_makespan_regimen(
    instance: &SuuInstance,
    mut regimen: impl FnMut(&JobSet) -> Assignment,
) -> f64 {
    let n = instance.num_jobs();
    assert!(
        n <= MAX_EXACT_JOBS,
        "exact evaluation supports at most {MAX_EXACT_JOBS} jobs, got {n}"
    );
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut expect = vec![0.0f64; (full as usize) + 1];

    for mask in 1..=full {
        let unfinished = jobset_from_mask(n, mask);
        let proposed = regimen(&unfinished);
        let effective = effective_assignment(instance, &proposed, &unfinished);
        let value = expected_steps_from(instance, mask, &effective, |sub| expect[sub as usize]);
        expect[mask as usize] = value;
    }
    expect[full as usize]
}

/// Exact expected makespan of an oblivious schedule executed cyclically
/// (`Σ∞` in the paper's notation), starting at the first step of the schedule.
///
/// Returns `f64::INFINITY` if the schedule is empty or leaves some job with no
/// chance of progress through an entire cycle.
///
/// # Panics
///
/// Panics if the instance has more than [`MAX_EXACT_JOBS`] jobs.
pub fn exact_expected_makespan_oblivious_cyclic(
    instance: &SuuInstance,
    schedule: &suu_core::ObliviousSchedule,
) -> f64 {
    let n = instance.num_jobs();
    assert!(
        n <= MAX_EXACT_JOBS,
        "exact evaluation supports at most {MAX_EXACT_JOBS} jobs, got {n}"
    );
    let len = schedule.len();
    if len == 0 {
        return f64::INFINITY;
    }
    let full: u32 = (1u32 << n) - 1;
    // expect[mask][phase]
    let mut expect = vec![vec![0.0f64; len]; (full as usize) + 1];

    for mask in 1..=full {
        let unfinished = jobset_from_mask(n, mask);
        // For each phase φ compute a_φ (contribution of transitions to strictly
        // smaller sets) and b_φ (probability of staying in the same set).
        let mut a = vec![0.0f64; len];
        let mut b = vec![0.0f64; len];
        for phase in 0..len {
            let effective = effective_assignment(instance, schedule.step(phase), &unfinished);
            let next_phase = (phase + 1) % len;
            let (to_smaller, stay) = transition_split(instance, mask, &effective, |sub| {
                expect[sub as usize][next_phase]
            });
            a[phase] = 1.0 + to_smaller;
            b[phase] = stay;
        }
        // Solve e_φ = a_φ + b_φ · e_{φ+1 mod len} around the cycle.
        let b_product: f64 = b.iter().product();
        if b_product >= 1.0 - 1e-15 {
            for phase in 0..len {
                expect[mask as usize][phase] = f64::INFINITY;
            }
            continue;
        }
        // e_0 = Σ_k (Π_{i<k} b_i) a_k / (1 − Π b_i)
        let mut numer = 0.0;
        let mut prefix = 1.0;
        for k in 0..len {
            numer += prefix * a[k];
            prefix *= b[k];
        }
        let e0 = numer / (1.0 - b_product);
        expect[mask as usize][0] = e0;
        // Back-substitute the rest: e_φ = a_φ + b_φ e_{φ+1}, walking backwards.
        for phase in (1..len).rev() {
            let next = if phase + 1 == len {
                e0
            } else {
                expect[mask as usize][phase + 1]
            };
            expect[mask as usize][phase] = a[phase] + b[phase] * next;
        }
    }
    expect[full as usize][0]
}

/// Expected number of steps to absorption from `mask` for a time-homogeneous
/// step with the given effective assignment, given the expected values of all
/// strict submasks through `submask_value`.
fn expected_steps_from(
    instance: &SuuInstance,
    mask: u32,
    effective: &Assignment,
    submask_value: impl Fn(u32) -> f64,
) -> f64 {
    let (to_smaller, stay) = transition_split(instance, mask, effective, submask_value);
    if stay >= 1.0 - 1e-15 {
        return f64::INFINITY;
    }
    (1.0 + to_smaller) / (1.0 - stay)
}

/// Splits the one-step transition out of `mask` into
/// `(Σ_{∅ ≠ F ⊆ active} P(F) · value(mask \ F), P(stay))`.
fn transition_split(
    instance: &SuuInstance,
    mask: u32,
    effective: &Assignment,
    submask_value: impl Fn(u32) -> f64,
) -> (f64, f64) {
    // Per-job success probability under the effective assignment.
    let n = instance.num_jobs();
    let mut q = vec![0.0f64; n];
    for j in 0..n {
        if mask & (1 << j) != 0 {
            let machines = effective.machines_on(suu_core::JobId(j));
            if !machines.is_empty() {
                let probs: Vec<f64> = machines
                    .iter()
                    .map(|&i| instance.prob(i, suu_core::JobId(j)))
                    .collect();
                q[j] = suu_core::combined_success_probability(&probs);
            }
        }
    }
    // Active jobs: in the mask and with positive success probability.
    let active: Vec<usize> = (0..n)
        .filter(|&j| mask & (1 << j) != 0 && q[j] > 0.0)
        .collect();
    let k = active.len();
    if k == 0 {
        return (0.0, 1.0);
    }
    let mut to_smaller = 0.0;
    let mut stay = 0.0;
    // Enumerate all subsets F of the active set.
    for f_bits in 0..(1u32 << k) {
        let mut prob = 1.0;
        let mut finished_mask = 0u32;
        for (idx, &j) in active.iter().enumerate() {
            if f_bits & (1 << idx) != 0 {
                prob *= q[j];
                finished_mask |= 1 << j;
            } else {
                prob *= 1.0 - q[j];
            }
        }
        if finished_mask == 0 {
            stay += prob;
        } else {
            let sub = mask & !finished_mask;
            to_smaller += prob * submask_value(sub);
        }
    }
    (to_smaller, stay)
}

fn jobset_from_mask(n: usize, mask: u32) -> JobSet {
    JobSet::from_members(
        n,
        (0..n)
            .filter(|&j| mask & (1 << j) != 0)
            .map(suu_core::JobId),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use suu_core::{InstanceBuilder, JobId, MachineId, ObliviousSchedule, SchedulingPolicy};

    use crate::executor::{simulate_once, SimulationOptions, Simulator};

    fn geometric_instance(p: f64) -> SuuInstance {
        InstanceBuilder::new(1, 1)
            .probability(MachineId(0), JobId(0), p)
            .build()
            .unwrap()
    }

    #[test]
    fn single_job_regimen_matches_geometric_mean() {
        let instance = geometric_instance(0.25);
        let m = instance.num_machines();
        let exact =
            exact_expected_makespan_regimen(&instance, |_s| Assignment::all_on(m, JobId(0)));
        assert!((exact - 4.0).abs() < 1e-9);
    }

    #[test]
    fn two_independent_jobs_closed_form() {
        // Two jobs, one machine each with p = 0.5, worked in parallel by two
        // machines (machine 0 → job 0, machine 1 → job 1).
        // Expected makespan of max of two Geom(1/2) = Σ_t P(T ≥ t)
        // = Σ_{t≥1} 1 − (1 − 0.5^{t−1})² = 8/3.
        let instance = InstanceBuilder::new(2, 2)
            .probability(MachineId(0), JobId(0), 0.5)
            .probability(MachineId(1), JobId(1), 0.5)
            .probability(MachineId(0), JobId(1), 0.0)
            .probability(MachineId(1), JobId(0), 0.0)
            .build()
            .unwrap();
        let exact = exact_expected_makespan_regimen(&instance, |_s| {
            let mut a = Assignment::idle(2);
            a.assign(MachineId(0), JobId(0));
            a.assign(MachineId(1), JobId(1));
            a
        });
        assert!((exact - 8.0 / 3.0).abs() < 1e-9, "exact = {exact}");
    }

    #[test]
    fn chain_of_two_jobs_is_sum_of_geometrics() {
        // Chain 0 → 1, all machines on the eligible job, p = 0.5 each with one
        // machine: expected makespan = 2 + 2 = 4.
        let instance = InstanceBuilder::new(2, 1)
            .uniform_probability(0.5)
            .chains(&[vec![0, 1]])
            .build()
            .unwrap();
        let exact = exact_expected_makespan_regimen(&instance, |s| {
            let first = s.iter().next().unwrap();
            Assignment::all_on(1, first)
        });
        assert!((exact - 4.0).abs() < 1e-9);
    }

    #[test]
    fn unworkable_state_gives_infinite_makespan() {
        let instance = geometric_instance(0.5);
        let exact = exact_expected_makespan_regimen(&instance, |_s| Assignment::idle(1));
        assert!(exact.is_infinite());
    }

    #[test]
    fn cyclic_oblivious_schedule_alternating_steps() {
        // One job, p = 0.5, schedule alternates [work, idle]. Starting at the
        // working step: E = 1 + 0.5·(1 + E) ⇒ E = 3.
        let instance = geometric_instance(0.5);
        let mut work = Assignment::idle(1);
        work.assign(MachineId(0), JobId(0));
        let idle = Assignment::idle(1);
        let sched = ObliviousSchedule::from_steps(1, vec![work, idle]);
        let exact = exact_expected_makespan_oblivious_cyclic(&instance, &sched);
        assert!((exact - 3.0).abs() < 1e-9, "exact = {exact}");
    }

    #[test]
    fn empty_schedule_is_infinite() {
        let instance = geometric_instance(0.5);
        let sched = ObliviousSchedule::new(1);
        assert!(exact_expected_makespan_oblivious_cyclic(&instance, &sched).is_infinite());
    }

    #[test]
    fn exact_matches_monte_carlo_for_regimen() {
        // 3 jobs, 2 machines, a chain 0→1 plus an independent job 2.
        let instance = InstanceBuilder::new(3, 2)
            .probability(MachineId(0), JobId(0), 0.7)
            .probability(MachineId(0), JobId(1), 0.4)
            .probability(MachineId(0), JobId(2), 0.2)
            .probability(MachineId(1), JobId(0), 0.3)
            .probability(MachineId(1), JobId(1), 0.9)
            .probability(MachineId(1), JobId(2), 0.5)
            .chains(&[vec![0, 1], vec![2]])
            .build()
            .unwrap();
        // Regimen: machine 0 to the lowest-numbered unfinished job, machine 1
        // to the highest-numbered unfinished job.
        let regimen = |s: &JobSet| {
            let members: Vec<JobId> = s.iter().collect();
            let mut a = Assignment::idle(2);
            if let Some(&first) = members.first() {
                a.assign(MachineId(0), first);
            }
            if let Some(&last) = members.last() {
                a.assign(MachineId(1), last);
            }
            a
        };
        let exact = exact_expected_makespan_regimen(&instance, regimen);

        struct R<F>(F);
        impl<F: FnMut(&JobSet) -> Assignment> SchedulingPolicy for R<F> {
            fn assign(&mut self, _step: usize, unfinished: &JobSet) -> Assignment {
                (self.0)(unfinished)
            }
        }
        let sim = Simulator::new(SimulationOptions {
            trials: 6000,
            max_steps: 10_000,
            base_seed: 11,
        });
        let est = sim.estimate(&instance, || R(regimen));
        assert_eq!(est.censored, 0);
        let diff = (est.mean() - exact).abs();
        assert!(
            diff < 4.0 * est.summary.std_error + 0.05,
            "exact {exact} vs MC {} (diff {diff})",
            est.mean()
        );
    }

    #[test]
    fn exact_matches_monte_carlo_for_cyclic_schedule() {
        let instance = InstanceBuilder::new(2, 1)
            .probability(MachineId(0), JobId(0), 0.6)
            .probability(MachineId(0), JobId(1), 0.4)
            .build()
            .unwrap();
        // Length-2 schedule: step 0 works job 0, step 1 works job 1.
        let mut s0 = Assignment::idle(1);
        s0.assign(MachineId(0), JobId(0));
        let mut s1 = Assignment::idle(1);
        s1.assign(MachineId(0), JobId(1));
        let sched = ObliviousSchedule::from_steps(1, vec![s0, s1]);
        let exact = exact_expected_makespan_oblivious_cyclic(&instance, &sched);

        let mut stats = crate::stats::OnlineStats::new();
        for trial in 0..6000u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(trial);
            let mut policy = sched.clone();
            let steps = simulate_once(&instance, &mut policy, &mut rng, 100_000).unwrap();
            stats.push(steps as f64);
        }
        let diff = (stats.mean() - exact).abs();
        assert!(
            diff < 4.0 * stats.std_error() + 0.05,
            "exact {exact} vs MC {} (diff {diff})",
            stats.mean()
        );
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_jobs_panics() {
        let instance = InstanceBuilder::new(MAX_EXACT_JOBS + 1, 1)
            .uniform_probability(0.5)
            .build()
            .unwrap();
        let m = instance.num_machines();
        let _ = exact_expected_makespan_regimen(&instance, |_s| Assignment::idle(m));
    }
}
