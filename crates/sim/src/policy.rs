//! Generic policy adapters.
//!
//! * [`FnPolicy`] wraps a closure `(step, unfinished) → Assignment`.
//! * [`FnRegimen`] wraps a closure `unfinished → Assignment` (a regimen in the
//!   sense of Definition 2.2: the assignment depends only on the unfinished
//!   set).
//! * [`AllMachinesOnOneJob`] is the trivial policy used in the paper's upper
//!   bound on `T^OPT` (assign every machine to a single eligible unfinished
//!   job until everything is done); it also serves as a simple always-valid
//!   fallback policy.

use suu_core::{Assignment, JobSet, SchedulingPolicy, SuuInstance};

/// A policy defined by a closure over `(step, unfinished)`.
pub struct FnPolicy<F> {
    f: F,
    label: String,
}

impl<F> FnPolicy<F>
where
    F: FnMut(usize, &JobSet) -> Assignment,
{
    /// Wraps a closure as a policy.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        Self {
            f,
            label: label.into(),
        }
    }
}

impl<F> SchedulingPolicy for FnPolicy<F>
where
    F: FnMut(usize, &JobSet) -> Assignment,
{
    fn assign(&mut self, step: usize, unfinished: &JobSet) -> Assignment {
        (self.f)(step, unfinished)
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// A regimen defined by a closure over the unfinished set only
/// (Definition 2.2).
pub struct FnRegimen<F> {
    f: F,
    label: String,
}

impl<F> FnRegimen<F>
where
    F: FnMut(&JobSet) -> Assignment,
{
    /// Wraps a closure as a regimen.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        Self {
            f,
            label: label.into(),
        }
    }
}

impl<F> SchedulingPolicy for FnRegimen<F>
where
    F: FnMut(&JobSet) -> Assignment,
{
    fn assign(&mut self, _step: usize, unfinished: &JobSet) -> Assignment {
        (self.f)(unfinished)
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Assigns *every* machine to the first eligible unfinished job (in job-id
/// order) at each step.
///
/// The paper uses this schedule shape to bound `T^OPT`: serialising the jobs
/// and throwing all machines at one job finishes it in expected `1/P_j` steps
/// where `P_j` is the combined success probability, so the total expected
/// makespan is `Σ_j 1/P_j`. It doubles as the tail schedule `Σ_{o,3}` used by
/// the replication step of §4.1.
pub struct AllMachinesOnOneJob {
    instance: SuuInstance,
}

impl AllMachinesOnOneJob {
    /// Creates the policy for an instance.
    #[must_use]
    pub fn new(instance: SuuInstance) -> Self {
        Self { instance }
    }
}

impl SchedulingPolicy for AllMachinesOnOneJob {
    fn assign(&mut self, _step: usize, unfinished: &JobSet) -> Assignment {
        let finished = unfinished.complement_mask();
        let eligible = self.instance.eligible_jobs(&finished);
        match eligible.first() {
            Some(&job) => Assignment::all_on(self.instance.num_machines(), job),
            None => Assignment::idle(self.instance.num_machines()),
        }
    }

    fn name(&self) -> String {
        "all-machines-on-one-job".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::{InstanceBuilder, JobId, MachineId};

    #[test]
    fn fn_policy_delegates_to_closure() {
        let mut policy = FnPolicy::new("test", |step, _unfinished: &JobSet| {
            let mut a = Assignment::idle(1);
            a.assign(MachineId(0), JobId(step % 2));
            a
        });
        let u = JobSet::all(2);
        assert_eq!(policy.assign(0, &u).target(MachineId(0)), Some(JobId(0)));
        assert_eq!(policy.assign(3, &u).target(MachineId(0)), Some(JobId(1)));
        assert_eq!(policy.name(), "test");
    }

    #[test]
    fn fn_regimen_ignores_step() {
        let mut regimen = FnRegimen::new("r", |unfinished: &JobSet| {
            let mut a = Assignment::idle(1);
            if let Some(j) = unfinished.iter().next() {
                a.assign(MachineId(0), j);
            }
            a
        });
        let u = JobSet::from_members(3, [JobId(2)]);
        assert_eq!(regimen.assign(0, &u).target(MachineId(0)), Some(JobId(2)));
        assert_eq!(regimen.assign(99, &u).target(MachineId(0)), Some(JobId(2)));
        assert_eq!(regimen.name(), "r");
    }

    #[test]
    fn all_machines_policy_targets_first_eligible_job() {
        let instance = InstanceBuilder::new(3, 2)
            .uniform_probability(0.5)
            .chains(&[vec![0, 1], vec![2]])
            .build()
            .unwrap();
        let mut policy = AllMachinesOnOneJob::new(instance);
        // All jobs unfinished: job 0 and job 2 eligible, job 0 is first.
        let a = policy.assign(0, &JobSet::all(3));
        assert_eq!(a.machines_on(JobId(0)).len(), 2);
        // Job 0 finished: job 1 becomes eligible and is first.
        let u = JobSet::from_members(3, [JobId(1), JobId(2)]);
        let a = policy.assign(1, &u);
        assert_eq!(a.machines_on(JobId(1)).len(), 2);
        // Everything finished: idle.
        let a = policy.assign(2, &JobSet::empty(3));
        assert_eq!(a.num_idle(), 2);
    }
}
