//! Summary statistics for Monte-Carlo estimates.

/// Online (Welford) accumulation of mean and variance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// A fresh accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if no observations).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Converts to a [`Summary`].
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            std_error: self.std_error(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// A compact summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// A symmetric ~95% confidence half-width (1.96 standard errors).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.summary().mean, 0.0);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4, sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential_pushes() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut seq = OnlineStats::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), before.mean());
    }

    #[test]
    fn std_error_shrinks_with_sample_size() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push(f64::from(i % 2));
        }
        for i in 0..1000 {
            large.push(f64::from(i % 2));
        }
        assert!(large.std_error() < small.std_error());
    }

    #[test]
    fn ci_half_width_uses_std_error() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        let sum = s.summary();
        assert!((sum.ci95_half_width() - 1.96 * sum.std_error).abs() < 1e-12);
    }
}
