//! Summary statistics for Monte-Carlo estimates.

/// Online (Welford) accumulation of mean and variance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// A fresh accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if no observations).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    ///
    /// The sample variance `m2 / (count − 1)` is undefined for an empty
    /// accumulator and 0/0 for a singleton; both are pinned to exactly `0.0`
    /// (never `NaN`), so downstream consumers can use the value without
    /// guarding. The same convention propagates to [`Self::std_dev`] and
    /// [`Self::std_error`].
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            // m2 is a sum of squares; clamp tiny negative rounding residue so
            // the square root in std_dev can never produce NaN.
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Sample standard deviation (0 with fewer than two observations; see
    /// [`Self::variance`]).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (0 when empty or singleton; see
    /// [`Self::variance`]).
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty; [`Self::summary`] reports 0
    /// instead so reports never print infinities).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty; [`Self::summary`] reports 0
    /// instead so reports never print infinities).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Converts to a [`Summary`].
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            std_error: self.std_error(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// A compact summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// A symmetric ~95% confidence half-width (1.96 standard errors).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error
    }
}

/// Nearest-rank quantile over a bucketed (pre-aggregated) distribution.
///
/// `counts[i]` is the number of observations that fell into bucket `i`
/// (buckets ordered by value). Returns the index of the bucket containing
/// the `q`-quantile observation under the same nearest-rank convention as
/// [`SampleSet::quantile`] (`rank = ceil(q·n)` clamped to `[1, n]`), or
/// `None` when every bucket is empty. The caller maps the index back to a
/// value bound — this function is deliberately agnostic of the bucketing
/// scheme, so constant-memory summaries (e.g. log-bucketed latency
/// histograms) can reuse the exact-sample quantile semantics.
#[must_use]
pub fn bucket_quantile_index(counts: &[u64], q: f64) -> Option<usize> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * total as f64).ceil().max(1.0).min(total as f64) as u64;
    let mut cumulative = 0u64;
    for (index, &count) in counts.iter().enumerate() {
        cumulative += count;
        if cumulative >= rank {
            return Some(index);
        }
    }
    // Unreachable: `rank <= total` and the cumulative sum reaches `total`.
    Some(counts.len() - 1)
}

/// An exact sample set for quantile queries.
///
/// [`OnlineStats`] is constant-space but cannot answer percentile questions;
/// latency reporting (p50/p99 in the service load generator) needs the actual
/// order statistics. `SampleSet` stores every observation and sorts lazily on
/// the first quantile query after a push.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    values: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// An empty sample set.
    #[must_use]
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation. Non-finite values are ignored (they would poison
    /// every subsequent quantile).
    pub fn push(&mut self, x: f64) {
        if x.is_finite() {
            self.values.push(x);
            self.sorted = false;
        }
    }

    /// Absorbs every observation of `other` (parallel collection merge).
    pub fn merge(&mut self, other: &Self) {
        if !other.values.is_empty() {
            self.values.extend_from_slice(&other.values);
            self.sorted = false;
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by the nearest-rank method, or
    /// `None` when empty. `q = 0` is the minimum, `q = 1` the maximum; a
    /// singleton set returns its one value for every `q`.
    #[must_use]
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.values.len() as f64).ceil() as usize).clamp(1, self.values.len());
        Some(self.values[rank - 1])
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&mut self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.summary().mean, 0.0);
    }

    #[test]
    fn empty_stats_never_produce_nan() {
        let s = OnlineStats::new();
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        // Raw extrema of an empty accumulator are the fold identities…
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
        // …but the reporting summary pins them to 0 so tables never print ∞.
        let sum = s.summary();
        assert_eq!(sum.min, 0.0);
        assert_eq!(sum.max, 0.0);
        assert!(!sum.std_dev.is_nan());
        assert!(!sum.std_error.is_nan());
        assert_eq!(sum.ci95_half_width(), 0.0);
    }

    #[test]
    fn singleton_stats_have_zero_spread() {
        let mut s = OnlineStats::new();
        s.push(7.25);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 7.25);
        // Sample variance of one observation is 0/0; pinned to exactly 0.
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.min(), 7.25);
        assert_eq!(s.max(), 7.25);
        let sum = s.summary();
        assert_eq!(sum.min, 7.25);
        assert_eq!(sum.max, 7.25);
        assert!(!sum.std_dev.is_nan());
    }

    #[test]
    fn merge_of_two_empties_stays_empty() {
        let mut a = OnlineStats::new();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.variance(), 0.0);
        assert!(!a.std_dev().is_nan());
    }

    #[test]
    fn merge_of_singletons_matches_sequential() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let mut b = OnlineStats::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
        assert!((a.variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_identical_observations_is_not_negative() {
        // Welford's m2 can accumulate tiny negative rounding residue; the
        // clamp keeps variance ≥ 0 and std_dev NaN-free.
        let mut s = OnlineStats::new();
        for _ in 0..1000 {
            s.push(0.1 + 0.2); // a value with inexact binary representation
        }
        assert!(s.variance() >= 0.0);
        assert!(!s.std_dev().is_nan());
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4, sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential_pushes() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut seq = OnlineStats::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), before.mean());
    }

    #[test]
    fn std_error_shrinks_with_sample_size() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push(f64::from(i % 2));
        }
        for i in 0..1000 {
            large.push(f64::from(i % 2));
        }
        assert!(large.std_error() < small.std_error());
    }

    #[test]
    fn ci_half_width_uses_std_error() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        let sum = s.summary();
        assert!((sum.ci95_half_width() - 1.96 * sum.std_error).abs() < 1e-12);
    }

    #[test]
    fn sample_set_quantiles_use_nearest_rank() {
        let mut set = SampleSet::new();
        for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
            set.push(x);
        }
        assert_eq!(set.len(), 5);
        assert_eq!(set.quantile(0.0), Some(1.0));
        assert_eq!(set.p50(), Some(3.0));
        assert_eq!(set.quantile(1.0), Some(5.0));
        // p99 of 5 samples is the maximum under nearest-rank.
        assert_eq!(set.p99(), Some(5.0));
    }

    #[test]
    fn sample_set_handles_empty_singleton_and_nonfinite() {
        let mut empty = SampleSet::new();
        assert!(empty.is_empty());
        assert_eq!(empty.p50(), None);

        let mut one = SampleSet::new();
        one.push(2.5);
        assert_eq!(one.quantile(0.0), Some(2.5));
        assert_eq!(one.p50(), Some(2.5));
        assert_eq!(one.p99(), Some(2.5));

        let mut poisoned = SampleSet::new();
        poisoned.push(f64::NAN);
        poisoned.push(f64::INFINITY);
        poisoned.push(1.0);
        assert_eq!(poisoned.len(), 1);
        assert_eq!(poisoned.p99(), Some(1.0));
    }

    #[test]
    fn sample_set_merge_matches_sequential_pushes() {
        let mut a = SampleSet::new();
        let mut b = SampleSet::new();
        let mut all = SampleSet::new();
        for i in 0..20 {
            let x = f64::from(i * 7 % 13);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.len(), all.len());
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn bucket_quantile_matches_exact_samples() {
        // 2 observations in bucket 0, 3 in bucket 2, 5 in bucket 3: the
        // bucket index of every quantile must match a SampleSet holding the
        // same observations flattened to their bucket indices.
        let counts = [2u64, 0, 3, 5];
        let mut exact = SampleSet::new();
        for (index, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                exact.push(index as f64);
            }
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(
                bucket_quantile_index(&counts, q),
                exact.quantile(q).map(|v| v as usize),
                "q={q}"
            );
        }
    }

    #[test]
    fn bucket_quantile_handles_empty_and_singleton() {
        assert_eq!(bucket_quantile_index(&[], 0.5), None);
        assert_eq!(bucket_quantile_index(&[0, 0, 0], 0.5), None);
        // A single observation is every quantile.
        assert_eq!(bucket_quantile_index(&[0, 1, 0], 0.0), Some(1));
        assert_eq!(bucket_quantile_index(&[0, 1, 0], 0.5), Some(1));
        assert_eq!(bucket_quantile_index(&[0, 1, 0], 1.0), Some(1));
        // Out-of-range q is clamped, not an error.
        assert_eq!(bucket_quantile_index(&[1, 1], -3.0), Some(0));
        assert_eq!(bucket_quantile_index(&[1, 1], 7.0), Some(1));
    }

    #[test]
    fn bucket_quantile_is_monotone_in_q() {
        let counts = [5u64, 0, 1, 9, 0, 0, 2];
        let mut last = 0usize;
        for step in 0..=100 {
            let q = f64::from(step) / 100.0;
            let index = bucket_quantile_index(&counts, q).unwrap();
            assert!(index >= last, "quantile regressed at q={q}");
            last = index;
        }
        assert_eq!(bucket_quantile_index(&counts, 1.0), Some(6));
    }

    #[test]
    fn sample_set_interleaves_pushes_and_queries() {
        let mut set = SampleSet::new();
        set.push(10.0);
        assert_eq!(set.p50(), Some(10.0));
        set.push(0.0);
        set.push(20.0);
        assert_eq!(set.p50(), Some(10.0));
        assert_eq!(set.quantile(1.0), Some(20.0));
    }
}
