//! Stochastic execution substrate for SUU schedules.
//!
//! The paper is a theory paper: it proves expected-makespan bounds but runs no
//! experiments. To *measure* the behaviour of its algorithms this crate
//! provides the execution model of §2.1 in two forms:
//!
//! * **Monte-Carlo simulation** ([`executor`]): run any
//!   [`SchedulingPolicy`](suu_core::SchedulingPolicy) step by step, drawing an
//!   independent Bernoulli success for every machine-step, and estimate the
//!   expected makespan from repeated trials (parallelised with Rayon).
//! * **Exact evaluation** ([`markov`]): for small instances, compute the
//!   expected makespan of a regimen or of a cyclically repeated oblivious
//!   schedule exactly, by absorbing-Markov-chain analysis over the lattice of
//!   unfinished-job sets (the right-hand picture of Figure 1 in the paper).
//!
//! [`stats`] provides the summary statistics used by the experiment harness
//! and [`trace`] records full execution traces (used by the
//! `execution_tree` example to reproduce Figure 1).

pub mod executor;
pub mod markov;
pub mod policy;
pub mod stats;
pub mod trace;

pub use executor::{
    effective_assignment, execute_step, simulate_once, MakespanEstimate, SimulationOptions,
    Simulator,
};
pub use markov::{exact_expected_makespan_oblivious_cyclic, exact_expected_makespan_regimen};
pub use policy::{AllMachinesOnOneJob, FnPolicy, FnRegimen};
pub use stats::{bucket_quantile_index, OnlineStats, SampleSet, Summary};
pub use trace::{ExecutionTrace, StepRecord};
