//! Execution traces: a full record of one simulated run.
//!
//! A trace records, per step, the effective assignment (after filtering to
//! eligible unfinished jobs) and the set of jobs that completed in that step.
//! Traces power the `execution_tree` example, which reproduces the
//! execution-tree view of Figure 1, and are handy when debugging schedules.

use suu_core::{Assignment, JobId};

/// One step of an execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Step number (0-based).
    pub step: usize,
    /// The effective assignment actually executed (machines pointed at
    /// ineligible or finished jobs idle).
    pub assignment: Assignment,
    /// Jobs that completed during this step, in increasing order.
    pub completed: Vec<JobId>,
    /// Jobs still unfinished *after* this step, in increasing order.
    pub unfinished_after: Vec<JobId>,
}

/// A full record of one simulated execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionTrace {
    steps: Vec<StepRecord>,
}

impl ExecutionTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self { steps: Vec::new() }
    }

    /// Appends a step record.
    pub fn push(&mut self, record: StepRecord) {
        self.steps.push(record);
    }

    /// The recorded steps.
    #[must_use]
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// Number of recorded steps (equals the makespan when the run finished).
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no steps were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The step at which `job` completed, if it did (1-based, i.e. the
    /// number of steps taken including the completing one).
    #[must_use]
    pub fn completion_step(&self, job: JobId) -> Option<usize> {
        self.steps
            .iter()
            .find(|s| s.completed.contains(&job))
            .map(|s| s.step + 1)
    }

    /// Renders the trace as a compact multi-line string: one line per step
    /// listing the unfinished set after the step, in the spirit of the states
    /// of Figure 1.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            let unfinished: Vec<String> =
                s.unfinished_after.iter().map(|j| j.0.to_string()).collect();
            let completed: Vec<String> = s.completed.iter().map(|j| j.0.to_string()).collect();
            out.push_str(&format!(
                "t={:<4} completed=[{}] unfinished=[{}]\n",
                s.step + 1,
                completed.join(","),
                unfinished.join(",")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::MachineId;

    fn record(step: usize, completed: Vec<usize>, unfinished: Vec<usize>) -> StepRecord {
        let mut a = Assignment::idle(1);
        a.assign(MachineId(0), JobId(0));
        StepRecord {
            step,
            assignment: a,
            completed: completed.into_iter().map(JobId).collect(),
            unfinished_after: unfinished.into_iter().map(JobId).collect(),
        }
    }

    #[test]
    fn trace_records_steps_in_order() {
        let mut trace = ExecutionTrace::new();
        assert!(trace.is_empty());
        trace.push(record(0, vec![], vec![0, 1]));
        trace.push(record(1, vec![0], vec![1]));
        trace.push(record(2, vec![1], vec![]));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.steps()[1].completed, vec![JobId(0)]);
    }

    #[test]
    fn completion_step_finds_the_right_step() {
        let mut trace = ExecutionTrace::new();
        trace.push(record(0, vec![], vec![0, 1]));
        trace.push(record(1, vec![0], vec![1]));
        trace.push(record(2, vec![1], vec![]));
        assert_eq!(trace.completion_step(JobId(0)), Some(2));
        assert_eq!(trace.completion_step(JobId(1)), Some(3));
        assert_eq!(trace.completion_step(JobId(9)), None);
    }

    #[test]
    fn render_contains_states() {
        let mut trace = ExecutionTrace::new();
        trace.push(record(0, vec![0], vec![1, 2]));
        let text = trace.render();
        assert!(text.contains("t=1"));
        assert!(text.contains("completed=[0]"));
        assert!(text.contains("unfinished=[1,2]"));
    }
}
