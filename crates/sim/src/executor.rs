//! Monte-Carlo execution of scheduling policies.
//!
//! The executor implements the execution model of Definition 2.1: at the
//! start of each step the policy proposes an assignment; machines pointed at
//! finished or not-yet-eligible jobs idle; every busy machine then succeeds
//! independently with probability `p_ij`, and a job completes as soon as any
//! machine assigned to it succeeds. The makespan of a run is the number of
//! steps until the unfinished set is empty.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use suu_core::{Assignment, JobId, JobSet, SchedulingPolicy, SuuInstance};

use crate::stats::{OnlineStats, Summary};
use crate::trace::{ExecutionTrace, StepRecord};

/// Options controlling simulation runs.
#[derive(Debug, Clone)]
pub struct SimulationOptions {
    /// Hard cap on the number of steps per run; runs that do not finish are
    /// reported as censored at this horizon.
    pub max_steps: usize,
    /// Number of independent trials for expectation estimates.
    pub trials: usize,
    /// Base RNG seed; trial `k` uses seed `base_seed + k`.
    pub base_seed: u64,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        Self {
            max_steps: 1_000_000,
            trials: 200,
            base_seed: 0x5eed,
        }
    }
}

/// The result of estimating an expected makespan by Monte-Carlo simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MakespanEstimate {
    /// Summary statistics of the observed makespans (censored runs contribute
    /// the horizon value, biasing the mean *downwards*; check `censored`).
    pub summary: Summary,
    /// Number of runs that hit the step horizon without finishing.
    pub censored: u64,
}

impl MakespanEstimate {
    /// The estimated expected makespan (sample mean).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.summary.mean
    }
}

/// Simulates a single execution of `policy` on `instance`.
///
/// Returns the number of steps taken if all jobs finished within
/// `max_steps`, or `None` if the run was censored.
pub fn simulate_once<P: SchedulingPolicy + ?Sized>(
    instance: &SuuInstance,
    policy: &mut P,
    rng: &mut impl Rng,
    max_steps: usize,
) -> Option<usize> {
    let (steps, _trace) = run(instance, policy, rng, max_steps, false);
    steps
}

/// Simulates a single execution and records a full [`ExecutionTrace`].
pub fn simulate_traced<P: SchedulingPolicy + ?Sized>(
    instance: &SuuInstance,
    policy: &mut P,
    rng: &mut impl Rng,
    max_steps: usize,
) -> (Option<usize>, ExecutionTrace) {
    let (steps, trace) = run(instance, policy, rng, max_steps, true);
    (steps, trace.unwrap_or_default())
}

fn run<P: SchedulingPolicy + ?Sized>(
    instance: &SuuInstance,
    policy: &mut P,
    rng: &mut impl Rng,
    max_steps: usize,
    record: bool,
) -> (Option<usize>, Option<ExecutionTrace>) {
    let n = instance.num_jobs();
    let mut unfinished = JobSet::all(n);
    let mut trace = record.then(ExecutionTrace::new);

    for step in 0..max_steps {
        if unfinished.is_empty() {
            return (Some(step), trace);
        }
        let proposed = policy.assign(step, &unfinished);
        let effective = effective_assignment(instance, &proposed, &unfinished);
        let completed = draw_step(instance, &effective, &mut unfinished, rng);

        if let Some(trace) = trace.as_mut() {
            trace.push(StepRecord {
                step,
                assignment: effective,
                completed,
                unfinished_after: unfinished.iter().collect(),
            });
        }

        if unfinished.is_empty() {
            return (Some(step + 1), trace);
        }
    }
    (None, trace)
}

/// Executes one step of the Definition 2.1 execution model: filters
/// `proposed` down to unfinished, eligible jobs, draws the per-machine
/// Bernoulli successes, removes the completed jobs from `unfinished` and
/// returns them in increasing order.
///
/// This is the single-step primitive behind [`simulate_once`], exposed so
/// closed-loop drivers (which interleave execution with schedule revisions)
/// share the simulator's exact semantics and RNG draw order.
pub fn execute_step(
    instance: &SuuInstance,
    proposed: &Assignment,
    unfinished: &mut JobSet,
    rng: &mut impl Rng,
) -> Vec<JobId> {
    let effective = effective_assignment(instance, proposed, unfinished);
    draw_step(instance, &effective, unfinished, rng)
}

/// Bernoulli draws for an already-filtered assignment, machine by machine in
/// increasing machine order (the draw order is part of the reproducibility
/// contract).
fn draw_step(
    instance: &SuuInstance,
    effective: &Assignment,
    unfinished: &mut JobSet,
    rng: &mut impl Rng,
) -> Vec<JobId> {
    let mut completed = Vec::new();
    for (machine, job) in effective.busy_pairs() {
        if !unfinished.contains(job) {
            // Already completed earlier in this step by another machine.
            continue;
        }
        let p = instance.prob(machine, job);
        if p > 0.0 && rng.gen_bool(p) {
            unfinished.remove(job);
            completed.push(job);
        }
    }
    completed.sort_unstable();
    completed
}

/// Filters a proposed assignment down to the machines whose target job is
/// unfinished and eligible (all predecessors finished), per Definition 2.1.
#[must_use]
pub fn effective_assignment(
    instance: &SuuInstance,
    proposed: &Assignment,
    unfinished: &JobSet,
) -> Assignment {
    let finished = unfinished.complement_mask();
    proposed.filtered(|job| {
        unfinished.contains(job)
            && instance
                .precedence()
                .predecessors(job.0)
                .iter()
                .all(|&p| finished[p])
    })
}

/// Estimates expected makespans by repeated independent simulation.
///
/// The simulator is generic over a *policy factory* so that adaptive policies
/// (which carry per-run mutable state) get a fresh policy per trial. Trials
/// run in parallel via Rayon; each trial uses its own deterministic
/// `ChaCha8Rng` seed so results are reproducible regardless of thread
/// interleaving.
#[derive(Debug, Clone)]
pub struct Simulator {
    options: SimulationOptions,
}

impl Simulator {
    /// Creates a simulator with the given options.
    #[must_use]
    pub fn new(options: SimulationOptions) -> Self {
        Self { options }
    }

    /// Creates a simulator with default options but the given trial count.
    #[must_use]
    pub fn with_trials(trials: usize) -> Self {
        Self {
            options: SimulationOptions {
                trials,
                ..SimulationOptions::default()
            },
        }
    }

    /// The options in use.
    #[must_use]
    pub fn options(&self) -> &SimulationOptions {
        &self.options
    }

    /// Estimates the expected makespan of the policies produced by `factory`.
    pub fn estimate<P, F>(&self, instance: &SuuInstance, factory: F) -> MakespanEstimate
    where
        P: SchedulingPolicy,
        F: Fn() -> P + Sync,
    {
        let results: Vec<Option<usize>> = (0..self.options.trials)
            .into_par_iter()
            .map(|trial| {
                let mut rng =
                    ChaCha8Rng::seed_from_u64(self.options.base_seed.wrapping_add(trial as u64));
                let mut policy = factory();
                simulate_once(instance, &mut policy, &mut rng, self.options.max_steps)
            })
            .collect();

        let mut stats = OnlineStats::new();
        let mut censored = 0;
        for r in results {
            match r {
                Some(steps) => stats.push(steps as f64),
                None => {
                    stats.push(self.options.max_steps as f64);
                    censored += 1;
                }
            }
        }
        MakespanEstimate {
            summary: stats.summary(),
            censored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::{InstanceBuilder, JobId, MachineId, ObliviousSchedule};

    fn single_job_instance(p: f64) -> SuuInstance {
        InstanceBuilder::new(1, 1)
            .probability(MachineId(0), JobId(0), p)
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_job_finishes_in_one_step() {
        let instance = single_job_instance(1.0);
        let mut sched = ObliviousSchedule::from_steps(1, vec![Assignment::all_on(1, JobId(0))]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let steps = simulate_once(&instance, &mut sched, &mut rng, 100);
        assert_eq!(steps, Some(1));
    }

    #[test]
    fn geometric_job_matches_expectation() {
        // p = 0.5 → expected makespan 2; check the Monte-Carlo mean is close.
        let instance = single_job_instance(0.5);
        let sim = Simulator::new(SimulationOptions {
            trials: 4000,
            max_steps: 10_000,
            base_seed: 7,
        });
        let est = sim.estimate(&instance, || {
            ObliviousSchedule::from_steps(1, vec![Assignment::all_on(1, JobId(0))])
        });
        assert_eq!(est.censored, 0);
        assert!(
            (est.mean() - 2.0).abs() < 0.15,
            "estimated mean {} too far from 2.0",
            est.mean()
        );
    }

    #[test]
    fn censoring_is_reported() {
        // Probability so small that 3 steps are almost never enough.
        let instance = single_job_instance(1e-6);
        let sim = Simulator::new(SimulationOptions {
            trials: 20,
            max_steps: 3,
            base_seed: 3,
        });
        let est = sim.estimate(&instance, || {
            ObliviousSchedule::from_steps(1, vec![Assignment::all_on(1, JobId(0))])
        });
        assert!(est.censored > 0);
    }

    #[test]
    fn precedence_is_respected_during_execution() {
        // Chain 0 → 1 with certain completion: takes exactly 2 steps even
        // though the schedule points machines at both jobs from step 0.
        let instance = InstanceBuilder::new(2, 2)
            .uniform_probability(1.0)
            .chains(&[vec![0, 1]])
            .build()
            .unwrap();
        let mut a = Assignment::idle(2);
        a.assign(MachineId(0), JobId(0));
        a.assign(MachineId(1), JobId(1));
        let mut sched = ObliviousSchedule::from_steps(2, vec![a]);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (steps, trace) = simulate_traced(&instance, &mut sched, &mut rng, 10);
        assert_eq!(steps, Some(2));
        // In step 0 machine 1 must have been idled by the eligibility filter.
        assert_eq!(trace.steps()[0].assignment.target(MachineId(1)), None);
        assert_eq!(trace.completion_step(JobId(1)), Some(2));
    }

    #[test]
    fn effective_assignment_filters_finished_jobs() {
        let instance = InstanceBuilder::new(2, 1)
            .uniform_probability(0.5)
            .build()
            .unwrap();
        let mut proposed = Assignment::idle(1);
        proposed.assign(MachineId(0), JobId(0));
        let unfinished = JobSet::from_members(2, [JobId(1)]);
        let eff = effective_assignment(&instance, &proposed, &unfinished);
        assert_eq!(eff.target(MachineId(0)), None);
    }

    #[test]
    fn estimates_are_reproducible_across_runs() {
        let instance = single_job_instance(0.3);
        let sim = Simulator::new(SimulationOptions {
            trials: 50,
            max_steps: 10_000,
            base_seed: 42,
        });
        let a = sim.estimate(&instance, || {
            ObliviousSchedule::from_steps(1, vec![Assignment::all_on(1, JobId(0))])
        });
        let b = sim.estimate(&instance, || {
            ObliviousSchedule::from_steps(1, vec![Assignment::all_on(1, JobId(0))])
        });
        assert_eq!(a, b);
    }

    #[test]
    fn zero_length_schedule_never_finishes() {
        let instance = single_job_instance(0.9);
        let mut sched = ObliviousSchedule::new(1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let steps = simulate_once(&instance, &mut sched, &mut rng, 50);
        assert_eq!(steps, None);
    }
}
