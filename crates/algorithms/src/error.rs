//! Errors reported by the scheduling algorithms.

use std::fmt;

use suu_lp::LpError;

/// Errors from the schedule-construction entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgorithmError {
    /// The precedence graph is not a disjoint union of chains, but the chain
    /// algorithm (Theorem 4.4) was requested.
    NotChains,
    /// The precedence graph's underlying undirected graph is not a forest, but
    /// the forest algorithm (Theorem 4.7 / 4.8) was requested.
    NotAForest,
    /// The jobs are not independent, but an independent-jobs algorithm (§3,
    /// Theorem 4.5) was requested.
    NotIndependent,
    /// The LP relaxation could not be solved (numerical failure or, for a
    /// malformed instance, infeasibility/unboundedness).
    LpFailure(String),
    /// A caller-supplied resource budget (pivot budget or wall-clock
    /// deadline) ran out before the pipeline finished. The input was healthy;
    /// the solve just cost more than the caller was willing to pay. Callers
    /// in a serving context typically degrade (cheaper solver, cached or
    /// partial answer) rather than treat this as a failure.
    BudgetExhausted {
        /// Simplex pivots spent before the budget ran out (0 for
        /// combinatorial pipelines aborted on deadline).
        pivots: usize,
        /// `true` when the wall-clock deadline tripped, `false` when the
        /// pivot budget did.
        wall_clock: bool,
    },
    /// An internal invariant was violated; indicates a bug rather than a bad
    /// input.
    Internal(String),
}

impl fmt::Display for AlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotChains => write!(
                f,
                "precedence constraints are not a disjoint union of chains (SUU-C requires chains)"
            ),
            Self::NotAForest => write!(
                f,
                "precedence constraints are not a directed forest (Theorems 4.7/4.8 require forests)"
            ),
            Self::NotIndependent => {
                write!(f, "jobs are not independent (SUU-I requires an empty precedence graph)")
            }
            Self::LpFailure(msg) => write!(f, "LP relaxation failed: {msg}"),
            Self::BudgetExhausted { pivots, wall_clock } => {
                let what = if *wall_clock {
                    "wall-clock deadline"
                } else {
                    "pivot budget"
                };
                write!(f, "solve {what} exhausted after {pivots} pivots")
            }
            Self::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for AlgorithmError {}

impl From<LpError> for AlgorithmError {
    fn from(e: LpError) -> Self {
        match e {
            LpError::BudgetExhausted { pivots, wall_clock } => {
                Self::BudgetExhausted { pivots, wall_clock }
            }
            other => Self::LpFailure(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AlgorithmError::NotChains.to_string().contains("chains"));
        assert!(AlgorithmError::NotAForest.to_string().contains("forest"));
        assert!(AlgorithmError::NotIndependent
            .to_string()
            .contains("independent"));
        assert!(AlgorithmError::LpFailure("bad".into())
            .to_string()
            .contains("bad"));
        assert!(AlgorithmError::Internal("oops".into())
            .to_string()
            .contains("oops"));
    }

    #[test]
    fn lp_errors_convert() {
        let e: AlgorithmError = LpError::IterationLimit { limit: 5 }.into();
        assert!(matches!(e, AlgorithmError::LpFailure(_)));
    }
}
