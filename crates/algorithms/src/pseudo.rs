//! Pseudo-schedule construction from a rounded solution (proof of Thm 4.1).
//!
//! Given integral step counts `x̂_ij`, the paper builds one pseudo-schedule per
//! chain: job `j` of a chain is given a *window* of length `L_j = max_i x̂_ij`
//! starting right after the windows of all its chain predecessors
//! (`ψ_j = Σ_{j' ≺ j} L_{j'}`), and machine `i` is assigned to `j` during the
//! first `x̂_ij` steps of that window. Different machines overlap freely inside
//! the window; different *chains* are later overlaid on top of each other,
//! which is what makes the result a pseudo-schedule (a machine may be assigned
//! jobs from several chains in the same step) rather than a feasible one.

use suu_core::{JobId, MachineId, PseudoSchedule, SuuInstance};
use suu_graph::ChainSet;

use crate::rounding::RoundedSolution;

/// Builds one pseudo-schedule per chain, in the chain order of `chains`.
///
/// Every returned pseudo-schedule covers all machines of the instance; its
/// length is the sum of the window lengths of the chain's jobs.
#[must_use]
pub fn build_chain_pseudo_schedules(
    instance: &SuuInstance,
    chains: &ChainSet,
    rounded: &RoundedSolution,
) -> Vec<PseudoSchedule> {
    let m = instance.num_machines();
    chains
        .chains()
        .iter()
        .map(|chain| {
            let mut ps = PseudoSchedule::new(m);
            let mut cursor = 0usize;
            for &j in chain {
                let job = JobId(j);
                let window = usize::try_from(rounded.window_of(job)).unwrap_or(usize::MAX);
                for i in 0..m {
                    let steps = usize::try_from(rounded.x[i][j]).unwrap_or(usize::MAX);
                    if steps > 0 {
                        ps.assign_interval(MachineId(i), job, cursor, cursor + steps);
                    }
                }
                cursor += window;
                ps.extend_to(cursor);
            }
            ps
        })
        .collect()
}

/// Overlays per-chain pseudo-schedules with the given per-chain start delays,
/// producing the combined pseudo-schedule `Σ_s` (delays all zero) or the
/// delayed variant used by the random-delay step.
///
/// # Panics
///
/// Panics if `delays.len()` differs from the number of chains.
#[must_use]
pub fn overlay_with_delays(
    per_chain: &[PseudoSchedule],
    num_machines: usize,
    delays: &[usize],
) -> PseudoSchedule {
    assert_eq!(
        per_chain.len(),
        delays.len(),
        "one delay per chain required"
    );
    let mut combined = PseudoSchedule::new(num_machines);
    for (ps, &delay) in per_chain.iter().zip(delays.iter()) {
        combined.union_with_offset(ps, delay);
    }
    combined
}

/// Checks the precedence discipline of a per-chain pseudo-schedule: within
/// each chain, no machine may be assigned to a job before its chain
/// predecessor's window has ended (condition (ii) of AccuMass-C). Returns
/// `true` when the discipline holds. Used by tests and debug assertions.
#[must_use]
pub fn respects_chain_windows(
    instance: &SuuInstance,
    chains: &ChainSet,
    rounded: &RoundedSolution,
    per_chain: &[PseudoSchedule],
) -> bool {
    for (chain, ps) in chains.chains().iter().zip(per_chain.iter()) {
        let mut window_start = 0usize;
        for &j in chain {
            let job = JobId(j);
            let window = usize::try_from(rounded.window_of(job)).unwrap_or(usize::MAX);
            // The job must not be assigned before its window starts.
            for t in 0..window_start.min(ps.len()) {
                for i in 0..instance.num_machines() {
                    if ps.step(t).jobs_of(MachineId(i)).contains(&job) {
                        return false;
                    }
                }
            }
            window_start += window;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::mass::mass_of_pseudo;
    use suu_core::InstanceBuilder;
    use suu_workloads::{random_chains, uniform_matrix};

    use crate::lp_relaxation::solve_lp1;
    use crate::rounding::{round_solution, ROUNDED_MASS_TARGET};

    fn pipeline(
        n: usize,
        m: usize,
        chains: usize,
        seed: u64,
    ) -> (SuuInstance, ChainSet, RoundedSolution) {
        let dag = random_chains(n, chains, seed);
        let chain_set = ChainSet::from_dag(&dag).unwrap();
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, seed))
            .precedence(dag)
            .build()
            .unwrap();
        let frac = solve_lp1(&inst, &chain_set).unwrap();
        let rounded = round_solution(&inst, &frac).unwrap();
        (inst, chain_set, rounded)
    }

    #[test]
    fn one_pseudo_schedule_per_chain() {
        let (inst, chains, rounded) = pipeline(9, 3, 3, 1);
        let per_chain = build_chain_pseudo_schedules(&inst, &chains, &rounded);
        assert_eq!(per_chain.len(), 3);
        for ps in &per_chain {
            assert_eq!(ps.num_machines(), 3);
        }
    }

    #[test]
    fn per_chain_length_is_sum_of_windows() {
        let (inst, chains, rounded) = pipeline(8, 2, 2, 3);
        let per_chain = build_chain_pseudo_schedules(&inst, &chains, &rounded);
        for (chain, ps) in chains.chains().iter().zip(per_chain.iter()) {
            let expected: u64 = chain.iter().map(|&j| rounded.window_of(JobId(j))).sum();
            assert_eq!(ps.len() as u64, expected);
        }
    }

    #[test]
    fn pseudo_schedules_preserve_rounded_masses() {
        let (inst, chains, rounded) = pipeline(10, 4, 2, 5);
        let per_chain = build_chain_pseudo_schedules(&inst, &chains, &rounded);
        let combined = overlay_with_delays(&per_chain, inst.num_machines(), &[0; 2]);
        let mass = mass_of_pseudo(&inst, &combined);
        for j in inst.jobs() {
            assert!(
                mass.get(j) >= ROUNDED_MASS_TARGET.min(1.0) - 1e-9,
                "job {j} mass {}",
                mass.get(j)
            );
        }
    }

    #[test]
    fn chain_windows_are_respected() {
        let (inst, chains, rounded) = pipeline(12, 3, 4, 7);
        let per_chain = build_chain_pseudo_schedules(&inst, &chains, &rounded);
        assert!(respects_chain_windows(&inst, &chains, &rounded, &per_chain));
    }

    #[test]
    fn overlay_with_delays_shifts_chains() {
        let (inst, chains, rounded) = pipeline(6, 2, 2, 9);
        let per_chain = build_chain_pseudo_schedules(&inst, &chains, &rounded);
        let undelayed = overlay_with_delays(&per_chain, inst.num_machines(), &[0, 0]);
        let delayed = overlay_with_delays(&per_chain, inst.num_machines(), &[0, 5]);
        assert_eq!(
            delayed.len(),
            per_chain[1]
                .len()
                .max(per_chain[0].len())
                .max(per_chain[1].len() + 5)
        );
        assert!(delayed.len() >= undelayed.len());
        // Total load is unchanged by delays.
        let load = |ps: &PseudoSchedule| -> usize {
            (0..inst.num_machines())
                .map(|i| ps.load(MachineId(i)))
                .sum()
        };
        assert_eq!(load(&undelayed), load(&delayed));
    }

    #[test]
    fn overlay_load_is_sum_of_chain_loads() {
        let (inst, chains, rounded) = pipeline(10, 3, 5, 11);
        let per_chain = build_chain_pseudo_schedules(&inst, &chains, &rounded);
        let combined = overlay_with_delays(&per_chain, inst.num_machines(), &[0; 5]);
        for i in 0..inst.num_machines() {
            let expected: usize = per_chain.iter().map(|ps| ps.load(MachineId(i))).sum();
            assert_eq!(combined.load(MachineId(i)), expected);
            assert_eq!(expected as u64, rounded.load_of(MachineId(i)));
        }
    }

    #[test]
    #[should_panic(expected = "one delay per chain")]
    fn overlay_requires_matching_delay_count() {
        let (inst, chains, rounded) = pipeline(6, 2, 3, 13);
        let per_chain = build_chain_pseudo_schedules(&inst, &chains, &rounded);
        let _ = overlay_with_delays(&per_chain, inst.num_machines(), &[0, 0]);
    }
}
