//! Scheduling under tree-like precedence constraints (Theorems 4.7 and 4.8).
//!
//! Following §4.2 of the paper, a directed forest is first decomposed into
//! `γ = O(log n)` blocks by the chain decomposition of Lemma 4.6 (after Kumar
//! et al.); the subgraph induced by each block is a disjoint union of chains,
//! and every ancestor of a job sits in an earlier block (or earlier on the
//! same chain). The chain algorithm of Theorem 4.4 is then run inside each
//! block, and the per-block schedules are concatenated in block order. Because
//! the optimal expected makespan of any induced sub-instance lower-bounds the
//! optimum of the whole instance, the concatenation costs an extra `O(log n)`
//! factor, giving `O(log m · log² n)` for in-/out-forests and an extra
//! `log(n+m)/log log(n+m)` factor for general directed forests.
//!
//! The per-block work — restrict the instance, build and solve the block's
//! (LP1), round, apply random delays — is completely independent across
//! blocks; only the final concatenation is ordered. The blocks are therefore
//! solved **in parallel** (one rayon task per block) and stitched together
//! in block order afterwards, so a single large forest request scales across
//! cores. Each block's chain stage is seeded deterministically by the shared
//! [`ChainsOptions::seed`], so the parallel schedule is bit-identical to the
//! sequential one.

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;
use suu_core::{Assignment, JobId, ObliviousSchedule, SuuInstance};
use suu_graph::{ChainDecomposition, ForestKind};

use crate::chains::{schedule_given_chains, ChainsOptions};
use crate::error::AlgorithmError;
use crate::lp_relaxation::LpMicros;
use crate::replicate::{default_sigma, replicate_with_tail};

/// Result of the forest pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestSchedule {
    /// The final oblivious schedule over the original job ids (execute
    /// cyclically).
    pub schedule: ObliviousSchedule,
    /// Number of blocks `γ` of the chain decomposition.
    pub num_blocks: usize,
    /// Per-block diagnostics: (block size, LP optimum, congestion).
    pub block_stats: Vec<BlockStats>,
    /// Simplex pivots summed over every block's (LP1).
    pub lp_pivots: usize,
    /// Wall-clock microseconds summed over every block's LP build + solve;
    /// compares equal by construction (see [`LpMicros`]).
    pub lp_micros: LpMicros,
    /// Replication factor used for each block schedule.
    pub sigma: usize,
}

/// Diagnostics for a single block of the chain decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStats {
    /// Number of jobs in the block.
    pub jobs: usize,
    /// Optimum of the block's (LP1).
    pub lp_value: f64,
    /// Simplex pivots of the block's (LP1).
    pub lp_pivots: usize,
    /// Maximum per-step congestion after random delays in the block.
    pub congestion: usize,
}

/// Runs the Theorem 4.7 / 4.8 pipeline with default chain options.
///
/// # Errors
///
/// Returns [`AlgorithmError::NotAForest`] if the underlying undirected graph
/// of the precedence DAG is not a forest, or an LP/rounding failure from a
/// block.
pub fn schedule_forest(instance: &SuuInstance) -> Result<ForestSchedule, AlgorithmError> {
    schedule_forest_with(instance, &ChainsOptions::default())
}

/// Runs the forest pipeline with explicit chain-stage options (the replication
/// flag and σ apply per block).
///
/// # Errors
///
/// See [`schedule_forest`].
pub fn schedule_forest_with(
    instance: &SuuInstance,
    options: &ChainsOptions,
) -> Result<ForestSchedule, AlgorithmError> {
    if instance.forest_kind() == ForestKind::GeneralDag {
        return Err(AlgorithmError::NotAForest);
    }
    let decomposition = ChainDecomposition::decompose(instance.precedence())
        .map_err(|_| AlgorithmError::NotAForest)?;

    let sigma = options
        .sigma
        .unwrap_or_else(|| default_sigma(instance.num_jobs()));
    // Blocks are scheduled with their own replication (so each block finishes
    // with high probability before the next one starts) but without the serial
    // tail, which is appended once globally at the end.
    let block_options = ChainsOptions {
        replicate: false,
        ..options.clone()
    };

    // Solve every block in parallel: block solves share no mutable state
    // (each works on its own restricted sub-instance) and `collect` returns
    // them in block order, so the sequential concatenation below produces
    // exactly the schedule the old serial loop did. The pivot budget in
    // `options.lp` is shared across blocks through `pivots_spent`: each block
    // starts with whatever the others have left *at the moment it begins*.
    // Enforcement is cooperative: with P blocks solving concurrently, each
    // may have snapshotted the full remaining budget, so total spend can
    // reach P× the budget in the worst case — the budget is a lever, not a
    // hard cap, under parallel execution. The wall-clock deadline, by
    // contrast, is absolute and exact in every block.
    let pivots_spent = AtomicUsize::new(0);
    let block_inputs = decomposition.block_chain_sets();
    let solved_blocks: Vec<Result<SolvedBlock, AlgorithmError>> = block_inputs
        .par_iter()
        .map(|(chain_set, mapping)| {
            solve_block(
                instance,
                chain_set,
                mapping,
                &block_options,
                sigma,
                &pivots_spent,
            )
        })
        .collect();

    let mut combined = ObliviousSchedule::new(instance.num_machines());
    let mut block_stats = Vec::new();
    let mut lp_pivots = 0usize;
    let mut lp_micros = 0u64;
    for solved in solved_blocks {
        let solved = solved?;
        combined = combined.concat(&solved.replicated);
        lp_pivots += solved.stats.lp_pivots;
        lp_micros = lp_micros.saturating_add(solved.lp_micros);
        block_stats.push(solved.stats);
    }

    let schedule = if options.replicate {
        // Append the global serial tail (replication already applied per
        // block above).
        let tail_owner = combined;
        replicate_with_tail(instance, &tail_owner, 1)
    } else {
        combined
    };

    Ok(ForestSchedule {
        schedule,
        num_blocks: decomposition.num_blocks(),
        block_stats,
        lp_pivots,
        lp_micros: LpMicros(lp_micros),
        sigma,
    })
}

/// Output of one block's parallel solve: the remapped, replicated schedule
/// segment plus the diagnostics to fold into the pipeline totals.
struct SolvedBlock {
    replicated: ObliviousSchedule,
    stats: BlockStats,
    lp_micros: u64,
}

/// Solves one block of the chain decomposition end to end: restrict the
/// instance to the block's jobs, run the Theorem 4.4 chain pipeline, remap
/// the schedule back to original job ids and apply the per-block
/// replication. Runs on a rayon worker; touches no shared mutable state.
fn solve_block(
    instance: &SuuInstance,
    chain_set: &suu_graph::ChainSet,
    mapping: &[usize],
    block_options: &ChainsOptions,
    sigma: usize,
    pivots_spent: &AtomicUsize,
) -> Result<SolvedBlock, AlgorithmError> {
    let jobs: Vec<JobId> = mapping.iter().map(|&j| JobId(j)).collect();
    let (sub_instance, _) = instance.restrict_to_jobs(&jobs);
    // Hand this block whatever pivot budget the others have left; report
    // exhaustion with the pipeline-wide total so the caller sees the true
    // cost, not one block's share.
    let mut block_options = block_options.clone();
    let already_spent = pivots_spent.load(Ordering::Relaxed);
    if let Some(total) = block_options.lp.max_pivots {
        let remaining = total.saturating_sub(already_spent);
        if remaining == 0 {
            return Err(AlgorithmError::BudgetExhausted {
                pivots: already_spent,
                wall_clock: false,
            });
        }
        block_options.lp.max_pivots = Some(remaining);
    }
    let block = match schedule_given_chains(&sub_instance, chain_set, &block_options) {
        Ok(block) => block,
        Err(AlgorithmError::BudgetExhausted { pivots, wall_clock }) => {
            return Err(AlgorithmError::BudgetExhausted {
                pivots: pivots + already_spent,
                wall_clock,
            })
        }
        Err(err) => return Err(err),
    };
    pivots_spent.fetch_add(block.lp_pivots, Ordering::Relaxed);
    let remapped = remap_jobs(&block.constant_mass_schedule, mapping);
    Ok(SolvedBlock {
        replicated: remapped.replicate_steps(sigma),
        stats: BlockStats {
            jobs: mapping.len(),
            lp_value: block.lp_value,
            lp_pivots: block.lp_pivots,
            congestion: block.congestion,
        },
        lp_micros: block.lp_micros.0,
    })
}

/// Rewrites a schedule expressed in block-local job ids into original job ids
/// using `mapping[local] = original`.
fn remap_jobs(schedule: &ObliviousSchedule, mapping: &[usize]) -> ObliviousSchedule {
    let m = schedule.num_machines();
    let steps = schedule
        .steps()
        .iter()
        .map(|step| {
            let mut out = Assignment::idle(m);
            for (machine, job) in step.busy_pairs() {
                out.assign(machine, JobId(mapping[job.0]));
            }
            out
        })
        .collect();
    ObliviousSchedule::from_steps(m, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::mass::mass_of_oblivious;
    use suu_core::InstanceBuilder;
    use suu_sim::{exact_expected_makespan_oblivious_cyclic, SimulationOptions, Simulator};
    use suu_workloads::{
        random_directed_forest, random_in_forest, random_out_forest, uniform_matrix,
    };

    fn forest_instance(n: usize, m: usize, seed: u64, kind: &str) -> SuuInstance {
        let dag = match kind {
            "out" => random_out_forest(n, 2.min(n), seed),
            "in" => random_in_forest(n, 2.min(n), seed),
            _ => random_directed_forest(n, 2.min(n), seed),
        };
        InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, seed))
            .precedence(dag)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_non_forest_dags() {
        let dag = suu_graph::Dag::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let inst = InstanceBuilder::new(4, 2)
            .uniform_probability(0.5)
            .precedence(dag)
            .build()
            .unwrap();
        assert_eq!(
            schedule_forest(&inst).unwrap_err(),
            AlgorithmError::NotAForest
        );
    }

    #[test]
    fn out_forest_schedule_covers_every_job_with_full_mass() {
        let inst = forest_instance(12, 3, 1, "out");
        let result = schedule_forest(&inst).unwrap();
        // Thanks to per-block replication plus the serial tail, every job
        // accumulates mass 1 within one pass of the schedule.
        let mass = mass_of_oblivious(&inst, &result.schedule);
        for j in inst.jobs() {
            assert!((mass.get(j) - 1.0).abs() < 1e-9, "job {j}: {}", mass.get(j));
        }
    }

    #[test]
    fn number_of_blocks_is_logarithmic() {
        let inst = forest_instance(64, 4, 3, "mixed");
        let result = schedule_forest(&inst).unwrap();
        assert!(result.num_blocks <= ChainDecomposition::width_bound(64));
        assert_eq!(result.block_stats.iter().map(|b| b.jobs).sum::<usize>(), 64);
    }

    #[test]
    fn in_forest_is_supported() {
        let inst = forest_instance(10, 3, 5, "in");
        let result = schedule_forest(&inst).unwrap();
        assert!(result.num_blocks >= 1);
        let expected = exact_expected_makespan_oblivious_cyclic(&inst, &result.schedule);
        assert!(expected.is_finite());
    }

    #[test]
    fn simulated_execution_respects_precedence_and_finishes() {
        let inst = forest_instance(14, 4, 7, "mixed");
        let result = schedule_forest(&inst).unwrap();
        let sim = Simulator::new(SimulationOptions {
            trials: 30,
            max_steps: 500_000,
            base_seed: 5,
        });
        let schedule = result.schedule.clone();
        let est = sim.estimate(&inst, move || schedule.clone());
        assert_eq!(est.censored, 0);
    }

    #[test]
    fn chains_and_independent_instances_take_the_single_block_path() {
        let inst = InstanceBuilder::new(6, 2)
            .probability_matrix(uniform_matrix(6, 2, 0.2, 0.9, 9))
            .precedence(suu_workloads::random_chains(6, 2, 9))
            .build()
            .unwrap();
        let result = schedule_forest(&inst).unwrap();
        assert_eq!(result.num_blocks, 1);
    }

    #[test]
    fn parallel_blocks_match_a_sequential_fold() {
        // The rayon fan-out must be invisible in the output: solving the
        // blocks one by one with the same per-block function and folding in
        // block order reproduces `schedule_forest_with` bit for bit.
        for seed in [2, 4, 8] {
            let inst = forest_instance(24, 4, seed, "mixed");
            let options = ChainsOptions::default();
            let parallel = schedule_forest_with(&inst, &options).unwrap();

            let decomposition = ChainDecomposition::decompose(inst.precedence()).unwrap();
            let sigma = options
                .sigma
                .unwrap_or_else(|| default_sigma(inst.num_jobs()));
            let block_options = ChainsOptions {
                replicate: false,
                ..options.clone()
            };
            let mut combined = ObliviousSchedule::new(inst.num_machines());
            let mut pivots = 0usize;
            let spent = AtomicUsize::new(0);
            for (chain_set, mapping) in decomposition.block_chain_sets() {
                let solved =
                    solve_block(&inst, &chain_set, &mapping, &block_options, sigma, &spent)
                        .unwrap();
                combined = combined.concat(&solved.replicated);
                pivots += solved.stats.lp_pivots;
            }
            let serial = if options.replicate {
                replicate_with_tail(&inst, &combined, 1)
            } else {
                combined
            };
            assert_eq!(parallel.schedule, serial, "seed {seed}");
            assert_eq!(parallel.lp_pivots, pivots, "seed {seed}");
        }
    }

    #[test]
    fn shared_pivot_budget_trips_across_blocks() {
        use crate::lp_relaxation::LpBudget;
        let inst = forest_instance(24, 4, 2, "mixed");
        let unbudgeted = schedule_forest(&inst).unwrap();
        assert!(unbudgeted.lp_pivots > 1, "needs a real LP workload");

        // One pivot for the whole forest: some block must trip the shared
        // budget, and the error reports at least that one pivot.
        let starved = ChainsOptions {
            lp: LpBudget {
                max_pivots: Some(1),
                ..LpBudget::default()
            },
            ..ChainsOptions::default()
        };
        let err = schedule_forest_with(&inst, &starved).unwrap_err();
        assert!(
            matches!(
                err,
                AlgorithmError::BudgetExhausted {
                    wall_clock: false,
                    ..
                }
            ),
            "{err:?}"
        );

        // A budget covering the full pipeline changes nothing.
        let generous = ChainsOptions {
            lp: LpBudget {
                max_pivots: Some(unbudgeted.lp_pivots + 1),
                ..LpBudget::default()
            },
            ..ChainsOptions::default()
        };
        assert_eq!(schedule_forest_with(&inst, &generous).unwrap(), unbudgeted);
    }

    #[test]
    fn block_order_respects_precedence() {
        // Build a specific two-level out-tree and check that no machine works
        // on a child job before the parent's block segment in the schedule.
        let dag = suu_graph::Dag::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let inst = InstanceBuilder::new(3, 2)
            .uniform_probability(0.6)
            .precedence(dag)
            .build()
            .unwrap();
        let result = schedule_forest(&inst).unwrap();
        // Find the first step where job 1 or 2 is worked and the last step in
        // which job 0 accumulates its (replicated-block) mass; the children's
        // first step must come after job 0's block, except inside the final
        // serial tail which the executor's eligibility filter handles anyway.
        let tail_start = result.schedule.len() - inst.num_jobs();
        let first_child_step = (0..tail_start).find(|&t| {
            !result.schedule.step(t).machines_on(JobId(1)).is_empty()
                || !result.schedule.step(t).machines_on(JobId(2)).is_empty()
        });
        let last_parent_step = (0..tail_start)
            .rev()
            .find(|&t| !result.schedule.step(t).machines_on(JobId(0)).is_empty());
        if let (Some(child), Some(parent)) = (first_child_step, last_parent_step) {
            assert!(
                child > parent,
                "child work at step {child} precedes parent block ending at {parent}"
            );
        }
    }
}
