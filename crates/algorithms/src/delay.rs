//! Random-delay flattening of pseudo-schedules (§4.1, after Shmoys–Stein–Wein).
//!
//! The pseudo-schedule produced by overlaying the per-chain schedules may
//! assign a machine to many jobs in one step. The paper fixes this by delaying
//! the start of each chain by an independent uniform amount in `[0, Π_max]`
//! (`Π_max` = maximum machine load): with high probability no machine is then
//! assigned more than `O(log(n+m) / log log(n+m))` jobs in any step, and the
//! pseudo-schedule can be *flattened* — each step expanded into as many
//! feasible sub-steps as its congestion — into an oblivious schedule whose
//! length grows by only that congestion factor.
//!
//! The paper derandomises this step with the techniques of Schmidt–Siegel–
//! Srinivasan; here the substitute is a seeded best-of-`k` search over delay
//! vectors (deterministic given the seed), which preserves the congestion
//! guarantee in expectation and is what the experiments measure (experiment
//! E12 checks the congestion bound, ablation A2 compares delay strategies).

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use suu_core::{Assignment, MachineId, ObliviousSchedule, PseudoSchedule};

use crate::pseudo::overlay_with_delays;

/// Result of the delay-and-flatten step.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayOutcome {
    /// The feasible oblivious schedule obtained by flattening.
    pub schedule: ObliviousSchedule,
    /// The chosen per-chain delays.
    pub delays: Vec<usize>,
    /// The maximum per-step congestion of the delayed pseudo-schedule (the
    /// factor by which flattening expands the worst step).
    pub congestion: usize,
    /// Length of the delayed pseudo-schedule before flattening.
    pub pseudo_len: usize,
}

/// Maximum machine load across the union of the per-chain pseudo-schedules —
/// the `Π_max` from which delays are drawn.
#[must_use]
pub fn max_load(per_chain: &[PseudoSchedule], num_machines: usize) -> usize {
    (0..num_machines)
        .map(|i| {
            per_chain
                .iter()
                .map(|ps| ps.load(MachineId(i)))
                .sum::<usize>()
        })
        .max()
        .unwrap_or(0)
}

/// Overlays the chains with random delays, trying `tries` independent delay
/// vectors and keeping the one with the smallest maximum congestion, then
/// flattens the winner into a feasible oblivious schedule.
///
/// `tries = 1` reproduces the plain randomised construction of the paper;
/// larger values act as the deterministic substitute for the derandomised
/// variant. `tries = 0` is treated as 1.
#[must_use]
pub fn flatten_with_random_delays(
    per_chain: &[PseudoSchedule],
    num_machines: usize,
    seed: u64,
    tries: usize,
) -> DelayOutcome {
    let tries = tries.max(1);
    let pi_max = max_load(per_chain, num_machines);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let mut best: Option<(Vec<usize>, PseudoSchedule, usize)> = None;
    for attempt in 0..tries {
        let delays: Vec<usize> = if attempt == 0 {
            // Always evaluate the zero-delay baseline too: for few chains it is
            // often already feasible and it makes the search deterministic even
            // for tries = 1 on single-chain inputs.
            vec![0; per_chain.len()]
        } else {
            (0..per_chain.len())
                .map(|_| rng.gen_range(0..=pi_max))
                .collect()
        };
        let combined = overlay_with_delays(per_chain, num_machines, &delays);
        let congestion = combined.max_congestion();
        let better = match &best {
            None => true,
            Some((_, _, best_congestion)) => congestion < *best_congestion,
        };
        if better {
            best = Some((delays, combined, congestion));
        }
    }
    let (delays, combined, congestion) = best.expect("at least one attempt is made");
    let schedule = flatten(&combined);
    DelayOutcome {
        schedule,
        delays,
        congestion,
        pseudo_len: combined.len(),
    }
}

/// Flattens a pseudo-schedule into a feasible oblivious schedule by expanding
/// every step into as many sub-steps as its own congestion, assigning each
/// machine its jobs one per sub-step (idle in the remaining sub-steps).
///
/// The length of the result is `Σ_t congestion(t) ≤ congestion_max · len`, and
/// the relative order of any two assignments on different original steps is
/// preserved, so chain windows remain respected.
#[must_use]
pub fn flatten(pseudo: &PseudoSchedule) -> ObliviousSchedule {
    let m = pseudo.num_machines();
    let mut schedule = ObliviousSchedule::new(m);
    for t in 0..pseudo.len() {
        let step = pseudo.step(t);
        let congestion = step.max_congestion();
        if congestion == 0 {
            // Keep empty steps: they represent deliberate idle time (delays)
            // and preserve window alignment.
            schedule.push_step(Assignment::idle(m));
            continue;
        }
        for sub in 0..congestion {
            let mut a = Assignment::idle(m);
            for i in 0..m {
                if let Some(&job) = step.jobs_of(MachineId(i)).get(sub) {
                    a.assign(MachineId(i), job);
                }
            }
            schedule.push_step(a);
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::mass::{mass_of_oblivious, mass_of_pseudo};
    use suu_core::{InstanceBuilder, JobId};
    use suu_graph::ChainSet;
    use suu_workloads::{random_chains, uniform_matrix};

    use crate::lp_relaxation::solve_lp1;
    use crate::pseudo::build_chain_pseudo_schedules;
    use crate::rounding::round_solution;

    fn per_chain_fixture(
        n: usize,
        m: usize,
        chains: usize,
        seed: u64,
    ) -> (suu_core::SuuInstance, Vec<PseudoSchedule>) {
        let dag = random_chains(n, chains, seed);
        let chain_set = ChainSet::from_dag(&dag).unwrap();
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, seed))
            .precedence(dag)
            .build()
            .unwrap();
        let frac = solve_lp1(&inst, &chain_set).unwrap();
        let rounded = round_solution(&inst, &frac).unwrap();
        let per_chain = build_chain_pseudo_schedules(&inst, &chain_set, &rounded);
        (inst, per_chain)
    }

    #[test]
    fn flatten_produces_feasible_schedule() {
        let mut ps = PseudoSchedule::new(2);
        ps.assign_interval(MachineId(0), JobId(0), 0, 2);
        ps.assign_interval(MachineId(0), JobId(1), 0, 1);
        ps.assign_interval(MachineId(1), JobId(2), 1, 2);
        let flat = flatten(&ps);
        // Step 0 had congestion 2, step 1 congestion 1 → total length 3.
        assert_eq!(flat.len(), 3);
        // Every machine works on at most one job per step by construction; all
        // original (machine, job, step-count) assignments are preserved.
        let count = |job: usize| -> usize {
            (0..flat.len())
                .flat_map(|t| flat.step(t).machines_on(JobId(job)))
                .count()
        };
        assert_eq!(count(0), 2);
        assert_eq!(count(1), 1);
        assert_eq!(count(2), 1);
    }

    #[test]
    fn flatten_preserves_empty_steps() {
        let ps = PseudoSchedule::idle(2, 4);
        let flat = flatten(&ps);
        assert_eq!(flat.len(), 4);
        assert_eq!(flat.max_load(), 0);
    }

    #[test]
    fn congestion_of_flattened_schedule_is_one() {
        let (_inst, per_chain) = per_chain_fixture(12, 3, 4, 3);
        let outcome = flatten_with_random_delays(&per_chain, 3, 7, 4);
        // A feasible oblivious schedule: every machine ≤ 1 job per step is
        // guaranteed by the Assignment type itself; check length accounting.
        assert!(outcome.schedule.len() >= outcome.pseudo_len);
        assert!(outcome.schedule.len() <= outcome.pseudo_len * outcome.congestion.max(1));
    }

    #[test]
    fn masses_survive_delay_and_flatten() {
        let (inst, per_chain) = per_chain_fixture(10, 4, 3, 5);
        let combined = overlay_with_delays(&per_chain, 4, &[0; 3]);
        let pseudo_mass = mass_of_pseudo(&inst, &combined);
        let outcome = flatten_with_random_delays(&per_chain, 4, 11, 4);
        let flat_mass = mass_of_oblivious(&inst, &outcome.schedule);
        for j in inst.jobs() {
            assert!(
                (flat_mass.get(j) - pseudo_mass.get(j)).abs() < 1e-9,
                "job {j}: {} vs {}",
                flat_mass.get(j),
                pseudo_mass.get(j)
            );
        }
    }

    #[test]
    fn best_of_k_congestion_is_no_worse_than_single_try() {
        let (_inst, per_chain) = per_chain_fixture(16, 4, 8, 9);
        let single = flatten_with_random_delays(&per_chain, 4, 21, 1);
        let multi = flatten_with_random_delays(&per_chain, 4, 21, 16);
        assert!(multi.congestion <= single.congestion);
    }

    #[test]
    fn zero_delays_for_single_chain() {
        let (_inst, per_chain) = per_chain_fixture(6, 2, 1, 13);
        let outcome = flatten_with_random_delays(&per_chain, 2, 3, 4);
        assert_eq!(outcome.delays, vec![0]);
        // A single chain never conflicts with itself across chains, but within
        // the chain several machines can share a window; congestion counts jobs
        // per machine, which for one chain is at most 1 (one job per window).
        assert_eq!(outcome.congestion, 1);
    }

    #[test]
    fn delays_are_reproducible_per_seed() {
        let (_inst, per_chain) = per_chain_fixture(12, 3, 4, 17);
        let a = flatten_with_random_delays(&per_chain, 3, 5, 8);
        let b = flatten_with_random_delays(&per_chain, 3, 5, 8);
        assert_eq!(a, b);
        let c = flatten_with_random_delays(&per_chain, 3, 6, 8);
        // Different seeds may pick different delay vectors (not guaranteed to
        // differ, but the outcome must still be valid).
        assert!(c.congestion >= 1);
    }

    #[test]
    fn max_load_matches_sum_of_chain_loads() {
        let (inst, per_chain) = per_chain_fixture(10, 3, 5, 19);
        let pi_max = max_load(&per_chain, inst.num_machines());
        let combined = overlay_with_delays(&per_chain, inst.num_machines(), &[0; 5]);
        assert_eq!(pi_max, combined.max_load());
    }
}
