//! `SUU-I-ALG` (Figure 2): the adaptive `O(log n)`-approximation for
//! independent jobs (Theorem 3.3).
//!
//! At every step the algorithm simply reruns the greedy `MSM-ALG` on the set
//! of still-unfinished jobs and uses the resulting assignment. Theorem 3.1
//! guarantees that some single-step assignment accumulates total mass
//! `Ω(|S_t| / T^OPT)` over the unfinished jobs `S_t`; the 1/3-approximation of
//! MSM-ALG and Proposition 2.1 then give an expected completion of
//! `Ω(|S_t| / T^OPT)` jobs per step, and a Chernoff argument finishes within
//! `O(T^OPT log n)` steps with high probability.
//!
//! The policy is *adaptive* (it looks at the unfinished set), in contrast with
//! the oblivious schedules produced by [`crate::suu_i_obl`] and
//! [`crate::independent_lp`].

use suu_core::{Assignment, JobSet, SchedulingPolicy, SuuInstance};

use crate::msm::msm_alg;

/// The adaptive SUU-I policy: rerun `MSM-ALG` on the unfinished set each step.
///
/// The policy is valid for instances with precedence constraints too (it then
/// greedily maximises mass over the unfinished jobs and relies on the
/// executor's eligibility filter), but the `O(log n)` guarantee of Theorem 3.3
/// only applies to independent jobs.
#[derive(Debug, Clone)]
pub struct SuuIAdaptivePolicy {
    instance: SuuInstance,
}

impl SuuIAdaptivePolicy {
    /// Creates the policy for an instance.
    #[must_use]
    pub fn new(instance: SuuInstance) -> Self {
        Self { instance }
    }

    /// The underlying instance.
    #[must_use]
    pub fn instance(&self) -> &SuuInstance {
        &self.instance
    }
}

impl SchedulingPolicy for SuuIAdaptivePolicy {
    fn assign(&mut self, _step: usize, unfinished: &JobSet) -> Assignment {
        // Restrict attention to *eligible* unfinished jobs so that machines are
        // not parked on jobs the executor would filter out anyway. For
        // independent jobs this is exactly the unfinished set.
        let finished = unfinished.complement_mask();
        let eligible = JobSet::from_members(
            self.instance.num_jobs(),
            self.instance.eligible_jobs(&finished),
        );
        msm_alg(&self.instance, &eligible)
    }

    fn name(&self) -> String {
        "SUU-I-ALG".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::{InstanceBuilder, JobId, MachineId};
    use suu_sim::{SimulationOptions, Simulator};
    use suu_workloads::uniform_matrix;

    #[test]
    fn policy_assigns_only_unfinished_jobs() {
        let inst = InstanceBuilder::new(3, 2)
            .uniform_probability(0.5)
            .build()
            .unwrap();
        let mut policy = SuuIAdaptivePolicy::new(inst);
        let unfinished = JobSet::from_members(3, [JobId(2)]);
        let a = policy.assign(0, &unfinished);
        for (_, j) in a.busy_pairs() {
            assert_eq!(j, JobId(2));
        }
        assert!(!a.machines_on(JobId(2)).is_empty());
        assert_eq!(policy.name(), "SUU-I-ALG");
    }

    #[test]
    fn policy_respects_eligibility_under_precedence() {
        let inst = InstanceBuilder::new(2, 1)
            .uniform_probability(0.9)
            .chains(&[vec![0, 1]])
            .build()
            .unwrap();
        let mut policy = SuuIAdaptivePolicy::new(inst);
        // Both unfinished: only job 0 is eligible, so the machine goes there.
        let a = policy.assign(0, &JobSet::all(2));
        assert_eq!(a.target(MachineId(0)), Some(JobId(0)));
    }

    #[test]
    fn finishes_uniform_instances_quickly() {
        let probs = uniform_matrix(12, 4, 0.2, 0.9, 5);
        let inst = InstanceBuilder::new(12, 4)
            .probability_matrix(probs)
            .build()
            .unwrap();
        let sim = Simulator::new(SimulationOptions {
            trials: 60,
            max_steps: 100_000,
            base_seed: 17,
        });
        let inst_for_factory = inst.clone();
        let est = sim.estimate(&inst, move || {
            SuuIAdaptivePolicy::new(inst_for_factory.clone())
        });
        assert_eq!(est.censored, 0);
        // Loose sanity bound: a dozen jobs over four machines with p ≥ 0.2
        // should comfortably finish within a few dozen steps on average.
        assert!(est.mean() < 60.0, "mean makespan {}", est.mean());
    }

    #[test]
    fn beats_or_matches_single_best_machine_heuristic_on_bottleneck() {
        // On the bottleneck workload, sending every job to the single good
        // machine serialises everything; the greedy mass policy spreads work
        // and should not be slower.
        let inst = suu_workloads::bottleneck_instance(8, 4, 3);
        let sim = Simulator::new(SimulationOptions {
            trials: 80,
            max_steps: 100_000,
            base_seed: 23,
        });
        let adaptive_inst = inst.clone();
        let adaptive = sim
            .estimate(&inst, move || {
                SuuIAdaptivePolicy::new(adaptive_inst.clone())
            })
            .mean();

        // Heuristic: every unfinished job waits for machine 0 (the best one),
        // processed one at a time.
        let heuristic_inst = inst.clone();
        let heuristic = sim
            .estimate(&inst, move || {
                let inst = heuristic_inst.clone();
                suu_sim::FnRegimen::new("best-machine-serial", move |s: &JobSet| {
                    let mut a = Assignment::idle(inst.num_machines());
                    if let Some(j) = s.iter().next() {
                        a.assign(MachineId(0), j);
                    }
                    a
                })
            })
            .mean();
        assert!(
            adaptive <= heuristic * 1.1,
            "adaptive {adaptive} should not lose badly to serial heuristic {heuristic}"
        );
    }
}
