//! `SUU-I-OBL` (Algorithm 2): the combinatorial oblivious schedule for
//! independent jobs (Lemma 3.5 / Theorem 3.6).
//!
//! The algorithm guesses the horizon `t` by doubling. For each guess it
//! repeatedly invokes `MSM-E-ALG` on the jobs that have not yet accumulated
//! mass `1/96`, concatenating the produced length-`t` schedules, for at most
//! `66 log n` rounds. Theorem 3.1 plus the 1/3-approximation of `MSM-E-ALG`
//! guarantee that once `t ≥ 2 T^OPT` each round retires at least a `1/95`
//! fraction of the remaining jobs, so the loop ends with every job holding
//! mass ≥ 1/96 and the concatenated schedule has length `O(log n) · T^OPT`
//! (Lemma 3.5). Repeating that schedule forever (equivalently: executing it
//! cyclically) gives expected makespan `O(log² n) · T^OPT` (Theorem 3.6).

use suu_core::{JobId, JobSet, ObliviousSchedule, SuuInstance};

use crate::error::AlgorithmError;
use crate::msm_ext::msm_e_alg;

/// The mass threshold each job must reach before it is retired from the loop.
pub const MASS_TARGET: f64 = 1.0 / 96.0;

/// Cooperative limits for the combinatorial pipeline. `SUU-I-OBL` runs no
/// LP, so only the wall-clock deadline applies: it is checked between
/// `MSM-E-ALG` rounds (each round is a cheap matching computation), and
/// exceeding it aborts with [`AlgorithmError::BudgetExhausted`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SuuIOblLimits {
    /// Absolute deadline for the doubling search.
    pub deadline: Option<std::time::Instant>,
}

/// Diagnostics and result of `SUU-I-OBL`.
#[derive(Debug, Clone, PartialEq)]
pub struct SuuIOblivious {
    /// The oblivious schedule in which every job accumulates mass ≥ 1/96.
    /// Its length is `O(log n) · T^OPT` (Lemma 3.5). Execute it cyclically
    /// (or see [`crate::replicate`]) for the Theorem 3.6 guarantee.
    pub schedule: ObliviousSchedule,
    /// The final doubling value of `t` that succeeded.
    pub final_t: u64,
    /// Number of `MSM-E-ALG` invocations across all doubling phases.
    pub rounds: usize,
    /// Mass accumulated by each job in `schedule`.
    pub masses: Vec<f64>,
}

/// Runs `SUU-I-OBL` and returns the constant-mass oblivious schedule.
///
/// # Errors
///
/// Returns [`AlgorithmError::NotIndependent`] if the instance has precedence
/// constraints (use [`crate::chains`] or [`crate::forest`] instead), or an
/// internal error if the doubling search fails to terminate (impossible for
/// valid instances).
pub fn suu_i_oblivious(instance: &SuuInstance) -> Result<SuuIOblivious, AlgorithmError> {
    suu_i_oblivious_with(instance, &SuuIOblLimits::default())
}

/// [`suu_i_oblivious`] under explicit limits (currently just the deadline).
///
/// # Errors
///
/// In addition to [`suu_i_oblivious`]'s errors, returns
/// [`AlgorithmError::BudgetExhausted`] when the deadline passes mid-search.
pub fn suu_i_oblivious_with(
    instance: &SuuInstance,
    limits: &SuuIOblLimits,
) -> Result<SuuIOblivious, AlgorithmError> {
    if !instance.is_independent() {
        return Err(AlgorithmError::NotIndependent);
    }
    let expired = || {
        limits
            .deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    };
    let n = instance.num_jobs();
    let max_rounds_per_phase = (66.0 * (n.max(2) as f64).log2()).ceil() as usize;
    // t never needs to exceed ⌈n / p_min⌉ (the crude serial bound in the
    // paper's running-time argument); add headroom for safety.
    let t_cap = ((n as f64 / instance.min_positive_prob()).ceil() as u64)
        .saturating_mul(4)
        .max(4);

    let m = instance.num_machines();
    let mut t: u64 = 1;
    let mut total_rounds = 0usize;

    loop {
        let mut remaining = JobSet::all(n);
        let mut schedule = ObliviousSchedule::new(m);
        let mut masses = vec![0.0f64; n];
        let mut rounds_this_phase = 0usize;

        while !remaining.is_empty() && rounds_this_phase < max_rounds_per_phase {
            if expired() {
                return Err(AlgorithmError::BudgetExhausted {
                    pivots: 0,
                    wall_clock: true,
                });
            }
            let sol = msm_e_alg(instance, &remaining, t);
            total_rounds += 1;
            rounds_this_phase += 1;
            // Record masses and retire jobs that reached the target. Mass from
            // earlier rounds is deliberately ignored, exactly as in Algorithm 2
            // ("we start from scratch by ignoring any mass ... accumulated in
            // the previous rounds").
            let mut retired_any = false;
            for j in remaining.iter().collect::<Vec<JobId>>() {
                let mass = sol.mass_of(instance, j);
                if mass >= MASS_TARGET {
                    masses[j.0] = mass;
                    remaining.remove(j);
                    retired_any = true;
                }
            }
            schedule = schedule.concat(&sol.to_schedule(instance));
            if !retired_any && remaining.len() == n {
                // Nothing retired in the very first round: t is clearly too
                // small; no point burning the remaining rounds.
                break;
            }
        }

        if remaining.is_empty() {
            return Ok(SuuIOblivious {
                schedule,
                final_t: t,
                rounds: total_rounds,
                masses,
            });
        }
        if t >= t_cap {
            return Err(AlgorithmError::Internal(format!(
                "SUU-I-OBL doubling search exceeded the cap t = {t_cap}"
            )));
        }
        t = (t * 2).min(t_cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::mass::mass_of_oblivious;
    use suu_core::InstanceBuilder;
    use suu_sim::exact_expected_makespan_oblivious_cyclic;
    use suu_workloads::{sparse_uniform_matrix, uniform_matrix};

    fn uniform_instance(n: usize, m: usize, seed: u64) -> SuuInstance {
        InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.05, 0.9, seed))
            .build()
            .unwrap()
    }

    #[test]
    fn every_job_reaches_the_mass_target() {
        let inst = uniform_instance(10, 3, 1);
        let result = suu_i_oblivious(&inst).unwrap();
        let masses = mass_of_oblivious(&inst, &result.schedule);
        for j in inst.jobs() {
            assert!(
                masses.get(j) >= MASS_TARGET - 1e-9,
                "job {j} only accumulated {}",
                masses.get(j)
            );
        }
    }

    #[test]
    fn reported_masses_match_schedule_masses() {
        let inst = uniform_instance(6, 2, 3);
        let result = suu_i_oblivious(&inst).unwrap();
        let masses = mass_of_oblivious(&inst, &result.schedule);
        for j in inst.jobs() {
            // The recorded per-round mass is a lower bound on the schedule's
            // total accumulated mass (rounds are concatenated).
            assert!(masses.get(j) + 1e-9 >= result.masses[j.0].min(1.0));
        }
    }

    #[test]
    fn rejects_precedence_constraints() {
        let inst = InstanceBuilder::new(2, 1)
            .uniform_probability(0.5)
            .chains(&[vec![0, 1]])
            .build()
            .unwrap();
        assert_eq!(
            suu_i_oblivious(&inst).unwrap_err(),
            AlgorithmError::NotIndependent
        );
    }

    #[test]
    fn handles_sparse_heterogeneous_instances() {
        let n = 12;
        let m = 5;
        let probs = sparse_uniform_matrix(n, m, 0.1, 0.8, 0.6, 7);
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(probs)
            .build()
            .unwrap();
        let result = suu_i_oblivious(&inst).unwrap();
        assert!(result.final_t >= 1);
        assert!(!result.schedule.is_empty());
        let masses = mass_of_oblivious(&inst, &result.schedule);
        assert!(masses.min() >= MASS_TARGET - 1e-9);
    }

    #[test]
    fn single_job_single_machine_is_trivial() {
        let inst = InstanceBuilder::new(1, 1)
            .uniform_probability(0.5)
            .build()
            .unwrap();
        let result = suu_i_oblivious(&inst).unwrap();
        // One step of mass 0.5 ≥ 1/96 suffices, so the first phase (t = 1)
        // must succeed in one round.
        assert_eq!(result.final_t, 1);
        assert_eq!(result.schedule.len(), 1);
    }

    #[test]
    fn cyclic_execution_has_finite_expected_makespan() {
        let inst = uniform_instance(6, 3, 11);
        let result = suu_i_oblivious(&inst).unwrap();
        let expected = exact_expected_makespan_oblivious_cyclic(&inst, &result.schedule);
        assert!(expected.is_finite());
        // Crude sanity bound: with every job holding ≥ 1/96 mass per cycle the
        // expected number of cycles is O(96e · log n); the cycle length is the
        // schedule length.
        let cycles_bound = 96.0 * std::f64::consts::E * ((6.0f64).log2() + 2.0);
        assert!(
            expected <= result.schedule.len() as f64 * cycles_bound,
            "expected {expected} vs bound {}",
            result.schedule.len() as f64 * cycles_bound
        );
    }

    #[test]
    fn schedule_length_is_modest_for_easy_instances() {
        // With probabilities ≥ 0.5 everywhere and as many machines as jobs,
        // T^OPT is O(1), so the Lemma 3.5 length O(log n)·T^OPT should be far
        // below the crude serial bound n / p_min.
        let n = 8;
        let inst = InstanceBuilder::new(n, n)
            .uniform_probability(0.5)
            .build()
            .unwrap();
        let result = suu_i_oblivious(&inst).unwrap();
        assert!(
            (result.schedule.len() as f64) <= 16.0 * (n as f64).log2().max(1.0),
            "length {} too large",
            result.schedule.len()
        );
    }
}
