//! Schedule replication and the serial tail schedule (§4.1).
//!
//! Once an oblivious schedule `Σ_{o,1}` gives every job a constant success
//! probability, the paper boosts it to a high-probability guarantee by
//! replicating each step `σ = Θ(log n)` times (`Σ_{o,2}`), and appends the
//! simple schedule `Σ_{o,3}` that assigns *all* machines to one job at a time
//! in topological order. The final schedule is `Σ_{o,2} ∘ Σ_{o,3}^∞`; with
//! probability `1 − 1/n²` everything finishes inside `Σ_{o,2}`, and the tail
//! contributes only `O(T^OPT)` to the expectation otherwise. In this
//! implementation the concatenation `Σ_{o,2} ∘ Σ_{o,3}` is returned as a
//! finite schedule whose cyclic execution realises the same guarantee.

use suu_core::{Assignment, JobId, ObliviousSchedule, SuuInstance};
use suu_graph::topo::sort_subset;

/// The default replication factor `σ = ⌈6 ln n⌉`.
///
/// The paper states `σ = 16 log n`, derived from the per-pass success
/// probability `1/(2e)` that Proposition 2.1 guarantees for a job of mass 1/2.
/// Replicating each *step* σ times actually multiplies the job's accumulated
/// mass, so the per-pass failure probability is at most `e^{-σ/2}`; requiring
/// `n · e^{-σ/2} ≤ 1/n²` gives `σ ≥ 6 ln n`, which preserves the paper's
/// `1 − 1/n²` guarantee (and its `Θ(log n)` asymptotics) with a smaller
/// constant. Callers that want the paper's literal constant can pass their own
/// σ to [`replicate_with_tail`].
#[must_use]
pub fn default_sigma(num_jobs: usize) -> usize {
    (6.0 * (num_jobs.max(2) as f64).ln()).ceil().max(1.0) as usize
}

/// The serial tail `Σ_{o,3}`: one step per job, all machines assigned to that
/// job, jobs in topological order of the precedence DAG.
#[must_use]
pub fn serial_tail(instance: &SuuInstance) -> ObliviousSchedule {
    let m = instance.num_machines();
    let order = sort_subset(
        instance.precedence(),
        &(0..instance.num_jobs()).collect::<Vec<_>>(),
    );
    let steps = order
        .into_iter()
        .map(|j| Assignment::all_on(m, JobId(j)))
        .collect();
    ObliviousSchedule::from_steps(m, steps)
}

/// Replicates every step of `schedule` `sigma` times and appends the serial
/// tail: the finite form of `Σ_{o,2} ∘ Σ_{o,3}^∞`.
///
/// # Panics
///
/// Panics if `schedule` covers a different number of machines than
/// `instance`.
#[must_use]
pub fn replicate_with_tail(
    instance: &SuuInstance,
    schedule: &ObliviousSchedule,
    sigma: usize,
) -> ObliviousSchedule {
    assert_eq!(
        schedule.num_machines(),
        instance.num_machines(),
        "schedule and instance machine counts must match"
    );
    let replicated = schedule.replicate_steps(sigma.max(1));
    replicated.concat(&serial_tail(instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::mass::mass_of_oblivious;
    use suu_core::{InstanceBuilder, MachineId};
    use suu_sim::exact_expected_makespan_oblivious_cyclic;
    use suu_workloads::uniform_matrix;

    fn small_instance(n: usize, m: usize, seed: u64) -> SuuInstance {
        InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.2, 0.9, seed))
            .build()
            .unwrap()
    }

    #[test]
    fn sigma_grows_logarithmically() {
        assert_eq!(default_sigma(2), 5);
        assert!(default_sigma(1024) >= 41);
        assert!(default_sigma(1024) <= 43);
        assert!(default_sigma(1) >= 1);
        assert!(default_sigma(64) > default_sigma(8));
    }

    #[test]
    fn serial_tail_has_one_step_per_job_in_topological_order() {
        let inst = InstanceBuilder::new(3, 2)
            .uniform_probability(0.5)
            .chains(&[vec![2, 0, 1]])
            .build()
            .unwrap();
        let tail = serial_tail(&inst);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.step(0).machines_on(JobId(2)).len(), 2);
        assert_eq!(tail.step(1).machines_on(JobId(0)).len(), 2);
        assert_eq!(tail.step(2).machines_on(JobId(1)).len(), 2);
    }

    #[test]
    fn replication_multiplies_length_and_appends_tail() {
        let inst = small_instance(4, 2, 1);
        let mut base = ObliviousSchedule::new(2);
        let mut a = Assignment::idle(2);
        a.assign(MachineId(0), JobId(0));
        base.push_step(a);
        let combined = replicate_with_tail(&inst, &base, 5);
        assert_eq!(combined.len(), 5 + 4);
    }

    #[test]
    fn replication_preserves_and_boosts_mass() {
        let inst = small_instance(4, 3, 2);
        // A 1-step schedule giving each of jobs 0..2 some mass via machines.
        let mut a = Assignment::idle(3);
        a.assign(MachineId(0), JobId(0));
        a.assign(MachineId(1), JobId(1));
        a.assign(MachineId(2), JobId(2));
        let base = ObliviousSchedule::from_steps(3, vec![a]);
        let combined = replicate_with_tail(&inst, &base, 8);
        let mass = mass_of_oblivious(&inst, &combined);
        // Thanks to the tail, every job (including job 3, untouched by the
        // base schedule) accumulates full mass 1 within the combined schedule.
        for j in inst.jobs() {
            assert!((mass.get(j) - 1.0).abs() < 1e-9, "job {j}");
        }
    }

    #[test]
    fn cyclic_execution_of_replicated_schedule_is_finite() {
        let inst = small_instance(3, 2, 3);
        let mut a = Assignment::idle(2);
        a.assign(MachineId(0), JobId(0));
        a.assign(MachineId(1), JobId(1));
        let base = ObliviousSchedule::from_steps(2, vec![a]);
        let combined = replicate_with_tail(&inst, &base, 4);
        let expected = exact_expected_makespan_oblivious_cyclic(&inst, &combined);
        assert!(expected.is_finite());
        assert!(expected > 0.0);
    }

    #[test]
    fn zero_sigma_is_clamped_to_one() {
        let inst = small_instance(2, 1, 4);
        let mut a = Assignment::idle(1);
        a.assign(MachineId(0), JobId(0));
        let base = ObliviousSchedule::from_steps(1, vec![a]);
        let combined = replicate_with_tail(&inst, &base, 0);
        assert_eq!(combined.len(), 1 + 2);
    }

    #[test]
    #[should_panic(expected = "machine counts")]
    fn mismatched_machines_panic() {
        let inst = small_instance(2, 2, 5);
        let base = ObliviousSchedule::new(3);
        let _ = replicate_with_tail(&inst, &base, 2);
    }
}
