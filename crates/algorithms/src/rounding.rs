//! Rounding the fractional (LP1)/(LP2) solution to integers (Theorem 4.1).
//!
//! The fractional solution gives `x_ij` machine-steps per (machine, job) pair.
//! Rounding must produce integral step counts such that every job still
//! accumulates constant mass while machine loads, job windows and chain
//! lengths blow up by at most `O(log m)`. Following the proof of Theorem 4.1:
//!
//! 1. **Large entries.** If the entries with `x_ij ≥ 1` already carry mass
//!    ≥ 1/4 for job `j`, round them up (`⌈x_ij⌉ ≤ 2 x_ij`).
//! 2. **Small entries.** Otherwise the entries with `x_ij < 1` carry mass
//!    ≥ 1/4. Entries with `p_ij < 1/(8m)` contribute < 1/8 in total and are
//!    dropped. The rest are bucketed by probability into
//!    `B = ⌈log₂ 8m⌉` dyadic buckets; buckets carrying less than 1/32 of
//!    fractional steps are dropped, and a bucket `b_j` carrying at least a
//!    `1/(16B)` share of mass is selected. The fractional steps of the chosen
//!    buckets (scaled by 32) are rounded *jointly* via an integral maximum
//!    flow in the network of Figure 3 — source → job (demand `D_j`), job →
//!    machine (capacity from `d_j`), machine → sink (capacity from `t`) — so
//!    that no machine or window is overloaded. Integrality of max-flow
//!    (Ford–Fulkerson) makes the resulting `x*_ij` integral.
//! 3. **Scale-up.** Every job now holds mass `Ω(1/log m)`; scaling all counts
//!    by the smallest integer that pushes the minimum mass to ≥ 1/2 costs the
//!    final `O(log m)` factor. (The implementation measures the achieved
//!    masses and scales by exactly what is needed, which is never more than
//!    the analytical `O(log m)` bound and is usually much less.)

use suu_core::{JobId, MachineId, SuuInstance};
use suu_flow::{Dinic, FlowNetwork};

use crate::error::AlgorithmError;
use crate::lp_relaxation::FractionalSolution;

/// Mass every job must hold after rounding and scaling (matches the LP
/// target).
pub const ROUNDED_MASS_TARGET: f64 = 0.5;

/// An integral rounded solution.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundedSolution {
    /// Integral step counts `x[machine][job]`.
    pub x: Vec<Vec<u64>>,
    /// Integral job windows `d_j ≥ max_i x_ij`, at least 1.
    pub d: Vec<u64>,
    /// The scale factor applied in step 3 (diagnostic; `O(log m)` by
    /// Theorem 4.1).
    pub scale: u64,
    /// The fractional optimum `t` this was rounded from (diagnostic).
    pub fractional_t: f64,
}

impl RoundedSolution {
    /// Mass of a job under the integral counts.
    #[must_use]
    pub fn mass_of(&self, instance: &SuuInstance, job: JobId) -> f64 {
        (0..instance.num_machines())
            .map(|i| self.x[i][job.0] as f64 * instance.prob(MachineId(i), job))
            .sum()
    }

    /// Integral load of a machine: `Σ_j x_ij`.
    #[must_use]
    pub fn load_of(&self, machine: MachineId) -> u64 {
        self.x[machine.0].iter().sum()
    }

    /// Maximum machine load.
    #[must_use]
    pub fn max_load(&self) -> u64 {
        (0..self.x.len())
            .map(|i| self.load_of(MachineId(i)))
            .max()
            .unwrap_or(0)
    }

    /// Per-job window length `L_j = max_i x_ij` used by the pseudo-schedule
    /// construction.
    #[must_use]
    pub fn window_of(&self, job: JobId) -> u64 {
        (0..self.x.len())
            .map(|i| self.x[i][job.0])
            .max()
            .unwrap_or(0)
    }
}

/// Rounds a fractional (LP1)/(LP2) solution into integral step counts with
/// every job holding mass ≥ [`ROUNDED_MASS_TARGET`].
///
/// # Errors
///
/// Returns [`AlgorithmError::Internal`] if a job ends up with zero mass, which
/// indicates a bug (the fallback path assigns at least one step on the job's
/// best machine).
pub fn round_solution(
    instance: &SuuInstance,
    frac: &FractionalSolution,
) -> Result<RoundedSolution, AlgorithmError> {
    let n = instance.num_jobs();
    let m = instance.num_machines();
    let mut y = vec![vec![0u64; n]; m];

    // Jobs deferred to the flow phase: (job, chosen bucket entries, demand).
    struct Deferred {
        job: usize,
        entries: Vec<usize>, // machines
        demand: u64,
    }
    let mut deferred: Vec<Deferred> = Vec::new();

    let num_buckets = ((8.0 * m as f64).log2().ceil() as usize).max(1);

    for j in 0..n {
        let job = JobId(j);
        let large_mass: f64 = (0..m)
            .filter(|&i| frac.x[i][j] >= 1.0)
            .map(|i| instance.prob(MachineId(i), job) * frac.x[i][j])
            .sum();
        if large_mass >= 0.25 {
            for i in 0..m {
                if frac.x[i][j] >= 1.0 {
                    y[i][j] = frac.x[i][j].ceil() as u64;
                }
            }
            continue;
        }

        // Small-entry case: bucket by probability.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_buckets + 1];
        for i in 0..m {
            let p = instance.prob(MachineId(i), job);
            let x = frac.x[i][j];
            if x > 0.0 && x < 1.0 && p >= 1.0 / (8.0 * m as f64) {
                let bucket = (-(p.log2())).floor().max(0.0) as usize;
                buckets[bucket.min(num_buckets)].push(i);
            }
        }
        // Choose the bucket with the largest fractional mass among buckets
        // carrying at least 1/32 fractional steps.
        let mut best_bucket: Option<(usize, f64)> = None;
        for (b, machines) in buckets.iter().enumerate() {
            if machines.is_empty() {
                continue;
            }
            let steps: f64 = machines.iter().map(|&i| frac.x[i][j]).sum();
            if steps < 1.0 / 32.0 {
                continue;
            }
            let mass: f64 = machines
                .iter()
                .map(|&i| instance.prob(MachineId(i), job) * frac.x[i][j])
                .sum();
            match best_bucket {
                Some((_, best_mass)) if mass <= best_mass => {}
                _ => best_bucket = Some((b, mass)),
            }
        }
        match best_bucket {
            Some((b, _)) => {
                let entries = buckets[b].clone();
                let steps: f64 = entries.iter().map(|&i| frac.x[i][j]).sum();
                let demand = ((32.0 * steps).floor() as u64).max(1);
                deferred.push(Deferred {
                    job: j,
                    entries,
                    demand,
                });
            }
            None => {
                // Fallback (degenerate fractional solutions): one step on the
                // best machine keeps the mass positive; the final scale-up
                // does the rest.
                let (best, _) = instance.best_machine(job);
                y[best.0][j] = y[best.0][j].max(1);
            }
        }
    }

    // Flow phase: jointly round the deferred jobs (Figure 3 network).
    if !deferred.is_empty() {
        // Node layout: 0 = source, 1..=k = deferred jobs, k+1..=k+m = machines,
        // k+m+1 = sink.
        let k = deferred.len();
        let source = 0;
        let sink = k + m + 1;
        let mut net = FlowNetwork::new(k + m + 2);
        let mut job_edges = Vec::new();
        let machine_cap = ((32.0 * frac.t).ceil() as i64).max(1);
        for (idx, d) in deferred.iter().enumerate() {
            net.add_edge(source, 1 + idx, i64::try_from(d.demand).unwrap_or(i64::MAX));
            let window_cap = ((32.0 * frac.d[d.job]).ceil() as i64).max(1);
            for &i in &d.entries {
                let e = net.add_edge(1 + idx, 1 + k + i, window_cap);
                job_edges.push((idx, i, e));
            }
        }
        for i in 0..m {
            net.add_edge(1 + k + i, sink, machine_cap);
        }
        Dinic::new().max_flow(&mut net, source, sink);
        for (idx, i, e) in job_edges {
            let f = net.flow(e);
            if f > 0 {
                y[i][deferred[idx].job] += u64::try_from(f).unwrap_or(0);
            }
        }
        // Safety net: a deferred job that received no flow (possible only if
        // the max flow did not saturate its source edge, i.e. numerical corner
        // cases) still gets one step on its best bucket machine.
        for d in &deferred {
            let got: u64 = (0..m).map(|i| y[i][d.job]).sum();
            if got == 0 {
                let best = d
                    .entries
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        instance
                            .prob(MachineId(a), JobId(d.job))
                            .partial_cmp(&instance.prob(MachineId(b), JobId(d.job)))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0);
                y[best][d.job] = 1;
            }
        }
    }

    // Scale-up phase.
    let mut min_mass = f64::INFINITY;
    for j in 0..n {
        let mass: f64 = (0..m)
            .map(|i| y[i][j] as f64 * instance.prob(MachineId(i), JobId(j)))
            .sum();
        if mass <= 0.0 {
            return Err(AlgorithmError::Internal(format!(
                "job {j} has zero mass after rounding"
            )));
        }
        min_mass = min_mass.min(mass);
    }
    let scale = if min_mass >= ROUNDED_MASS_TARGET {
        1
    } else {
        (ROUNDED_MASS_TARGET / min_mass).ceil() as u64
    };

    let mut x = vec![vec![0u64; n]; m];
    for i in 0..m {
        for j in 0..n {
            x[i][j] = y[i][j] * scale;
        }
    }

    // Trim phase: the 32×-scaled flow rounding (and the integral ceilings)
    // can overshoot the mass target by a large constant factor, which inflates
    // windows, machine loads and ultimately the constant-mass schedule length.
    // Greedily return surplus steps — lowest-probability contributions first —
    // while every job keeps mass ≥ ROUNDED_MASS_TARGET. This only shrinks
    // loads and windows, so every Theorem 4.1 bound continues to hold.
    for j in 0..n {
        let mut mass: f64 = (0..m)
            .map(|i| x[i][j] as f64 * instance.prob(MachineId(i), JobId(j)))
            .sum();
        let mut entries: Vec<usize> = (0..m).filter(|&i| x[i][j] > 0).collect();
        entries.sort_by(|&a, &b| {
            instance
                .prob(MachineId(a), JobId(j))
                .partial_cmp(&instance.prob(MachineId(b), JobId(j)))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for i in entries {
            let p = instance.prob(MachineId(i), JobId(j));
            if p <= 0.0 {
                // Steps with zero success probability contribute nothing.
                x[i][j] = 0;
                continue;
            }
            // Largest k with mass - k·p ≥ target, computed directly: the
            // scale-up can overshoot by large factors and a step-by-step loop
            // would spin once per surplus step.
            let removable = ((mass - ROUNDED_MASS_TARGET) / p).floor().max(0.0) as u64;
            let removed = removable.min(x[i][j]);
            x[i][j] -= removed;
            mass -= removed as f64 * p;
        }
    }

    let d: Vec<u64> = (0..n)
        .map(|j| (0..m).map(|i| x[i][j]).max().unwrap_or(0).max(1))
        .collect();
    Ok(RoundedSolution {
        x,
        d,
        scale,
        fractional_t: frac.t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::InstanceBuilder;
    use suu_graph::ChainSet;
    use suu_workloads::{random_chains, sparse_uniform_matrix, uniform_matrix};

    use crate::lp_relaxation::{solve_lp1, solve_lp2};

    fn chain_instance(n: usize, m: usize, num_chains: usize, seed: u64) -> (SuuInstance, ChainSet) {
        let dag = random_chains(n, num_chains, seed);
        let chains = ChainSet::from_dag(&dag).unwrap();
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.05, 0.9, seed))
            .precedence(dag)
            .build()
            .unwrap();
        (inst, chains)
    }

    #[test]
    fn every_job_reaches_target_mass_after_rounding() {
        let (inst, chains) = chain_instance(10, 4, 3, 5);
        let frac = solve_lp1(&inst, &chains).unwrap();
        let rounded = round_solution(&inst, &frac).unwrap();
        for j in inst.jobs() {
            assert!(
                rounded.mass_of(&inst, j) >= ROUNDED_MASS_TARGET - 1e-9,
                "job {j}: mass {}",
                rounded.mass_of(&inst, j)
            );
        }
    }

    #[test]
    fn windows_dominate_step_counts() {
        let (inst, chains) = chain_instance(8, 3, 2, 7);
        let frac = solve_lp1(&inst, &chains).unwrap();
        let rounded = round_solution(&inst, &frac).unwrap();
        for i in 0..inst.num_machines() {
            for j in 0..inst.num_jobs() {
                assert!(rounded.x[i][j] <= rounded.d[j]);
            }
        }
        for j in 0..inst.num_jobs() {
            assert!(rounded.d[j] >= 1);
        }
    }

    #[test]
    fn machine_load_blowup_is_logarithmic() {
        let (inst, chains) = chain_instance(12, 6, 4, 9);
        let frac = solve_lp1(&inst, &chains).unwrap();
        let rounded = round_solution(&inst, &frac).unwrap();
        let m = inst.num_machines() as f64;
        // Theorem 4.1: load = O(log m) · T*. The constant here is generous but
        // finite: 140 · (log₂ 8m) covers the 32-scaling, the ceil slack and the
        // adaptive scale-up.
        let bound = (140.0 * (8.0 * m).log2()) * frac.t.max(1.0);
        assert!(
            (rounded.max_load() as f64) <= bound,
            "load {} exceeds O(log m) bound {}",
            rounded.max_load(),
            bound
        );
    }

    #[test]
    fn chain_lengths_blowup_is_logarithmic() {
        let (inst, chains) = chain_instance(12, 5, 3, 13);
        let frac = solve_lp1(&inst, &chains).unwrap();
        let rounded = round_solution(&inst, &frac).unwrap();
        let m = inst.num_machines() as f64;
        let bound = (140.0 * (8.0 * m).log2()) * frac.t.max(1.0);
        for chain in chains.chains() {
            let len: u64 = chain.iter().map(|&j| rounded.d[j]).sum();
            assert!(
                (len as f64) <= bound,
                "chain length {len} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn scale_factor_stays_within_log_m() {
        for seed in 0..5 {
            let (inst, chains) = chain_instance(10, 8, 2, seed);
            let frac = solve_lp1(&inst, &chains).unwrap();
            let rounded = round_solution(&inst, &frac).unwrap();
            let bound = 64.0 * (8.0 * inst.num_machines() as f64).log2();
            assert!(
                (rounded.scale as f64) <= bound,
                "seed {seed}: scale {} exceeds {bound}",
                rounded.scale
            );
        }
    }

    #[test]
    fn rounding_works_for_lp2_independent_jobs() {
        let n = 9;
        let m = 4;
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(sparse_uniform_matrix(n, m, 0.05, 0.9, 0.5, 3))
            .build()
            .unwrap();
        let frac = solve_lp2(&inst).unwrap();
        let rounded = round_solution(&inst, &frac).unwrap();
        for j in inst.jobs() {
            assert!(rounded.mass_of(&inst, j) >= ROUNDED_MASS_TARGET - 1e-9);
        }
    }

    #[test]
    fn integral_counts_are_integers_not_fractions() {
        let (inst, chains) = chain_instance(6, 3, 2, 17);
        let frac = solve_lp1(&inst, &chains).unwrap();
        let rounded = round_solution(&inst, &frac).unwrap();
        // Trivially true by type, but verify the counts are not all zero and
        // the maximum window is consistent with the x matrix.
        assert!(rounded.max_load() > 0);
        for j in inst.jobs() {
            assert_eq!(
                rounded.window_of(j),
                (0..inst.num_machines())
                    .map(|i| rounded.x[i][j.0])
                    .max()
                    .unwrap()
            );
        }
    }
}
