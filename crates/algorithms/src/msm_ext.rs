//! `MSM-E-ALG` (Algorithm 1): the length-`t` extension of MSM-ALG.
//!
//! MaxSumMass-Ext asks for an *oblivious schedule of length `t`* maximising
//! the total mass accumulated by the jobs. `MSM-E-ALG` keeps a remaining
//! capacity `t_i` per machine (initially `t`) and, processing the `p_ij` in
//! non-increasing order, gives machine `i` to job `j` for
//! `x_ij = min(t_i, ⌊(1 − current mass of j) / p_ij⌋)` steps. Lemma 3.4 shows
//! the same charging argument as Theorem 3.2 applies, so the result is a 1/3
//! approximation. The running time is independent of `t` because every pair
//! `(i, j)` is processed exactly once.

use suu_core::{Assignment, JobId, JobSet, MachineId, ObliviousSchedule, SuuInstance};

/// The output of `MSM-E-ALG`: the per-pair step counts `x_ij` and the
/// oblivious schedule of length `t` they induce.
#[derive(Debug, Clone, PartialEq)]
pub struct MsmExtSolution {
    /// Step counts: `x[machine][job]`.
    pub x: Vec<Vec<u64>>,
    /// Schedule length `t`.
    pub length: u64,
    /// The total (capped) mass accumulated over the target jobs.
    pub total_mass: f64,
}

impl MsmExtSolution {
    /// Mass accumulated by `job` (capped at 1).
    #[must_use]
    pub fn mass_of(&self, instance: &SuuInstance, job: JobId) -> f64 {
        let raw: f64 = (0..instance.num_machines())
            .map(|i| self.x[i][job.0] as f64 * instance.prob(MachineId(i), job))
            .sum();
        raw.min(1.0)
    }

    /// Materialises the oblivious schedule of length `length` described by the
    /// step counts: machine `i` works on its assigned jobs one after another
    /// in increasing job order, `x_ij` consecutive steps each.
    ///
    /// The expansion allocates `length` steps, so callers should only
    /// materialise schedules of reasonable length (the algorithms in this
    /// crate keep `t` polynomial in the input size; see the `T^OPT` rescaling
    /// discussion in §4.1 of the paper).
    #[must_use]
    pub fn to_schedule(&self, instance: &SuuInstance) -> ObliviousSchedule {
        let m = instance.num_machines();
        let length = usize::try_from(self.length).expect("schedule length fits in usize");
        let mut steps = vec![Assignment::idle(m); length];
        for i in 0..m {
            let mut cursor = 0usize;
            for j in 0..instance.num_jobs() {
                let reps = usize::try_from(self.x[i][j]).expect("step count fits in usize");
                for step in steps.iter_mut().skip(cursor).take(reps) {
                    step.assign(MachineId(i), JobId(j));
                }
                cursor += reps;
            }
        }
        ObliviousSchedule::from_steps(m, steps)
    }
}

/// Runs `MSM-E-ALG` on the given subset of jobs with schedule length `t`.
#[must_use]
pub fn msm_e_alg(instance: &SuuInstance, jobs: &JobSet, t: u64) -> MsmExtSolution {
    let m = instance.num_machines();
    let n = instance.num_jobs();
    let mut x = vec![vec![0u64; n]; m];
    let mut remaining = vec![t; m];
    let mut job_mass = vec![0.0f64; n];

    for &(machine, job, p) in instance.positive_entries_sorted() {
        if !jobs.contains(job) {
            continue;
        }
        if remaining[machine.0] == 0 {
            continue;
        }
        // Maximum number of steps this machine can contribute without pushing
        // the job's mass above 1.
        let headroom = 1.0 - job_mass[job.0];
        if headroom <= 0.0 {
            continue;
        }
        let by_mass = (headroom / p).floor() as u64;
        let steps = remaining[machine.0].min(by_mass);
        if steps == 0 {
            continue;
        }
        x[machine.0][job.0] = steps;
        remaining[machine.0] -= steps;
        job_mass[job.0] += steps as f64 * p;
    }

    let total_mass = job_mass
        .iter()
        .enumerate()
        .filter(|(j, _)| jobs.contains(JobId(*j)))
        .map(|(_, &v)| v.min(1.0))
        .sum();
    MsmExtSolution {
        x,
        length: t,
        total_mass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::mass::mass_of_oblivious;
    use suu_core::InstanceBuilder;
    use suu_workloads::uniform_matrix;

    fn instance_from_matrix(n: usize, m: usize, probs: Vec<f64>) -> SuuInstance {
        InstanceBuilder::new(n, m)
            .probability_matrix(probs)
            .build()
            .unwrap()
    }

    #[test]
    fn with_t_one_matches_greedy_structure() {
        let inst = instance_from_matrix(2, 2, vec![0.6, 0.5, 0.7, 0.1]);
        let sol = msm_e_alg(&inst, &JobSet::all(2), 1);
        // Each machine can be used at most once.
        for i in 0..2 {
            let used: u64 = sol.x[i].iter().sum();
            assert!(used <= 1);
        }
        assert!(sol.total_mass >= 1.2 / 3.0 - 1e-9);
    }

    #[test]
    fn machine_capacity_is_respected() {
        let inst = instance_from_matrix(3, 2, vec![0.01, 0.02, 0.03, 0.04, 0.05, 0.06]);
        let t = 17;
        let sol = msm_e_alg(&inst, &JobSet::all(3), t);
        for i in 0..2 {
            let used: u64 = sol.x[i].iter().sum();
            assert!(used <= t, "machine {i} used {used} > {t}");
        }
    }

    #[test]
    fn per_job_mass_is_capped_near_one() {
        // Probabilities 0.3: 4 steps overshoot 1, so x stops at 3 per job from
        // a single machine (0.9) and other machines may add a little more but
        // never push past 1 by more than one step's worth before being cut.
        let inst = instance_from_matrix(1, 1, vec![0.3]);
        let sol = msm_e_alg(&inst, &JobSet::all(1), 100);
        assert_eq!(sol.x[0][0], 3);
        assert!((sol.mass_of(&inst, JobId(0)) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn large_t_accumulates_constant_mass_for_every_job() {
        // With ample capacity every job ends with mass > 1/2: the first
        // (largest-p) entry processed for a job alone contributes
        // p·⌊1/p⌋ > 1 − p ≥ 1/2 when p ≤ 1/2, and > 1/2 in one step otherwise.
        let probs = uniform_matrix(5, 3, 0.1, 0.9, 3);
        let inst = instance_from_matrix(5, 3, probs);
        let sol = msm_e_alg(&inst, &JobSet::all(5), 1000);
        for j in 0..5 {
            assert!(
                sol.mass_of(&inst, JobId(j)) > 0.5,
                "job {j} mass {}",
                sol.mass_of(&inst, JobId(j))
            );
        }
    }

    #[test]
    fn schedule_materialisation_matches_step_counts() {
        let inst = instance_from_matrix(2, 2, vec![0.4, 0.3, 0.2, 0.5]);
        let sol = msm_e_alg(&inst, &JobSet::all(2), 5);
        let sched = sol.to_schedule(&inst);
        assert_eq!(sched.len(), 5);
        // Count (machine, job) occurrences in the schedule and compare to x.
        for i in 0..2 {
            for j in 0..2 {
                let count = (0..sched.len())
                    .filter(|&t| sched.step(t).target(MachineId(i)) == Some(JobId(j)))
                    .count() as u64;
                assert_eq!(count, sol.x[i][j], "pair ({i},{j})");
            }
        }
        // The schedule's accumulated mass agrees with the solution's own
        // accounting.
        let sched_mass = mass_of_oblivious(&inst, &sched);
        for j in 0..2 {
            assert!((sched_mass.get(JobId(j)) - sol.mass_of(&inst, JobId(j))).abs() < 1e-9);
        }
    }

    #[test]
    fn respects_job_subset() {
        let inst = instance_from_matrix(3, 2, vec![0.5; 6]);
        let subset = JobSet::from_members(3, [JobId(0), JobId(2)]);
        let sol = msm_e_alg(&inst, &subset, 10);
        for i in 0..2 {
            assert_eq!(sol.x[i][1], 0, "job 1 is outside the subset");
        }
    }

    #[test]
    fn zero_length_schedule_accumulates_nothing() {
        let inst = instance_from_matrix(2, 2, vec![0.5; 4]);
        let sol = msm_e_alg(&inst, &JobSet::all(2), 0);
        assert_eq!(sol.total_mass, 0.0);
        assert!(sol.x.iter().flatten().all(|&v| v == 0));
    }

    #[test]
    fn one_third_approximation_against_total_available_mass() {
        // The optimum of MaxSumMass-Ext is at most min(n, total available
        // mass); with generous t the greedy should get every job to mass ~1,
        // easily within 1/3 of that bound.
        let probs = uniform_matrix(4, 4, 0.2, 0.8, 11);
        let inst = instance_from_matrix(4, 4, probs);
        let sol = msm_e_alg(&inst, &JobSet::all(4), 50);
        assert!(sol.total_mass >= 4.0 / 3.0);
    }
}
