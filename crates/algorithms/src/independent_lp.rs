//! The LP-based oblivious schedule for independent jobs (Theorem 4.5).
//!
//! For SUU-I the relaxation simplifies to (LP2) (no chain or window
//! constraints). A basic optimal solution has at most `n + m` non-zero
//! variables, which is what lets the rounding analysis charge the blow-up to
//! `O(log min(n, m))` instead of `O(log m)`. Because jobs are independent, the
//! rounded step counts can be laid out directly: every machine simply works
//! through its assigned jobs back to back, so the schedule length equals the
//! maximum rounded machine load and no pseudo-schedule, delay or flattening
//! step is needed. Replication plus the serial tail then give an expected
//! makespan of `O(log n · log min(n, m)) · T^OPT`.

use suu_core::{Assignment, JobId, MachineId, ObliviousSchedule, SuuInstance};

use crate::error::AlgorithmError;
use crate::lp_relaxation::{solve_lp2, LpMicros};
use crate::replicate::{default_sigma, replicate_with_tail};
use crate::rounding::round_solution;

/// Result of the Theorem 4.5 pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct IndependentLpSchedule {
    /// The final oblivious schedule (execute cyclically).
    pub schedule: ObliviousSchedule,
    /// The constant-mass schedule before replication (length = max rounded
    /// machine load).
    pub constant_mass_schedule: ObliviousSchedule,
    /// Optimum of (LP2).
    pub lp_value: f64,
    /// Number of non-zero `x_ij` in the basic optimal solution (≤ n + m).
    pub lp_nonzeros: usize,
    /// Simplex pivots spent solving (LP2).
    pub lp_pivots: usize,
    /// Wall-clock microseconds spent building and solving (LP2); compares
    /// equal by construction (see [`LpMicros`]).
    pub lp_micros: LpMicros,
    /// Scale factor applied by rounding.
    pub rounding_scale: u64,
    /// Replication factor σ.
    pub sigma: usize,
}

/// Builds the Theorem 4.5 oblivious schedule for an independent-jobs instance.
///
/// # Errors
///
/// Returns [`AlgorithmError::NotIndependent`] if the instance has precedence
/// constraints, or an LP/rounding failure.
pub fn schedule_independent_lp(
    instance: &SuuInstance,
) -> Result<IndependentLpSchedule, AlgorithmError> {
    schedule_independent_lp_with_sigma(instance, None)
}

/// Same as [`schedule_independent_lp`] with an explicit replication factor
/// (used by ablation experiments). `None` uses the paper's `⌈16 log₂ n⌉`.
///
/// # Errors
///
/// See [`schedule_independent_lp`].
pub fn schedule_independent_lp_with_sigma(
    instance: &SuuInstance,
    sigma: Option<usize>,
) -> Result<IndependentLpSchedule, AlgorithmError> {
    if !instance.is_independent() {
        return Err(AlgorithmError::NotIndependent);
    }
    let frac = solve_lp2(instance)?;
    let rounded = round_solution(instance, &frac)?;

    // Lay out each machine's assigned steps back to back.
    let m = instance.num_machines();
    let n = instance.num_jobs();
    let length = usize::try_from(rounded.max_load())
        .unwrap_or(usize::MAX)
        .max(1);
    let mut steps = vec![Assignment::idle(m); length];
    for i in 0..m {
        let mut cursor = 0usize;
        for j in 0..n {
            let reps = usize::try_from(rounded.x[i][j]).unwrap_or(usize::MAX);
            for step in steps.iter_mut().skip(cursor).take(reps) {
                step.assign(MachineId(i), JobId(j));
            }
            cursor += reps;
        }
    }
    let constant_mass_schedule = ObliviousSchedule::from_steps(m, steps);

    let sigma = sigma.unwrap_or_else(|| default_sigma(n));
    let schedule = replicate_with_tail(instance, &constant_mass_schedule, sigma);
    Ok(IndependentLpSchedule {
        schedule,
        constant_mass_schedule,
        lp_value: frac.t,
        lp_nonzeros: frac.nonzero_x,
        lp_pivots: frac.iterations,
        lp_micros: frac.lp_micros,
        rounding_scale: rounded.scale,
        sigma,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::mass::mass_of_oblivious;
    use suu_core::InstanceBuilder;
    use suu_sim::exact_expected_makespan_oblivious_cyclic;
    use suu_workloads::{bottleneck_instance, sparse_uniform_matrix, uniform_matrix};

    fn independent_instance(n: usize, m: usize, seed: u64) -> SuuInstance {
        InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, seed))
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_precedence_constraints() {
        let inst = InstanceBuilder::new(2, 1)
            .uniform_probability(0.5)
            .chains(&[vec![0, 1]])
            .build()
            .unwrap();
        assert_eq!(
            schedule_independent_lp(&inst).unwrap_err(),
            AlgorithmError::NotIndependent
        );
    }

    #[test]
    fn constant_mass_schedule_reaches_half_mass() {
        let inst = independent_instance(10, 4, 1);
        let result = schedule_independent_lp(&inst).unwrap();
        let mass = mass_of_oblivious(&inst, &result.constant_mass_schedule);
        for j in inst.jobs() {
            assert!(mass.get(j) >= 0.5 - 1e-9, "job {j}: {}", mass.get(j));
        }
    }

    #[test]
    fn basic_lp_solution_is_sparse() {
        let inst = independent_instance(12, 5, 3);
        let result = schedule_independent_lp(&inst).unwrap();
        assert!(result.lp_nonzeros <= 12 + 5 + 1);
    }

    #[test]
    fn schedule_length_matches_max_load_times_sigma_plus_tail() {
        let inst = independent_instance(8, 3, 5);
        let result = schedule_independent_lp(&inst).unwrap();
        assert_eq!(
            result.schedule.len(),
            result.constant_mass_schedule.len() * result.sigma + inst.num_jobs()
        );
    }

    #[test]
    fn expected_makespan_is_finite() {
        let inst = independent_instance(6, 3, 7);
        let result = schedule_independent_lp(&inst).unwrap();
        let expected = exact_expected_makespan_oblivious_cyclic(&inst, &result.schedule);
        assert!(expected.is_finite());
        assert!(expected <= 2.0 * result.schedule.len() as f64);
    }

    #[test]
    fn handles_sparse_and_bottleneck_instances() {
        let n = 10;
        let m = 6;
        let sparse = InstanceBuilder::new(n, m)
            .probability_matrix(sparse_uniform_matrix(n, m, 0.1, 0.8, 0.6, 9))
            .build()
            .unwrap();
        let result = schedule_independent_lp(&sparse).unwrap();
        let mass = mass_of_oblivious(&sparse, &result.constant_mass_schedule);
        assert!(mass.min() >= 0.5 - 1e-9);

        let bottleneck = bottleneck_instance(8, 4, 11);
        let result = schedule_independent_lp(&bottleneck).unwrap();
        let mass = mass_of_oblivious(&bottleneck, &result.constant_mass_schedule);
        assert!(mass.min() >= 0.5 - 1e-9);
    }

    #[test]
    fn explicit_sigma_is_honoured() {
        let inst = independent_instance(5, 2, 13);
        let result = schedule_independent_lp_with_sigma(&inst, Some(3)).unwrap();
        assert_eq!(result.sigma, 3);
        assert_eq!(
            result.schedule.len(),
            result.constant_mass_schedule.len() * 3 + 5
        );
    }
}
