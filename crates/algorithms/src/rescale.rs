//! The "Reducing `T^OPT`" trick of §4.1.
//!
//! The random-delay analysis needs the pseudo-schedule's length and load to be
//! bounded by a polynomial in `n + m` (so that a union bound over steps and
//! machines is meaningful). When `T^OPT` — and hence the rounded step counts —
//! is huge, the paper rounds every per-pair count `l_ij` *down* to the nearest
//! multiple of `L/β` with `β = nm` (where `L = max_j max_i l_ij`), works with
//! the quotients (integers in `{0, …, β}`), and finally re-inserts the lost
//! `l_ij − l'_ij` units, which lengthens the schedule by at most `L` in total.
//!
//! [`compress`] performs the rounding-down and returns the compressed counts
//! together with the unit size and the per-pair remainders; [`expand`]
//! reconstitutes counts from a compressed solution. The chain pipeline itself
//! does not need the trick at simulator scale (all instances in the
//! experiments have polynomially bounded counts already), but it is part of
//! the paper's construction and is exercised by unit tests and the ablation
//! harness.

use suu_core::{JobId, MachineId};

use crate::rounding::RoundedSolution;

/// A rounded solution compressed to multiples of a unit (the `l'_ij` of the
/// paper), plus everything needed to undo the compression.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedSolution {
    /// Quotients: `compressed.x[i][j] = ⌊x_ij / unit⌋`, each at most `β`.
    pub compressed: RoundedSolution,
    /// The unit size `⌈L / β⌉` (1 when no compression is needed).
    pub unit: u64,
    /// Remainders `x_ij − unit · ⌊x_ij / unit⌋`, to be re-inserted after the
    /// delayed schedule is built.
    pub remainders: Vec<Vec<u64>>,
    /// The β parameter used (`n · m` in the paper).
    pub beta: u64,
}

impl CompressedSolution {
    /// Total number of machine-steps dropped by the compression (the amount
    /// the re-insertion step has to add back). The paper bounds this by `L`
    /// per machine; summed over pairs it is at most `β · (unit − 1) < L + β`.
    #[must_use]
    pub fn total_remainder(&self) -> u64 {
        self.remainders.iter().flatten().sum()
    }
}

/// Compresses a rounded solution to counts bounded by `β = n·m`.
///
/// If the largest count is already at most `β`, the solution is returned
/// unchanged with `unit = 1`.
#[must_use]
pub fn compress(rounded: &RoundedSolution) -> CompressedSolution {
    let m = rounded.x.len();
    let n = if m == 0 { 0 } else { rounded.x[0].len() };
    let beta = (n as u64).saturating_mul(m as u64).max(1);
    let l_max = rounded.x.iter().flatten().copied().max().unwrap_or(0);
    let unit = l_max.div_ceil(beta).max(1);

    let mut compressed_x = vec![vec![0u64; n]; m];
    let mut remainders = vec![vec![0u64; n]; m];
    for i in 0..m {
        for j in 0..n {
            compressed_x[i][j] = rounded.x[i][j] / unit;
            remainders[i][j] = rounded.x[i][j] % unit;
        }
    }
    let compressed_d: Vec<u64> = (0..n)
        .map(|j| (0..m).map(|i| compressed_x[i][j]).max().unwrap_or(0).max(1))
        .collect();
    CompressedSolution {
        compressed: RoundedSolution {
            x: compressed_x,
            d: compressed_d,
            scale: rounded.scale,
            fractional_t: rounded.fractional_t / unit as f64,
        },
        unit,
        remainders,
        beta,
    }
}

/// Reconstitutes the original step counts from a compressed solution:
/// `x_ij = unit · x'_ij + remainder_ij`.
#[must_use]
pub fn expand(compressed: &CompressedSolution) -> Vec<Vec<u64>> {
    let m = compressed.compressed.x.len();
    let n = if m == 0 {
        0
    } else {
        compressed.compressed.x[0].len()
    };
    let mut x = vec![vec![0u64; n]; m];
    for i in 0..m {
        for j in 0..n {
            x[i][j] = compressed.compressed.x[i][j] * compressed.unit + compressed.remainders[i][j];
        }
    }
    x
}

/// Checks the paper's two guarantees for a compression: every compressed count
/// is at most `β`, and expanding reproduces the original counts exactly.
#[must_use]
pub fn is_faithful(original: &RoundedSolution, compressed: &CompressedSolution) -> bool {
    let within_beta = compressed
        .compressed
        .x
        .iter()
        .flatten()
        .all(|&v| v <= compressed.beta);
    within_beta && expand(compressed) == original.x
}

/// Convenience accessor mirroring [`RoundedSolution::window_of`] on the
/// compressed counts (used when building the compressed pseudo-schedule).
#[must_use]
pub fn compressed_window(compressed: &CompressedSolution, job: JobId) -> u64 {
    compressed.compressed.window_of(job)
}

/// Convenience accessor mirroring [`RoundedSolution::load_of`] on the
/// compressed counts.
#[must_use]
pub fn compressed_load(compressed: &CompressedSolution, machine: MachineId) -> u64 {
    compressed.compressed.load_of(machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::InstanceBuilder;
    use suu_graph::ChainSet;
    use suu_workloads::{random_chains, uniform_matrix};

    use crate::lp_relaxation::solve_lp1;
    use crate::rounding::round_solution;

    fn rounded_fixture(n: usize, m: usize, k: usize, seed: u64) -> RoundedSolution {
        let dag = random_chains(n, k, seed);
        let chains = ChainSet::from_dag(&dag).unwrap();
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, seed))
            .precedence(dag)
            .build()
            .unwrap();
        let frac = solve_lp1(&inst, &chains).unwrap();
        round_solution(&inst, &frac).unwrap()
    }

    fn synthetic_large_counts(n: usize, m: usize, magnitude: u64) -> RoundedSolution {
        // A synthetic rounded solution with huge counts, standing in for an
        // instance whose T^OPT is super-polynomial (e.g. vanishing p_min).
        let x: Vec<Vec<u64>> = (0..m)
            .map(|i| {
                (0..n)
                    .map(|j| magnitude / (1 + ((i + j) % 7) as u64))
                    .collect()
            })
            .collect();
        let d: Vec<u64> = (0..n)
            .map(|j| (0..m).map(|i| x[i][j]).max().unwrap().max(1))
            .collect();
        RoundedSolution {
            x,
            d,
            scale: 1,
            fractional_t: magnitude as f64,
        }
    }

    #[test]
    fn small_solutions_are_left_unchanged() {
        // Counts already bounded by β = n·m are untouched (unit = 1).
        let rounded = synthetic_large_counts(4, 3, 12);
        assert!(rounded.x.iter().flatten().all(|&v| v <= 12));
        let compressed = compress(&rounded);
        assert_eq!(compressed.unit, 1);
        assert_eq!(compressed.total_remainder(), 0);
        assert_eq!(compressed.compressed.x, rounded.x);
        assert!(is_faithful(&rounded, &compressed));
    }

    #[test]
    fn lp_pipeline_solutions_compress_faithfully() {
        let rounded = rounded_fixture(8, 3, 2, 1);
        let compressed = compress(&rounded);
        assert!(is_faithful(&rounded, &compressed));
        assert!(compressed
            .compressed
            .x
            .iter()
            .flatten()
            .all(|&v| v <= compressed.beta));
    }

    #[test]
    fn large_counts_are_compressed_below_beta() {
        let rounded = synthetic_large_counts(6, 4, 1_000_000_007);
        let compressed = compress(&rounded);
        assert!(compressed.unit > 1);
        assert_eq!(compressed.beta, 24);
        for &v in compressed.compressed.x.iter().flatten() {
            assert!(v <= compressed.beta, "compressed count {v} exceeds beta");
        }
        assert!(is_faithful(&rounded, &compressed));
    }

    #[test]
    fn expansion_is_exact_inverse() {
        for magnitude in [10u64, 999, 123_456_789] {
            let rounded = synthetic_large_counts(5, 3, magnitude);
            let compressed = compress(&rounded);
            assert_eq!(expand(&compressed), rounded.x);
        }
    }

    #[test]
    fn total_remainder_is_bounded_by_pairs_times_unit() {
        let rounded = synthetic_large_counts(7, 5, 987_654_321);
        let compressed = compress(&rounded);
        let pairs = 7 * 5;
        assert!(compressed.total_remainder() < pairs as u64 * compressed.unit);
    }

    #[test]
    fn compressed_windows_and_loads_shrink_proportionally() {
        let rounded = synthetic_large_counts(6, 3, 90_000_000);
        let compressed = compress(&rounded);
        for j in 0..6 {
            let job = JobId(j);
            assert!(
                compressed_window(&compressed, job) <= rounded.window_of(job) / compressed.unit + 1
            );
        }
        for i in 0..3 {
            let machine = MachineId(i);
            assert!(
                compressed_load(&compressed, machine)
                    <= rounded.load_of(machine) / compressed.unit + 6
            );
        }
    }

    #[test]
    fn faithfulness_detects_tampering() {
        let rounded = synthetic_large_counts(4, 2, 50_000);
        let mut compressed = compress(&rounded);
        compressed.remainders[0][0] += 1;
        assert!(!is_faithful(&rounded, &compressed));
    }
}
