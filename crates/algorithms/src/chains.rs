//! The end-to-end algorithm for disjoint chains, SUU-C (Theorem 4.4).
//!
//! Pipeline, exactly as in §4.1 of the paper:
//!
//! 1. solve the relaxation (LP1) — optimum `T* ≤ 16 · T^OPT` (Lemma 4.2);
//! 2. round the fractional solution with the flow-based procedure of
//!    Theorem 4.1 — every job holds mass ≥ 1/2, loads and chain lengths blow
//!    up by `O(log m)`;
//! 3. lay the rounded counts out as one pseudo-schedule per chain and overlay
//!    them (Theorem 4.3);
//! 4. delay each chain by a random offset and flatten into a feasible
//!    oblivious schedule `Σ_{o,1}` — length `O(log m · log(n+m)/log log(n+m))
//!    · T^OPT`;
//! 5. replicate each step `σ = Θ(log n)` times and append the serial tail —
//!    expected makespan `O(log m · log n · log(n+m)/log log(n+m)) · T^OPT`
//!    (Theorem 4.4).

use suu_core::{ObliviousSchedule, SuuInstance};
use suu_graph::ChainSet;

use crate::delay::flatten_with_random_delays;
use crate::error::AlgorithmError;
use crate::lp_relaxation::{
    solve_lp1_warm, solve_lp1_with, FractionalSolution, LpBudget, LpMicros, LpWarmInfo,
};
use crate::pseudo::build_chain_pseudo_schedules;
use crate::replicate::{default_sigma, replicate_with_tail};
use crate::rounding::round_solution;

/// Tunable parameters of the chain pipeline.
#[derive(Debug, Clone)]
pub struct ChainsOptions {
    /// Seed for the random chain delays.
    pub seed: u64,
    /// Number of delay vectors evaluated (best-of-`k`; 1 = plain randomised).
    pub delay_tries: usize,
    /// Replication factor σ; `None` uses the paper's `⌈16 log₂ n⌉`.
    pub sigma: Option<usize>,
    /// Skip the replication/tail stage and return the constant-mass schedule
    /// `Σ_{o,1}` itself (used by the forest algorithm, which replicates once
    /// globally, and by ablation experiments).
    pub replicate: bool,
    /// Resource bounds on the (LP1) stage: engine override, pivot budget and
    /// wall-clock deadline. The default is unbounded (historical behaviour);
    /// exhausting a bound aborts with [`AlgorithmError::BudgetExhausted`].
    pub lp: LpBudget,
}

impl Default for ChainsOptions {
    fn default() -> Self {
        Self {
            seed: 0x5c0_1a5,
            delay_tries: 8,
            sigma: None,
            replicate: true,
            lp: LpBudget::default(),
        }
    }
}

/// The schedule produced for a chain-structured instance, with diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainsSchedule {
    /// The final oblivious schedule (execute cyclically).
    pub schedule: ObliviousSchedule,
    /// The constant-mass schedule `Σ_{o,1}` before replication.
    pub constant_mass_schedule: ObliviousSchedule,
    /// Optimum of the LP relaxation (`T*`, a lower bound on `16 · T^OPT`).
    pub lp_value: f64,
    /// Simplex pivots spent solving (LP1).
    pub lp_pivots: usize,
    /// Wall-clock microseconds spent building and solving (LP1); compares
    /// equal by construction (see [`LpMicros`]).
    pub lp_micros: LpMicros,
    /// Scale factor applied by the rounding step (`O(log m)`).
    pub rounding_scale: u64,
    /// Maximum machine load of the rounded solution.
    pub rounded_max_load: u64,
    /// Maximum per-step congestion after the random delays.
    pub congestion: usize,
    /// Replication factor used (0 when replication was skipped).
    pub sigma: usize,
}

/// Runs the Theorem 4.4 pipeline with default options.
///
/// # Errors
///
/// Returns [`AlgorithmError::NotChains`] if the precedence graph is not a
/// disjoint union of chains, or an LP/rounding error.
pub fn schedule_chains(instance: &SuuInstance) -> Result<ChainsSchedule, AlgorithmError> {
    schedule_chains_with(instance, &ChainsOptions::default())
}

/// Runs the Theorem 4.4 pipeline with explicit options.
///
/// # Errors
///
/// See [`schedule_chains`].
pub fn schedule_chains_with(
    instance: &SuuInstance,
    options: &ChainsOptions,
) -> Result<ChainsSchedule, AlgorithmError> {
    let chains = ChainSet::from_dag(instance.precedence()).ok_or(AlgorithmError::NotChains)?;
    schedule_given_chains(instance, &chains, options)
}

/// Runs the pipeline for a caller-provided chain partition (used by the forest
/// algorithm, which feeds in one block of the chain decomposition at a time).
///
/// # Errors
///
/// Returns LP or rounding errors; the chain structure itself is trusted.
pub fn schedule_given_chains(
    instance: &SuuInstance,
    chains: &ChainSet,
    options: &ChainsOptions,
) -> Result<ChainsSchedule, AlgorithmError> {
    let frac = solve_lp1_with(instance, chains, &options.lp)?;
    assemble_schedule(instance, chains, options, &frac)
}

/// [`schedule_given_chains`] with warm-start threading: the donor basis and
/// LU factors (from a structurally similar parent solve) seed the (LP1)
/// solve, and the final basis + factors come back for the next request in
/// the tenant's drift chain. Pass `None` to solve cold while still capturing
/// a basis.
///
/// Everything after the LP stage is byte-identical to
/// [`schedule_given_chains`]: warm starts change how fast the LP reaches the
/// optimum, never which optimum the rounding pipeline consumes.
///
/// # Errors
///
/// See [`schedule_given_chains`].
pub fn schedule_given_chains_warm(
    instance: &SuuInstance,
    chains: &ChainSet,
    options: &ChainsOptions,
    warm: Option<suu_lp::WarmStart>,
) -> Result<(ChainsSchedule, LpWarmInfo), AlgorithmError> {
    let (frac, info) = solve_lp1_warm(instance, chains, &options.lp, warm)?;
    let schedule = assemble_schedule(instance, chains, options, &frac)?;
    Ok((schedule, info))
}

/// Stages 2–5 of the pipeline (rounding through replication), shared by the
/// cold and warm entry points.
fn assemble_schedule(
    instance: &SuuInstance,
    chains: &ChainSet,
    options: &ChainsOptions,
    frac: &FractionalSolution,
) -> Result<ChainsSchedule, AlgorithmError> {
    let rounded = round_solution(instance, frac)?;
    let per_chain = build_chain_pseudo_schedules(instance, chains, &rounded);
    let outcome = flatten_with_random_delays(
        &per_chain,
        instance.num_machines(),
        options.seed,
        options.delay_tries,
    );

    let sigma = if options.replicate {
        options
            .sigma
            .unwrap_or_else(|| default_sigma(instance.num_jobs()))
    } else {
        0
    };
    let schedule = if options.replicate {
        replicate_with_tail(instance, &outcome.schedule, sigma)
    } else {
        outcome.schedule.clone()
    };

    Ok(ChainsSchedule {
        schedule,
        constant_mass_schedule: outcome.schedule,
        lp_value: frac.t,
        lp_pivots: frac.iterations,
        lp_micros: frac.lp_micros,
        rounding_scale: rounded.scale,
        rounded_max_load: rounded.max_load(),
        congestion: outcome.congestion,
        sigma,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::mass::mass_of_oblivious;
    use suu_core::InstanceBuilder;
    use suu_sim::{exact_expected_makespan_oblivious_cyclic, SimulationOptions, Simulator};
    use suu_workloads::{random_chains, uniform_matrix};

    fn chain_instance(n: usize, m: usize, chains: usize, seed: u64) -> SuuInstance {
        InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, seed))
            .precedence(random_chains(n, chains, seed))
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_non_chain_instances() {
        let inst = InstanceBuilder::new(3, 2)
            .uniform_probability(0.5)
            .precedence(suu_graph::Dag::from_edges(3, [(0, 1), (0, 2)]).unwrap())
            .build()
            .unwrap();
        assert_eq!(
            schedule_chains(&inst).unwrap_err(),
            AlgorithmError::NotChains
        );
    }

    #[test]
    fn constant_mass_schedule_gives_every_job_half_mass() {
        let inst = chain_instance(10, 3, 3, 1);
        let result = schedule_chains(&inst).unwrap();
        let mass = mass_of_oblivious(&inst, &result.constant_mass_schedule);
        for j in inst.jobs() {
            assert!(mass.get(j) >= 0.5 - 1e-9, "job {j}: {}", mass.get(j));
        }
    }

    #[test]
    fn final_schedule_contains_replicated_prefix_and_tail() {
        let inst = chain_instance(8, 2, 2, 3);
        let result = schedule_chains(&inst).unwrap();
        assert!(result.sigma >= 4);
        assert_eq!(
            result.schedule.len(),
            result.constant_mass_schedule.len() * result.sigma + inst.num_jobs()
        );
    }

    #[test]
    fn skipping_replication_returns_constant_mass_schedule() {
        let inst = chain_instance(6, 2, 2, 5);
        let options = ChainsOptions {
            replicate: false,
            ..ChainsOptions::default()
        };
        let result = schedule_chains_with(&inst, &options).unwrap();
        assert_eq!(result.schedule, result.constant_mass_schedule);
        assert_eq!(result.sigma, 0);
    }

    #[test]
    fn expected_makespan_is_finite_and_reasonable() {
        let inst = chain_instance(6, 3, 2, 7);
        let result = schedule_chains(&inst).unwrap();
        let expected = exact_expected_makespan_oblivious_cyclic(&inst, &result.schedule);
        assert!(expected.is_finite());
        // The schedule is designed so that with probability ≥ 1 − 1/n² all
        // jobs finish within one pass; the expectation is therefore at most a
        // small multiple of the schedule length.
        assert!(
            expected <= 2.0 * result.schedule.len() as f64,
            "expected {expected} vs length {}",
            result.schedule.len()
        );
    }

    #[test]
    fn monte_carlo_execution_finishes() {
        let inst = chain_instance(12, 4, 4, 9);
        let result = schedule_chains(&inst).unwrap();
        let sim = Simulator::new(SimulationOptions {
            trials: 40,
            max_steps: 200_000,
            base_seed: 3,
        });
        let schedule = result.schedule.clone();
        let est = sim.estimate(&inst, move || schedule.clone());
        assert_eq!(est.censored, 0);
        assert!(est.mean() <= result.schedule.len() as f64 * 1.5);
    }

    #[test]
    fn lp_value_lower_bounds_chain_length() {
        let inst = chain_instance(10, 5, 2, 11);
        let chains = ChainSet::from_dag(inst.precedence()).unwrap();
        let result = schedule_chains(&inst).unwrap();
        assert!(result.lp_value >= chains.max_chain_len() as f64 - 1e-6);
    }

    #[test]
    fn independent_jobs_work_through_the_chain_pipeline() {
        // Independent jobs are chains of length one, so the pipeline applies.
        let inst = InstanceBuilder::new(6, 3)
            .probability_matrix(uniform_matrix(6, 3, 0.2, 0.9, 13))
            .build()
            .unwrap();
        let result = schedule_chains(&inst).unwrap();
        let mass = mass_of_oblivious(&inst, &result.constant_mass_schedule);
        assert!(mass.min() >= 0.5 - 1e-9);
    }

    #[test]
    fn pivot_budget_exhaustion_is_structured_and_a_larger_budget_is_invisible() {
        let inst = chain_instance(10, 3, 3, 1);
        let starved = ChainsOptions {
            lp: LpBudget {
                max_pivots: Some(1),
                ..LpBudget::default()
            },
            ..ChainsOptions::default()
        };
        let err = schedule_chains_with(&inst, &starved).unwrap_err();
        assert!(
            matches!(
                err,
                AlgorithmError::BudgetExhausted {
                    wall_clock: false,
                    ..
                }
            ),
            "{err:?}"
        );

        let unbudgeted = schedule_chains(&inst).unwrap();
        let generous = ChainsOptions {
            lp: LpBudget {
                max_pivots: Some(1_000_000),
                ..LpBudget::default()
            },
            ..ChainsOptions::default()
        };
        assert_eq!(schedule_chains_with(&inst, &generous).unwrap(), unbudgeted);
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let inst = chain_instance(8, 3, 2, 15);
        let a = schedule_chains(&inst).unwrap();
        let b = schedule_chains(&inst).unwrap();
        assert_eq!(a, b);
    }
}
