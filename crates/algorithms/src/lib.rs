//! The approximation algorithms of Lin & Rajaraman (SPAA 2007) for
//! multiprocessor scheduling under uncertainty.
//!
//! This crate implements every algorithm and construction in the paper:
//!
//! | Paper | Module | What it computes |
//! |---|---|---|
//! | Fig. 2, Thm 3.2 | [`msm`] | `MSM-ALG`, the greedy 1/3-approximation for the MaxSumMass sub-problem |
//! | Alg. 1, Lemma 3.4 | [`msm_ext`] | `MSM-E-ALG`, the length-`t` extension of MSM-ALG |
//! | Fig. 2, Thm 3.3 | [`suu_i`] | `SUU-I-ALG`, the adaptive `O(log n)`-approximation for independent jobs |
//! | Alg. 2, Thm 3.6 | [`suu_i_obl`] | `SUU-I-OBL`, the combinatorial `O(log² n)` oblivious schedule |
//! | §4.1 (LP1), (LP2) | [`lp_relaxation`] | the LP relaxations of AccuMass-C |
//! | Thm 4.1 | [`rounding`] | flow-based rounding of the fractional LP solution |
//! | Thm 4.1 (proof) | [`pseudo`] | construction of the per-chain pseudo-schedules |
//! | §4.1 (delay step) | [`delay`] | random-delay flattening of pseudo-schedules (Shmoys–Stein–Wein) |
//! | §4.1 (replication) | [`replicate`] | schedule replication and the serial tail Σ_{o,3} |
//! | §4.1 (reducing T^OPT) | [`rescale`] | compression of step counts to multiples of `L/(nm)` |
//! | Thm 4.4 | [`chains`] | the end-to-end algorithm for disjoint chains (SUU-C) |
//! | Thm 4.5 | [`independent_lp`] | the LP-based oblivious schedule for independent jobs |
//! | Thm 4.7, Thm 4.8 | [`forest`] | the block-by-block algorithm for trees and directed forests |
//!
//! All schedule-producing entry points return ordinary
//! [`ObliviousSchedule`](suu_core::ObliviousSchedule)s (plus diagnostics), so
//! they can be fed directly to the simulator in `suu-sim` or evaluated exactly
//! on small instances.

pub mod chains;
pub mod delay;
pub mod error;
pub mod forest;
pub mod independent_lp;
pub mod lp_relaxation;
pub mod msm;
pub mod msm_ext;
pub mod pseudo;
pub mod replicate;
pub mod rescale;
pub mod rounding;
pub mod suu_i;
pub mod suu_i_obl;

pub use chains::{schedule_chains, schedule_given_chains_warm, ChainsSchedule};
pub use error::AlgorithmError;
pub use forest::{schedule_forest, ForestSchedule};
pub use independent_lp::schedule_independent_lp;
pub use lp_relaxation::{LpBudget, LpWarmInfo};
pub use msm::{exact_max_sum_mass, msm_alg};
pub use msm_ext::{msm_e_alg, MsmExtSolution};
pub use suu_i::SuuIAdaptivePolicy;
pub use suu_i_obl::{suu_i_oblivious, suu_i_oblivious_with, SuuIOblLimits, SuuIOblivious};
