//! The LP relaxations (LP1) and (LP2) of the AccuMass-C sub-problem (§4.1).
//!
//! AccuMass-C asks for a shortest oblivious schedule in which every job
//! accumulates mass ≥ 1/2, with machines assigned to a job only after its
//! chain predecessor has accumulated its mass. Writing `x_ij` for the number
//! of steps machine `i` spends on job `j` and `d_j` for the number of steps in
//! which *some* machine works on `j`, the relaxation (LP1) is
//!
//! ```text
//!   minimise t
//!   s.t.  Σ_i p_ij · x_ij ≥ 1/2          for every job j          (mass)
//!         Σ_j x_ij        ≤ t            for every machine i      (load)
//!         Σ_{j ∈ C_k} d_j ≤ t            for every chain C_k      (chain)
//!         0 ≤ x_ij ≤ d_j                 for every i, j
//!         d_j ≥ 1                        for every job j
//! ```
//!
//! Lemma 4.2 shows the optimum `T*` of (LP1) is at most `16 · T^OPT`, so a
//! schedule built from a rounded (LP1) solution can be charged against the
//! optimal expected makespan. For independent jobs the chain and `d`
//! constraints disappear, giving (LP2), used by Theorem 4.5.

use std::time::Instant;

use suu_core::{JobId, MachineId, SuuInstance};
use suu_graph::ChainSet;
use suu_lp::{
    solve, solve_revised_with_basis, solve_warm, ConstraintOp, Engine, LpProblem, LpStatus, Sense,
    SimplexOptions, VarId,
};
pub use suu_lp::{LuFactors, WarmStart};

use crate::error::AlgorithmError;

/// Target mass per job in the relaxation (the paper uses 1/2).
pub const LP_MASS_TARGET: f64 = 0.5;

/// Caller-supplied resource bounds on the LP stage of a pipeline: which
/// simplex engine to run, how many pivots it may spend, and an absolute
/// wall-clock deadline. The default (`Auto`, unbounded, no deadline) is
/// exactly the historical behaviour; a budget that is not exhausted never
/// changes the result (the pivot sequence is deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LpBudget {
    /// Simplex engine override (`Auto` picks by problem size).
    pub engine: Engine,
    /// Pivot budget across both simplex phases; exhausting it aborts the
    /// pipeline with [`AlgorithmError::BudgetExhausted`].
    pub max_pivots: Option<usize>,
    /// Absolute deadline, checked cooperatively inside the pivot loop.
    pub deadline: Option<Instant>,
}

impl LpBudget {
    /// The simplex options this budget translates to.
    #[must_use]
    pub fn simplex_options(&self) -> SimplexOptions {
        SimplexOptions {
            engine: self.engine,
            pivot_budget: self.max_pivots,
            deadline: self.deadline,
            ..SimplexOptions::default()
        }
    }

    /// Whether the deadline (if any) has already passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Wall-clock microseconds of one LP build + solve (read via `.0`).
///
/// Deliberately compares equal to every other value: timing is a diagnostic,
/// and two otherwise-identical solves always differ in wall-clock, so the
/// structural equality of solver results must ignore it. The newtype keeps
/// `#[derive(PartialEq)]` usable on every struct that carries a timing —
/// fields added later are compared automatically instead of silently
/// skipped by a hand-written `eq`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LpMicros(pub u64);

impl PartialEq for LpMicros {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for LpMicros {}

/// A solved fractional relaxation.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalSolution {
    /// `x[machine][job]`: fractional steps machine `i` spends on job `j`.
    pub x: Vec<Vec<f64>>,
    /// `d[job]`: fractional number of steps during which some machine works on
    /// the job. For (LP2) this is simply `max_i x_ij` (no explicit variable).
    pub d: Vec<f64>,
    /// The optimal value `t` (the paper's `T*`).
    pub t: f64,
    /// Simplex pivot count (diagnostic; surfaced by the service as
    /// `lp_pivots`).
    pub iterations: usize,
    /// Number of non-zero `x_ij` in the basic optimal solution (diagnostic;
    /// Theorem 4.5's analysis uses the fact that this is at most `n + m` for
    /// (LP2)).
    pub nonzero_x: usize,
    /// Wall-clock time of the build + solve (diagnostic; compares equal by
    /// construction, see [`LpMicros`]).
    pub lp_micros: LpMicros,
}

impl FractionalSolution {
    /// The fractional mass `Σ_i p_ij x_ij` of a job.
    #[must_use]
    pub fn mass_of(&self, instance: &SuuInstance, job: JobId) -> f64 {
        (0..instance.num_machines())
            .map(|i| self.x[i][job.0] * instance.prob(MachineId(i), job))
            .sum()
    }

    /// The fractional load `Σ_j x_ij` of a machine.
    #[must_use]
    pub fn load_of(&self, machine: MachineId) -> f64 {
        self.x[machine.0].iter().sum()
    }
}

/// Builds and solves (LP1) for a chain-structured instance.
///
/// # Errors
///
/// Returns [`AlgorithmError::LpFailure`] if the simplex solver fails or the LP
/// is reported infeasible/unbounded (which cannot happen for valid instances).
pub fn solve_lp1(
    instance: &SuuInstance,
    chains: &ChainSet,
) -> Result<FractionalSolution, AlgorithmError> {
    build_and_solve(instance, Some(chains), &LpBudget::default())
}

/// [`solve_lp1`] under an explicit [`LpBudget`] (engine override, pivot
/// budget, deadline).
///
/// # Errors
///
/// Additionally returns [`AlgorithmError::BudgetExhausted`] when the budget
/// runs out mid-solve.
pub fn solve_lp1_with(
    instance: &SuuInstance,
    chains: &ChainSet,
    budget: &LpBudget,
) -> Result<FractionalSolution, AlgorithmError> {
    build_and_solve(instance, Some(chains), budget)
}

/// Warm-start information flowing alongside a fractional solution.
#[derive(Debug, Clone, Default)]
pub struct LpWarmInfo {
    /// `true` when a donor basis was supplied and actually drove the solve
    /// (the warm primal or dual-simplex path produced the solution).
    pub warm: bool,
    /// Final-basis snapshot for warm-starting a structurally similar solve.
    /// Empty when the solve ran on the dense engine or did not end at a
    /// reusable (optimal, artificial-free) basis.
    pub basis: Vec<usize>,
    /// LU factors of that final basis. A follow-up solve whose edit leaves
    /// the basis matrix untouched (the edited column is nonbasic) adopts
    /// them outright and skips refactorisation entirely.
    pub factors: Option<LuFactors>,
}

/// [`solve_lp1_with`] plus warm-start threading: feed the donor [`WarmStart`]
/// (basis and, when available, LU factors) from a structurally similar
/// parent solve (or `None` to solve cold) and get the final basis + factors
/// back for the next request in the tenant's drift chain.
///
/// Basis capture and reuse only engage on the revised engine — exactly the
/// solves [`Engine::Auto`] already routes there. Solves small enough for the
/// dense tableau keep their historical pivot-for-pivot behaviour and report
/// no basis, so existing response bytes are untouched.
///
/// # Errors
///
/// Same contract as [`solve_lp1_with`].
pub fn solve_lp1_warm(
    instance: &SuuInstance,
    chains: &ChainSet,
    budget: &LpBudget,
    warm: Option<WarmStart>,
) -> Result<(FractionalSolution, LpWarmInfo), AlgorithmError> {
    build_and_solve_tracked(instance, Some(chains), budget, warm, true)
}

/// Builds and solves (LP2) for an independent-jobs instance.
///
/// # Errors
///
/// Returns [`AlgorithmError::LpFailure`] on solver failure.
pub fn solve_lp2(instance: &SuuInstance) -> Result<FractionalSolution, AlgorithmError> {
    build_and_solve(instance, None, &LpBudget::default())
}

/// [`solve_lp2`] under an explicit [`LpBudget`].
///
/// # Errors
///
/// Additionally returns [`AlgorithmError::BudgetExhausted`] when the budget
/// runs out mid-solve.
pub fn solve_lp2_with(
    instance: &SuuInstance,
    budget: &LpBudget,
) -> Result<FractionalSolution, AlgorithmError> {
    build_and_solve(instance, None, budget)
}

/// Builds the (LP1)/(LP2) problem for `instance`, emitting every row straight
/// from the instance's sparse non-zero index — no dense probability-matrix
/// scans and no dense `m × n` variable map, so the build is O(nnz + n + m +
/// rows), not O(n · m). Returns the problem together with the variable maps
/// (`x_var[i]` lists machine `i`'s `(job, var)` pairs in increasing job
/// order, plus the optional `d` block and `t`). Public so the
/// dense-vs-revised parity battery and the `exp_lp_scaling` benchmark can
/// solve the exact same problem with both engines; pass `None` for `chains`
/// to get (LP2).
#[allow(clippy::type_complexity)]
pub fn build_relaxation(
    instance: &SuuInstance,
    chains: Option<&ChainSet>,
) -> (
    LpProblem,
    Vec<Vec<(usize, VarId)>>,
    Option<Vec<VarId>>,
    VarId,
) {
    let n = instance.num_jobs();
    let m = instance.num_machines();
    let mut lp = LpProblem::new(Sense::Minimize);

    // x variables only for positive probabilities, in machine-major order.
    // The same pass accumulates each job's mass-row terms, so no per-job
    // variable lookup structure is ever needed. Variables and rows carry
    // empty names: this build runs per request on the service's delta path,
    // and formatting ~n·m name strings costs more than the simplex iterations
    // a warm start leaves behind.
    let mut x_var: Vec<Vec<(usize, VarId)>> = vec![Vec::new(); m];
    let mut mass_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); n];
    for (i, row) in x_var.iter_mut().enumerate() {
        for (j, p) in instance.positive_jobs(MachineId(i)) {
            let v = lp.add_variable("");
            row.push((j.0, v));
            mass_terms[j.0].push((v, p));
        }
    }
    // d variables only when chains are present (LP1).
    let d_var: Option<Vec<VarId>> = chains.map(|_| (0..n).map(|_| lp.add_variable("")).collect());
    let t_var = lp.add_variable("t");
    lp.set_objective_coefficient(t_var, 1.0);

    // (1) mass constraints: Σ_i p_ij x_ij ≥ 1/2, one term per non-zero of
    // job j's column.
    for terms in mass_terms {
        lp.add_constraint(terms, ConstraintOp::Ge, LP_MASS_TARGET, "");
    }
    // (2) machine load constraints: Σ_j x_ij − t ≤ 0, one term per non-zero
    // of machine i's row.
    for row in &x_var {
        let mut terms: Vec<(VarId, f64)> = row.iter().map(|&(_, v)| (v, 1.0)).collect();
        terms.push((t_var, -1.0));
        lp.add_constraint(terms, ConstraintOp::Le, 0.0, "");
    }
    if let (Some(chains), Some(d_var)) = (chains, d_var.as_ref()) {
        // (3) chain-length constraints: Σ_{j ∈ C_k} d_j − t ≤ 0.
        for chain in chains.chains() {
            let mut terms: Vec<(VarId, f64)> = chain.iter().map(|&j| (d_var[j], 1.0)).collect();
            terms.push((t_var, -1.0));
            lp.add_constraint(terms, ConstraintOp::Le, 0.0, "");
        }
        // (4) x_ij ≤ d_j, one row per non-zero.
        for row in &x_var {
            for &(j, v) in row {
                lp.add_constraint(vec![(v, 1.0), (d_var[j], -1.0)], ConstraintOp::Le, 0.0, "");
            }
        }
        // (5) d_j ≥ 1.
        for &dv in d_var {
            lp.add_constraint(vec![(dv, 1.0)], ConstraintOp::Ge, 1.0, "");
        }
    }
    (lp, x_var, d_var, t_var)
}

fn build_and_solve(
    instance: &SuuInstance,
    chains: Option<&ChainSet>,
    budget: &LpBudget,
) -> Result<FractionalSolution, AlgorithmError> {
    build_and_solve_tracked(instance, chains, budget, None, false).map(|(frac, _)| frac)
}

/// Whether [`solve`] would dispatch this problem to the revised engine —
/// the routing decision mirrored here so warm-basis capture engages on
/// exactly the solves that already run revised.
fn routes_to_revised(lp: &LpProblem, options: &SimplexOptions) -> bool {
    match options.engine {
        Engine::Revised => true,
        Engine::Dense => false,
        Engine::Auto => suu_lp::engine::tableau_cells(lp) > suu_lp::engine::DENSE_CELL_THRESHOLD,
    }
}

fn build_and_solve_tracked(
    instance: &SuuInstance,
    chains: Option<&ChainSet>,
    budget: &LpBudget,
    warm: Option<WarmStart>,
    capture: bool,
) -> Result<(FractionalSolution, LpWarmInfo), AlgorithmError> {
    let start = Instant::now();
    let n = instance.num_jobs();
    let m = instance.num_machines();
    let (lp, x_var, d_var, t_var) = build_relaxation(instance, chains);

    let options = budget.simplex_options();
    let (sol, info) = if capture && routes_to_revised(&lp, &options) {
        let outcome = match warm {
            Some(donor) if !donor.basis.is_empty() => solve_warm(&lp, donor, &options)?,
            _ => solve_revised_with_basis(&lp, &options)?,
        };
        (
            outcome.solution,
            LpWarmInfo {
                warm: outcome.warm,
                basis: outcome.basis,
                factors: outcome.factors,
            },
        )
    } else {
        (solve(&lp, &options)?, LpWarmInfo::default())
    };
    if sol.status != LpStatus::Optimal {
        return Err(AlgorithmError::LpFailure(format!(
            "relaxation reported {:?}",
            sol.status
        )));
    }

    // The dense x matrix is the *output* contract (the rounding and
    // pseudo-schedule stages consume it by index); filling it visits only the
    // non-zero variable slots.
    let mut x = vec![vec![0.0f64; n]; m];
    let mut nonzero_x = 0usize;
    for (i, row) in x_var.iter().enumerate() {
        for &(j, v) in row {
            let value = sol.value(v).max(0.0);
            if value > 1e-9 {
                nonzero_x += 1;
            }
            x[i][j] = value;
        }
    }
    let d: Vec<f64> = match d_var {
        Some(vars) => vars.iter().map(|&v| sol.value(v).max(0.0)).collect(),
        None => (0..n)
            .map(|j| (0..m).map(|i| x[i][j]).fold(0.0f64, f64::max))
            .collect(),
    };
    Ok((
        FractionalSolution {
            x,
            d,
            t: sol.value(t_var),
            iterations: sol.iterations,
            nonzero_x,
            lp_micros: LpMicros(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)),
        },
        info,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::InstanceBuilder;
    use suu_workloads::{random_chains, uniform_matrix};

    fn chain_instance(n: usize, m: usize, num_chains: usize, seed: u64) -> (SuuInstance, ChainSet) {
        let dag = random_chains(n, num_chains, seed);
        let chains = ChainSet::from_dag(&dag).unwrap();
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, seed))
            .precedence(dag)
            .build()
            .unwrap();
        (inst, chains)
    }

    #[test]
    fn lp1_solution_is_feasible_for_its_own_constraints() {
        let (inst, chains) = chain_instance(8, 3, 2, 4);
        let sol = solve_lp1(&inst, &chains).unwrap();
        // Mass per job ≥ 1/2.
        for j in inst.jobs() {
            assert!(
                sol.mass_of(&inst, j) >= LP_MASS_TARGET - 1e-6,
                "job {j}: {}",
                sol.mass_of(&inst, j)
            );
        }
        // Machine loads ≤ t.
        for i in inst.machines() {
            assert!(sol.load_of(i) <= sol.t + 1e-6);
        }
        // Chain lengths ≤ t and d_j ≥ 1.
        for chain in chains.chains() {
            let total: f64 = chain.iter().map(|&j| sol.d[j]).sum();
            assert!(total <= sol.t + 1e-6);
        }
        for j in 0..inst.num_jobs() {
            assert!(sol.d[j] >= 1.0 - 1e-6);
        }
        // x_ij ≤ d_j.
        for i in 0..inst.num_machines() {
            for j in 0..inst.num_jobs() {
                assert!(sol.x[i][j] <= sol.d[j] + 1e-6);
            }
        }
    }

    #[test]
    fn lp1_optimum_is_at_least_chain_length() {
        // d_j ≥ 1 and Σ_{chain} d_j ≤ t force t ≥ longest chain.
        let (inst, chains) = chain_instance(10, 4, 2, 9);
        let sol = solve_lp1(&inst, &chains).unwrap();
        let longest = chains.max_chain_len() as f64;
        assert!(sol.t >= longest - 1e-6);
    }

    #[test]
    fn lp2_drops_chain_structure() {
        let inst = InstanceBuilder::new(6, 3)
            .probability_matrix(uniform_matrix(6, 3, 0.2, 0.9, 2))
            .build()
            .unwrap();
        let sol = solve_lp2(&inst).unwrap();
        for j in inst.jobs() {
            assert!(sol.mass_of(&inst, j) >= LP_MASS_TARGET - 1e-6);
        }
        for i in inst.machines() {
            assert!(sol.load_of(i) <= sol.t + 1e-6);
        }
        // The optimum of LP2 can be well below 1 when machines are plentiful.
        assert!(sol.t > 0.0);
    }

    #[test]
    fn lp2_basic_solution_is_sparse() {
        // A basic optimal solution of (LP2) has at most n + m + 1 non-zeros
        // among the x variables (n mass rows + m load rows, plus t).
        let n = 8;
        let m = 5;
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, 13))
            .build()
            .unwrap();
        let sol = solve_lp2(&inst).unwrap();
        assert!(
            sol.nonzero_x <= n + m + 1,
            "basic solution has {} non-zeros",
            sol.nonzero_x
        );
    }

    #[test]
    fn lp1_with_single_machine_scales_with_job_count() {
        // One machine must supply 1/2 mass to every job: t ≥ Σ_j 1/(2 p_j).
        let n = 4;
        let inst = InstanceBuilder::new(n, 1)
            .uniform_probability(0.5)
            .precedence(random_chains(n, n, 0))
            .build()
            .unwrap();
        let chains = ChainSet::from_dag(inst.precedence()).unwrap();
        let sol = solve_lp1(&inst, &chains).unwrap();
        assert!(sol.t >= n as f64 - 1e-6, "t = {}", sol.t);
    }

    #[test]
    fn lp_values_are_deterministic() {
        let (inst, chains) = chain_instance(6, 2, 3, 21);
        let a = solve_lp1(&inst, &chains).unwrap();
        let b = solve_lp1(&inst, &chains).unwrap();
        assert_eq!(a, b);
    }
}
