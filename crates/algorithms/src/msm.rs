//! `MSM-ALG`: the greedy 1/3-approximation for MaxSumMass (Theorem 3.2).
//!
//! MaxSumMass asks for a single-step assignment `f : M → J ∪ {⊥}` maximising
//! the total mass `Σ_j min(Σ_{i : f(i)=j} p_ij, 1)` over a given set of jobs.
//! `MSM-ALG` processes the probabilities `p_ij` in non-increasing order and
//! assigns machine `i` to job `j` whenever `i` is still free and doing so does
//! not push `j`'s mass above 1. The charging argument of Theorem 3.2 shows the
//! resulting total mass is at least 1/3 of the optimum.
//!
//! [`exact_max_sum_mass`] solves the problem exactly by exhaustive enumeration
//! for tiny instances, providing the optimum that experiment E3 compares the
//! greedy against.

use suu_core::{Assignment, JobId, JobSet, MachineId, SuuInstance};

/// Runs `MSM-ALG` on the given subset of jobs (typically the unfinished set),
/// returning the single-step assignment. Machines that cannot be usefully
/// assigned are left idle (`⊥`).
#[must_use]
pub fn msm_alg(instance: &SuuInstance, jobs: &JobSet) -> Assignment {
    let m = instance.num_machines();
    let n = instance.num_jobs();
    let mut assignment = Assignment::idle(m);
    let mut machine_used = vec![false; m];
    let mut job_mass = vec![0.0f64; n];

    // Allocation-free: the sorted entry list lives in the instance's lazily
    // built sparse index, so calling MSM-ALG once per schedule step costs no
    // per-call sort or Vec.
    for &(machine, job, p) in instance.positive_entries_sorted() {
        if !jobs.contains(job) {
            continue;
        }
        if machine_used[machine.0] {
            continue;
        }
        if job_mass[job.0] + p <= 1.0 + 1e-12 {
            assignment.assign(machine, job);
            machine_used[machine.0] = true;
            job_mass[job.0] += p;
        }
    }
    assignment
}

/// Total (capped) mass of an assignment restricted to `jobs`.
#[must_use]
pub fn sum_of_masses(instance: &SuuInstance, assignment: &Assignment, jobs: &JobSet) -> f64 {
    let mut mass = vec![0.0f64; instance.num_jobs()];
    for (machine, job) in assignment.busy_pairs() {
        if jobs.contains(job) {
            mass[job.0] += instance.prob(machine, job);
        }
    }
    mass.iter().map(|&v| v.min(1.0)).sum()
}

/// Exhaustively computes the optimal MaxSumMass value over all assignments of
/// machines to jobs in `jobs` (including leaving machines idle).
///
/// The search space is `(|jobs| + 1)^m`, so this is intended for instances
/// with at most a handful of machines and jobs (it panics beyond 10⁷ states
/// to avoid accidental blow-ups).
#[must_use]
pub fn exact_max_sum_mass(instance: &SuuInstance, jobs: &JobSet) -> f64 {
    let job_list: Vec<JobId> = jobs.iter().collect();
    let m = instance.num_machines();
    let choices = job_list.len() + 1;
    let states = (choices as u128).pow(u32::try_from(m).expect("machine count fits u32"));
    assert!(
        states <= 10_000_000,
        "exact MaxSumMass search space too large ({states} states)"
    );

    let mut best = 0.0f64;
    let mut counter = vec![0usize; m];
    loop {
        // Evaluate the current assignment encoded in `counter`.
        let mut mass = vec![0.0f64; instance.num_jobs()];
        for (i, &c) in counter.iter().enumerate() {
            if c > 0 {
                let job = job_list[c - 1];
                mass[job.0] += instance.prob(MachineId(i), job);
            }
        }
        let total: f64 = mass.iter().map(|&v| v.min(1.0)).sum();
        best = best.max(total);

        // Advance the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == m {
                return best;
            }
            counter[pos] += 1;
            if counter[pos] < choices {
                break;
            }
            counter[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use suu_core::InstanceBuilder;
    use suu_workloads::uniform_matrix;

    fn instance_from_matrix(n: usize, m: usize, probs: Vec<f64>) -> SuuInstance {
        InstanceBuilder::new(n, m)
            .probability_matrix(probs)
            .build()
            .unwrap()
    }

    #[test]
    fn single_machine_goes_to_best_job() {
        // One machine, two jobs, p = [0.3, 0.8]: greedy assigns to job 1.
        let inst = instance_from_matrix(2, 1, vec![0.3, 0.8]);
        let a = msm_alg(&inst, &JobSet::all(2));
        assert_eq!(a.target(MachineId(0)), Some(JobId(1)));
        assert!((sum_of_masses(&inst, &a, &JobSet::all(2)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn mass_never_exceeds_one_per_job() {
        // Many machines all excellent at job 0: greedy must stop adding them
        // once the mass reaches 1 and must not waste the rest on nothing.
        let inst = instance_from_matrix(2, 4, vec![0.9, 0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.1]);
        let a = msm_alg(&inst, &JobSet::all(2));
        let mut mass0 = 0.0;
        for i in 0..4 {
            if a.target(MachineId(i)) == Some(JobId(0)) {
                mass0 += 0.9;
            }
        }
        assert!(mass0 <= 1.0 + 1e-9);
        // The remaining machines should work on job 1 (0.1 each ≤ 1 total).
        assert!(a.machines_on(JobId(1)).len() >= 3);
    }

    #[test]
    fn ignores_jobs_outside_the_target_set() {
        let inst = instance_from_matrix(2, 2, vec![0.9, 0.2, 0.8, 0.3]);
        let only_job1 = JobSet::from_members(2, [JobId(1)]);
        let a = msm_alg(&inst, &only_job1);
        for (_, j) in a.busy_pairs() {
            assert_eq!(j, JobId(1));
        }
        assert!(!a.machines_on(JobId(1)).is_empty());
    }

    #[test]
    fn empty_job_set_leaves_all_machines_idle() {
        let inst = instance_from_matrix(2, 3, vec![0.5; 6]);
        let a = msm_alg(&inst, &JobSet::empty(2));
        assert_eq!(a.num_idle(), 3);
    }

    #[test]
    fn exact_solver_matches_hand_computed_optimum() {
        // 2 machines, 2 jobs: p = [[0.6, 0.5], [0.7, 0.1]].
        // Best: machine 0 → job 1 (0.5), machine 1 → job 0 (0.7) = 1.2;
        // alternative both on job 0 = min(1.3, 1) = 1.0; split other way 0.7.
        let inst = instance_from_matrix(2, 2, vec![0.6, 0.5, 0.7, 0.1]);
        let opt = exact_max_sum_mass(&inst, &JobSet::all(2));
        assert!((opt - 1.2).abs() < 1e-9, "opt = {opt}");
    }

    #[test]
    fn greedy_is_within_one_third_of_optimum_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for trial in 0..40 {
            let n = rng.gen_range(1..=4);
            let m = rng.gen_range(1..=4);
            let probs = uniform_matrix(n, m, 0.05, 0.95, trial);
            let inst = instance_from_matrix(n, m, probs);
            let jobs = JobSet::all(n);
            let greedy = sum_of_masses(&inst, &msm_alg(&inst, &jobs), &jobs);
            let opt = exact_max_sum_mass(&inst, &jobs);
            assert!(
                greedy >= opt / 3.0 - 1e-9,
                "trial {trial}: greedy {greedy} < opt/3 {}",
                opt / 3.0
            );
            assert!(greedy <= opt + 1e-9, "greedy cannot beat the optimum");
        }
    }

    #[test]
    fn greedy_uses_all_machines_when_capacity_allows() {
        // Low probabilities: no job saturates, every machine should work.
        let inst = instance_from_matrix(3, 5, vec![0.05; 15]);
        let a = msm_alg(&inst, &JobSet::all(3));
        assert_eq!(a.num_idle(), 0);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exact_solver_guards_against_blowup() {
        let inst = instance_from_matrix(20, 20, vec![0.5; 400]);
        let _ = exact_max_sum_mass(&inst, &JobSet::all(20));
    }
}
