//! Dense-vs-revised parity on the LPs this workspace actually solves:
//! (LP1)/(LP2) instances from all three structural classes the paper treats —
//! independent jobs, disjoint chains, and forests decomposed into chain
//! blocks. Both engines must agree on status and objective within 1e-6 on
//! the *identical* problem built by `build_relaxation`.

use suu_algorithms::lp_relaxation::build_relaxation;
use suu_core::{InstanceBuilder, JobId, SuuInstance};
use suu_graph::{ChainDecomposition, ChainSet};
use suu_lp::{solve_dense, solve_revised, LpStatus, SimplexOptions};
use suu_workloads::{random_chains, random_out_forest, sparse_uniform_matrix, uniform_matrix};

fn assert_parity(instance: &SuuInstance, chains: Option<&ChainSet>, label: &str) {
    let (lp, _, _, _) = build_relaxation(instance, chains);
    let options = SimplexOptions::default();
    let dense = solve_dense(&lp, &options).expect("dense solve");
    let revised = solve_revised(&lp, &options).expect("revised solve");
    assert_eq!(dense.status, revised.status, "{label}: status mismatch");
    assert_eq!(
        dense.status,
        LpStatus::Optimal,
        "{label}: relaxations of valid instances are always feasible and bounded"
    );
    assert!(
        (dense.objective - revised.objective).abs() <= 1e-6,
        "{label}: dense {} vs revised {}",
        dense.objective,
        revised.objective
    );
    assert!(
        lp.is_feasible(&dense.values, 1e-6),
        "{label}: dense vertex infeasible"
    );
    assert!(
        lp.is_feasible(&revised.values, 1e-6),
        "{label}: revised vertex infeasible"
    );
}

#[test]
fn lp2_parity_on_independent_instances() {
    for (n, m, seed) in [(4, 2, 1), (8, 5, 2), (12, 6, 3), (20, 8, 4)] {
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, seed))
            .build()
            .unwrap();
        assert_parity(&inst, None, &format!("LP2 dense-matrix n={n} m={m}"));
    }
    // Sparse eligibility — the regime the revised engine exists for.
    for (n, m, seed) in [(15, 10, 5), (30, 12, 6)] {
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(sparse_uniform_matrix(n, m, 0.2, 0.9, 0.7, seed))
            .build()
            .unwrap();
        assert_parity(&inst, None, &format!("LP2 sparse n={n} m={m}"));
    }
}

#[test]
fn lp1_parity_on_chain_instances() {
    for (n, m, k, seed) in [(6, 3, 2, 7), (10, 4, 3, 8), (16, 5, 4, 9)] {
        let dag = random_chains(n, k, seed);
        let chains = ChainSet::from_dag(&dag).unwrap();
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, seed))
            .precedence(dag)
            .build()
            .unwrap();
        assert_parity(
            &inst,
            Some(&chains),
            &format!("LP1 chains n={n} m={m} k={k}"),
        );
    }
}

#[test]
fn lp1_parity_on_forest_chain_blocks() {
    // The forest algorithm (Thm 4.7/4.8) feeds each chain block of the
    // Lemma 4.6 decomposition through (LP1); parity must hold on exactly
    // those sub-instances.
    for (n, m, roots, seed) in [(9, 3, 2, 11), (14, 4, 3, 12)] {
        let dag = random_out_forest(n, roots, seed);
        let inst = InstanceBuilder::new(n, m)
            .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, seed))
            .precedence(dag)
            .build()
            .unwrap();
        let decomposition = ChainDecomposition::decompose(inst.precedence()).unwrap();
        for (block, (chain_set, mapping)) in decomposition.block_chain_sets().iter().enumerate() {
            let jobs: Vec<JobId> = mapping.iter().map(|&v| JobId(v)).collect();
            let (sub, _) = inst.restrict_to_jobs(&jobs);
            assert_parity(
                &sub,
                Some(chain_set),
                &format!("LP1 forest n={n} m={m} block={block}"),
            );
        }
    }
}

#[test]
fn engine_parity_on_mass_target_edge() {
    // Degenerate relaxation: one machine, one job, p = 1 — the optimum sits
    // on several active constraints at once.
    let inst = InstanceBuilder::new(1, 1)
        .uniform_probability(1.0)
        .build()
        .unwrap();
    assert_parity(&inst, None, "LP2 1x1");
    let chains = ChainSet::from_dag(inst.precedence()).unwrap();
    assert_parity(&inst, Some(&chains), "LP1 1x1");
}
