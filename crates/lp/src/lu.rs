//! Sparse LU factorisation of a simplex basis, with Forrest–Tomlin updates.
//!
//! The revised simplex ([`crate::revised`]) needs exactly three operations on
//! the basis matrix `B` (the `m × m` matrix whose column `r` is the constraint
//! column of row `r`'s basic variable):
//!
//! * **FTRAN** — solve `B d = a` (the entering direction),
//! * **BTRAN** — solve `Bᵀ y = c_B` (the simplex multipliers),
//! * **update** — replace one column of `B` after a pivot.
//!
//! [`LuFactors`] supports all three on top of a single sparse factorisation
//! `P B Q = L U` computed by right-looking Gaussian elimination with a
//! Markowitz-style ordering rule (pick the pivot minimising
//! `(col_nnz − 1) · (row_nnz − 1)` among a short list of sparsest candidate
//! columns) under threshold partial pivoting (a pivot must be at least
//! [`PIVOT_REL_TOL`] of the largest entry in its column). `L` is stored as
//! unit-lower-triangular multiplier columns in elimination order; `U` is
//! stored row-wise (values) plus a column-wise pattern, both keyed by the
//! *elimination step*, with an explicit triangular ordering vector so that
//! update-time row/column moves are O(1) bookkeeping instead of physical
//! renumbering.
//!
//! A basis change is applied in place with a **Forrest–Tomlin row-spike
//! update**: the FTRANed entering column (the *spike*) replaces the leaving
//! variable's column of `U`, the spiked row is cyclically rotated to the last
//! triangular position, and the sub-diagonal row it leaves behind is
//! eliminated by row operations that are recorded as a compact *row eta* and
//! replayed inside every later FTRAN/BTRAN. The cost of an update is
//! proportional to the non-zeros it touches — no refactorisation, no O(m²)
//! work — and "reinversion" becomes [`LuFactors::factorize`] runs triggered by
//! the update count or by fill-in growth ([`LuFactors::needs_refactor`]).
//!
//! All scratch state (dense work vectors, candidate lists, the factorisation's
//! working columns) lives inside the struct and is reused across calls: the
//! pivot loop creates no per-pivot temporaries, and its only heap traffic is
//! amortised growth of these long-lived workspaces toward their fill
//! high-water marks — softened further by `UPDATE_FILL_HEADROOM` — which
//! decays as capacities converge (asserted, with a bright line of under one
//! allocation per pivot, by the `alloc_discipline` integration test).

use crate::sparse::CsrMatrix;

/// Threshold partial pivoting: a pivot entry must have magnitude at least
/// this fraction of the largest entry in its column. Smaller values favour
/// sparsity, larger values favour stability; 0.1 is the textbook compromise.
pub const PIVOT_REL_TOL: f64 = 0.1;

/// Absolute floor below which a pivot (or an updated diagonal) is treated as
/// zero: the basis is declared singular rather than divided by noise.
pub const PIVOT_ABS_TOL: f64 = 1e-11;

/// Entries smaller than this are dropped during elimination and updates; they
/// are numerical dust that would otherwise accumulate as structural fill.
const DROP_TOL: f64 = 1e-13;

/// How many of the sparsest active columns are scored with the full Markowitz
/// merit before committing to a pivot. A short list keeps the search cheap
/// while avoiding the worst orderings a pure min-column-count rule produces.
const MARKOWITZ_CANDIDATES: usize = 4;

/// Spare capacity reserved on every U row (and its column pattern) at
/// factorisation time, so Forrest–Tomlin updates push into pre-grown `Vec`s
/// instead of reallocating mid-pivot. Sixteen entries comfortably cover the
/// per-row spike fill a typical refactorisation cycle accumulates; rows that
/// blow through it fall back to doubling growth, whose capacity persists
/// across refactorisations and so converges to the lifetime high-water mark.
const UPDATE_FILL_HEADROOM: usize = 16;

/// Fill-in growth factor that triggers refactorisation: when the non-zeros of
/// `U` (plus accumulated row etas) exceed this multiple of the freshly
/// factorised count, updates have degraded the factors enough that a fresh
/// factorisation is cheaper than continuing to drag the fill along.
const FILL_REFACTOR_FACTOR: usize = 4;

/// The basis matrix is numerically singular: elimination (or a Forrest–Tomlin
/// update) could not find an acceptable pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularBasis;

impl std::fmt::Display for SingularBasis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "basis matrix is numerically singular")
    }
}

impl std::error::Error for SingularBasis {}

/// One Forrest–Tomlin row eta: the row operations that re-triangularised `U`
/// after a spike, stored as `(column step, multiplier)` pairs into a shared
/// arena (see [`LuFactors::eta_entries`]).
#[derive(Debug, Clone, Copy)]
struct RowEta {
    /// Step whose row was spiked (and rotated to the last position).
    spike_step: usize,
    /// `eta_entries[start..end]` holds this eta's `(step, multiplier)` pairs.
    start: usize,
    end: usize,
}

/// Sparse LU factors of a simplex basis with Forrest–Tomlin update support.
///
/// The factorisation is keyed by *elimination step* `k ∈ 0..m`: step `k`
/// pivoted original row `p[k]` and basis position `q[k]`. FTRAN maps a vector
/// indexed by original row into one indexed by basis position; BTRAN maps the
/// other way. See the module docs for the full story.
#[derive(Debug, Clone)]
pub struct LuFactors {
    m: usize,
    /// `p[k]` = original row pivoted at step `k`; `p_inv` is its inverse.
    p: Vec<usize>,
    p_inv: Vec<usize>,
    /// `q[k]` = basis position eliminated at step `k`; `q_inv` is its inverse.
    q: Vec<usize>,
    q_inv: Vec<usize>,
    /// Unit-lower-triangular multiplier columns, by step: `(original row,
    /// multiplier)` for every active row below the pivot at that step.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Off-diagonal row `k` of `U`: `(column step, value)` pairs, all at
    /// triangular positions after `pos[k]`.
    u_rows: Vec<Vec<(usize, f64)>>,
    /// Pattern of column `k` of `U` (which row steps hold an entry), needed to
    /// evict a replaced column during an update.
    u_col_pattern: Vec<Vec<usize>>,
    u_diag: Vec<f64>,
    /// Reciprocals of `u_diag`, kept in lock-step: the triangular solves are
    /// serial dependency chains, and a multiply there costs a fraction of the
    /// unpipelined divide it replaces.
    u_diag_inv: Vec<f64>,
    /// Triangular ordering: `order[i]` is the step at position `i`; `pos` is
    /// its inverse. Fresh factorisations are the identity; Forrest–Tomlin
    /// updates cyclically rotate spiked steps to the back.
    order: Vec<usize>,
    pos: Vec<usize>,
    /// Forrest–Tomlin row etas, applied in recording order during FTRAN and
    /// in reverse during BTRAN; entries live in the shared `eta_entries`
    /// arena so an update never allocates a fresh vector.
    row_etas: Vec<RowEta>,
    eta_entries: Vec<(usize, f64)>,
    updates_since_refactor: usize,
    /// `U` + eta non-zeros right after the last factorisation, and now.
    fresh_nnz: usize,
    current_nnz: usize,
    // --- reusable scratch ---
    /// Dense step-space work vector used by FTRAN/BTRAN.
    work: Vec<f64>,
    /// BTRAN scatter accumulator.
    acc: Vec<f64>,
    /// The forward-substituted column of the most recent FTRAN (the
    /// Forrest–Tomlin spike), in step space.
    spike: Vec<f64>,
    spike_valid: bool,
    /// Factorisation working columns (by basis position) and row counts.
    wcols: Vec<Vec<(usize, f64)>>,
    row_count: Vec<usize>,
    col_done: Vec<bool>,
    /// Dense by-original-row scratch used during elimination and updates.
    dense_row: Vec<f64>,
    touched: Vec<usize>,
    /// For each still-active original row, the working columns that (may)
    /// hold an entry in it. Entries go stale when cancellation drops a value;
    /// consumers re-verify membership, so staleness costs a skipped lookup,
    /// never a wrong factor.
    row_cols: Vec<Vec<usize>>,
    /// Per-column "processed at elimination step" stamps (step + 1), used to
    /// deduplicate `row_cols` entries while walking a pivot row.
    row_stamp: Vec<usize>,
    /// Lazy buckets of active columns by current non-zero count, scanned from
    /// the sparsest end for Markowitz candidates. Stale entries (wrong length
    /// or already-pivoted column) are dropped on scan.
    nnz_buckets: Vec<Vec<usize>>,
    /// Smallest bucket index that may be non-empty.
    bucket_floor: usize,
}

impl LuFactors {
    /// Creates an empty factorisation holder for `m × m` bases. Call
    /// [`factorize`](Self::factorize) before the first solve.
    #[must_use]
    pub fn new(m: usize) -> Self {
        Self {
            m,
            p: vec![0; m],
            p_inv: vec![0; m],
            q: vec![0; m],
            q_inv: vec![0; m],
            l_cols: (0..m).map(|_| Vec::new()).collect(),
            u_rows: (0..m).map(|_| Vec::new()).collect(),
            u_col_pattern: (0..m).map(|_| Vec::new()).collect(),
            u_diag: vec![0.0; m],
            u_diag_inv: vec![0.0; m],
            order: (0..m).collect(),
            pos: (0..m).collect(),
            row_etas: Vec::new(),
            eta_entries: Vec::new(),
            updates_since_refactor: 0,
            fresh_nnz: 0,
            current_nnz: 0,
            work: vec![0.0; m],
            acc: vec![0.0; m],
            spike: vec![0.0; m],
            spike_valid: false,
            wcols: (0..m).map(|_| Vec::new()).collect(),
            row_count: vec![0; m],
            col_done: vec![false; m],
            dense_row: vec![0.0; m],
            touched: Vec::with_capacity(m),
            row_cols: (0..m).map(|_| Vec::new()).collect(),
            row_stamp: vec![0; m],
            nnz_buckets: (0..=m).map(|_| Vec::new()).collect(),
            bucket_floor: 1,
        }
    }

    /// Basis dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Number of Forrest–Tomlin updates applied since the last
    /// [`factorize`](Self::factorize).
    #[must_use]
    pub fn updates_since_refactor(&self) -> usize {
        self.updates_since_refactor
    }

    /// Whether the factors should be rebuilt: either `max_updates`
    /// Forrest–Tomlin updates have accumulated, or fill-in has grown past
    /// [`FILL_REFACTOR_FACTOR`]× the freshly factorised non-zero count.
    #[must_use]
    pub fn needs_refactor(&self, max_updates: usize) -> bool {
        self.updates_since_refactor >= max_updates
            || self.current_nnz > FILL_REFACTOR_FACTOR * self.fresh_nnz.max(self.m)
    }

    /// Factorises the basis given by `basis` (one column id per basis
    /// position) over the column-access matrix `cols` (row `c` of `cols` is
    /// column `c` of `A`, i.e. the CSC view). Reuses all internal storage.
    ///
    /// # Errors
    ///
    /// Returns [`SingularBasis`] when elimination cannot find a pivot of
    /// magnitude at least [`PIVOT_ABS_TOL`] in some remaining column.
    ///
    /// # Panics
    ///
    /// Panics if `basis.len()` differs from the dimension this holder was
    /// created with.
    pub fn factorize(&mut self, cols: &CsrMatrix, basis: &[usize]) -> Result<(), SingularBasis> {
        let m = self.m;
        assert_eq!(basis.len(), m, "basis must have one column per row");
        self.row_etas.clear();
        self.eta_entries.clear();
        let saw_updates = self.updates_since_refactor > 0;
        self.updates_since_refactor = 0;
        self.spike_valid = false;
        for k in 0..m {
            self.l_cols[k].clear();
            self.u_rows[k].clear();
            self.u_col_pattern[k].clear();
            self.order[k] = k;
            self.pos[k] = k;
            self.col_done[k] = false;
            self.row_count[k] = 0;
            self.row_cols[k].clear();
            self.row_stamp[k] = 0;
            self.nnz_buckets[k].clear();
        }
        self.nnz_buckets[m].clear();
        self.bucket_floor = m;

        // Working columns by basis position, plus the row → columns index and
        // the by-nnz candidate buckets.
        for (t, &var) in basis.iter().enumerate() {
            let wcol = &mut self.wcols[t];
            wcol.clear();
            for (r, v) in cols.row(var) {
                wcol.push((r, v));
                self.row_count[r] += 1;
                self.row_cols[r].push(t);
            }
        }
        // Triangularisation pre-pass: eliminate singleton columns (and the
        // cascade they trigger) before any Markowitz machinery runs. A
        // singleton column needs no multipliers and no fill, so each one
        // costs a handful of operations here versus a bucket scan plus
        // candidate scoring in the main loop. Simplex bases are full of
        // them — the initial slack/artificial basis is *entirely* unit
        // columns, and mid-solve bases keep a large triangular part — so
        // this is where most refactorisation columns go. Threshold
        // pivoting is vacuous for a singleton (the entry is its own column
        // max); only the absolute floor applies.
        let mut k = 0usize;
        self.touched.clear();
        for t in 0..m {
            if self.wcols[t].len() == 1 {
                self.touched.push(t);
            }
        }
        while let Some(t) = self.touched.pop() {
            if self.col_done[t] || self.wcols[t].len() != 1 {
                continue;
            }
            let (prow, pval) = self.wcols[t][0];
            if pval.abs() < PIVOT_ABS_TOL {
                continue; // left to the main loop, which will report singular
            }
            self.p[k] = prow;
            self.q[k] = t;
            self.u_diag[k] = pval;
            self.u_diag_inv[k] = 1.0 / pval;
            self.col_done[t] = true;
            self.wcols[t].clear();
            self.row_count[prow] -= 1;
            self.l_cols[k].clear();
            // Strip the pivot row from every column still holding it; those
            // entries become row k of U. No fill happens (there are no
            // multipliers), so `row_cols` lists hold no duplicates yet and
            // lengths only shrink — new singletons join the cascade.
            let held = std::mem::take(&mut self.row_cols[prow]);
            for &c in &held {
                if self.col_done[c] {
                    continue;
                }
                let Some(at) = self.wcols[c].iter().position(|&(r, _)| r == prow) else {
                    continue;
                };
                let uval = self.wcols[c][at].1;
                self.wcols[c].swap_remove(at);
                self.row_count[prow] -= 1;
                self.u_rows[k].push((c, uval));
                if self.wcols[c].len() == 1 {
                    self.touched.push(c);
                }
            }
            let mut held = held;
            held.clear();
            self.row_cols[prow] = held;
            k += 1;
        }

        for t in 0..m {
            if self.col_done[t] {
                continue;
            }
            let len = self.wcols[t].len();
            self.nnz_buckets[len].push(t);
            if len < self.bucket_floor {
                self.bucket_floor = len.max(1);
            }
        }

        for k in k..m {
            let Some((t, prow, pval, pidx)) = self.select_pivot() else {
                return Err(SingularBasis);
            };

            self.p[k] = prow;
            self.q[k] = t;
            self.u_diag[k] = pval;
            self.u_diag_inv[k] = 1.0 / pval;
            self.col_done[t] = true;

            // L column k: multipliers for the active rows of the pivot column.
            self.wcols[t].swap_remove(pidx);
            self.row_count[prow] -= 1;
            self.l_cols[k].clear();
            for i in 0..self.wcols[t].len() {
                let (r, v) = self.wcols[t][i];
                self.l_cols[k].push((r, v / pval));
                self.row_count[r] -= 1;
            }

            // Right-looking update of every remaining column holding the
            // pivot row (enumerated by the row → columns index; stale entries
            // are re-verified and skipped); the removed entries become row k
            // of U (keyed by basis position for now, remapped to steps
            // below). The pivot row is eliminated for good, so its index list
            // is consumed here — fill never re-enters an eliminated row.
            let held = std::mem::take(&mut self.row_cols[prow]);
            for &c in &held {
                if self.col_done[c] || self.row_stamp[c] == k + 1 {
                    continue;
                }
                self.row_stamp[c] = k + 1;
                let Some(at) = self.wcols[c].iter().position(|&(r, _)| r == prow) else {
                    continue;
                };
                let uval = self.wcols[c][at].1;
                self.wcols[c].swap_remove(at);
                self.row_count[prow] -= 1;
                self.u_rows[k].push((c, uval));
                if !self.l_cols[k].is_empty() {
                    // Dense scatter of the column, apply the multipliers,
                    // gather. Row counts are released at scatter and
                    // re-acquired at gather, which keeps them exact through
                    // fill-in and exact cancellation alike.
                    self.touched.clear();
                    for i in 0..self.wcols[c].len() {
                        let (r, v) = self.wcols[c][i];
                        self.dense_row[r] = v;
                        self.touched.push(r);
                        self.row_count[r] -= 1;
                    }
                    for i in 0..self.l_cols[k].len() {
                        let (r, l) = self.l_cols[k][i];
                        if self.dense_row[r] == 0.0 {
                            self.touched.push(r);
                            self.row_cols[r].push(c);
                        }
                        self.dense_row[r] -= l * uval;
                    }
                    self.wcols[c].clear();
                    for i in 0..self.touched.len() {
                        let r = self.touched[i];
                        let v = self.dense_row[r];
                        self.dense_row[r] = 0.0;
                        if v.abs() > DROP_TOL {
                            self.wcols[c].push((r, v));
                            self.row_count[r] += 1;
                        }
                    }
                }
                let len = self.wcols[c].len();
                self.nnz_buckets[len].push(c);
                if len < self.bucket_floor {
                    self.bucket_floor = len.max(1);
                }
            }
            let mut held = held;
            held.clear();
            self.row_cols[prow] = held;
        }

        // Remap U row entries from basis positions to elimination steps and
        // build the column patterns.
        for (k, &t) in self.q.iter().enumerate() {
            self.q_inv[t] = k;
        }
        for (k, &r) in self.p.iter().enumerate() {
            self.p_inv[r] = k;
        }
        let mut unnz = 0usize;
        for k in 0..m {
            let row = &mut self.u_rows[k];
            for entry in row.iter_mut() {
                entry.0 = self.q_inv[entry.0];
            }
            // Triangular invariant: all entries sit at later steps.
            debug_assert!(row.iter().all(|&(j, _)| j > k));
            unnz += row.len();
        }
        for k in 0..m {
            for i in 0..self.u_rows[k].len() {
                let j = self.u_rows[k][i].0;
                self.u_col_pattern[j].push(k);
            }
        }
        self.fresh_nnz = unnz + m;
        self.current_nnz = self.fresh_nnz;
        // Reserve headroom for Forrest–Tomlin spike fill now, while we are
        // already off the pivot loop's hot path. Update fill lands one entry
        // per spiked row per update, so a modest per-row cushion absorbs a
        // whole refactorisation cycle for all but the hottest rows — and
        // capacity persists across refactorisations, so each row converges
        // to its lifetime high-water mark and steady-state `ft_update`
        // pushes stop allocating (the discipline the `alloc_discipline`
        // integration test measures). Gated on the factors actually having
        // been updated: a short solve that never reaches its first
        // refactorisation should not pay m reallocations of cushion it will
        // never use.
        if saw_updates {
            for k in 0..m {
                self.u_rows[k].reserve(UPDATE_FILL_HEADROOM);
                self.u_col_pattern[k].reserve(UPDATE_FILL_HEADROOM);
            }
        }
        Ok(())
    }

    /// Markowitz-style pivot selection over the active submatrix: the
    /// `MARKOWITZ_CANDIDATES` sparsest active columns are scored with the
    /// merit `(col_nnz − 1) · (row_nnz − 1)` over their threshold-acceptable
    /// entries (|v| ≥ [`PIVOT_REL_TOL`] · colmax); the best merit wins, ties
    /// broken by lower basis position, then larger magnitude, then lower row
    /// — fully deterministic. Falls back to scanning every active column
    /// before giving up (the short list can be all-unacceptable while a
    /// longer column still holds a fine pivot).
    fn select_pivot(&mut self) -> Option<(usize, usize, f64, usize)> {
        let m = self.m;
        let mut cand = [usize::MAX; MARKOWITZ_CANDIDATES];
        let mut cand_len = 0usize;
        // Pop the sparsest active columns off the lazy buckets. Entries whose
        // recorded length no longer matches (or whose column has pivoted) are
        // stale and dropped; each pushed entry is dropped at most once, so
        // the scan is amortised by the elimination work that pushed it.
        let mut len = self.bucket_floor;
        'scan: while len <= m {
            let mut bucket = std::mem::take(&mut self.nnz_buckets[len]);
            let mut w = 0usize;
            for rdx in 0..bucket.len() {
                let t = bucket[rdx];
                if self.col_done[t] || self.wcols[t].len() != len {
                    continue;
                }
                bucket[w] = t;
                w += 1;
                if cand[..cand_len].contains(&t) {
                    continue;
                }
                cand[cand_len] = t;
                cand_len += 1;
                if cand_len == MARKOWITZ_CANDIDATES {
                    bucket.copy_within(rdx + 1.., w);
                    bucket.truncate(w + bucket.len() - (rdx + 1));
                    self.nnz_buckets[len] = bucket;
                    break 'scan;
                }
            }
            bucket.truncate(w);
            self.nnz_buckets[len] = bucket;
            if w == 0 && len == self.bucket_floor {
                self.bucket_floor += 1;
            }
            len += 1;
        }
        let best = self.best_acceptable(cand.iter().take(cand_len).copied());
        if best.is_some() {
            return best.map(|(_, t, r, v, idx)| (t, r, v, idx));
        }
        let all = (0..m).filter(|&t| !self.col_done[t]);
        self.best_acceptable(all)
            .map(|(_, t, r, v, idx)| (t, r, v, idx))
    }

    /// Best `(merit, col, row, value, index)` pivot among `columns`.
    fn best_acceptable(
        &self,
        columns: impl Iterator<Item = usize>,
    ) -> Option<(usize, usize, usize, f64, usize)> {
        let mut best: Option<(usize, usize, usize, f64, usize)> = None;
        for t in columns {
            let wcol = &self.wcols[t];
            let colmax = wcol.iter().fold(0.0f64, |a, &(_, v)| a.max(v.abs()));
            if colmax < PIVOT_ABS_TOL {
                continue;
            }
            let floor = (PIVOT_REL_TOL * colmax).max(PIVOT_ABS_TOL);
            for (idx, &(r, v)) in wcol.iter().enumerate() {
                if v.abs() < floor {
                    continue;
                }
                let merit = (wcol.len() - 1) * (self.row_count[r] - 1);
                let better = match best {
                    None => true,
                    Some((bm, bt, br, bv, _)) => {
                        merit < bm
                            || (merit == bm
                                && (t < bt
                                    || (t == bt
                                        && (v.abs() > bv.abs()
                                            || (v.abs() == bv.abs() && r < br)))))
                    }
                };
                if better {
                    best = Some((merit, t, r, v, idx));
                }
            }
        }
        best
    }

    /// FTRAN: solves `B x = v` in place. On input `v` is indexed by
    /// *original row*; on output it is indexed by *basis position* (the
    /// convention the revised simplex uses for directions and `x_B`).
    ///
    /// The forward-substituted spike is retained for a subsequent
    /// [`ft_update`](Self::ft_update).
    pub fn ftran(&mut self, v: &mut [f64]) {
        debug_assert_eq!(v.len(), self.m);
        let m = self.m;
        // Forward: z = (row etas) ∘ L⁻¹ P v, into step space. The zipped
        // iteration keeps the per-step bookkeeping free of bounds checks.
        for ((wk, &pk), lcol) in self.work.iter_mut().zip(&self.p).zip(&self.l_cols) {
            let t = v[pk];
            *wk = t;
            if t != 0.0 {
                for &(r, l) in lcol {
                    v[r] -= l * t;
                }
            }
        }
        for eta in &self.row_etas {
            let mut s = self.work[eta.spike_step];
            for &(j, r) in &self.eta_entries[eta.start..eta.end] {
                s -= r * self.work[j];
            }
            self.work[eta.spike_step] = s;
        }
        self.spike.copy_from_slice(&self.work);
        self.spike_valid = true;
        // Backward: U x = z, in reverse triangular order.
        for i in (0..m).rev() {
            let k = self.order[i];
            let mut t = self.work[k];
            for &(j, u) in &self.u_rows[k] {
                t -= u * self.work[j];
            }
            self.work[k] = t * self.u_diag_inv[k];
        }
        for (&qk, &wk) in self.q.iter().zip(&self.work) {
            v[qk] = wk;
        }
    }

    /// BTRAN: solves `Bᵀ y = v` in place. On input `v` is indexed by *basis
    /// position* (e.g. `c_B`); on output it is indexed by *original row* (the
    /// simplex multipliers).
    pub fn btran(&mut self, v: &mut [f64]) {
        debug_assert_eq!(v.len(), self.m);
        let m = self.m;
        // Forward on Uᵀ in triangular order, scatter style.
        self.acc.fill(0.0);
        for i in 0..m {
            let k = self.order[i];
            let w = (v[self.q[k]] - self.acc[k]) * self.u_diag_inv[k];
            self.work[k] = w;
            if w != 0.0 {
                for &(j, u) in &self.u_rows[k] {
                    self.acc[j] += u * w;
                }
            }
        }
        // Row etas transposed, in reverse recording order.
        for eta in self.row_etas.iter().rev() {
            let s = self.work[eta.spike_step];
            if s != 0.0 {
                for &(j, r) in &self.eta_entries[eta.start..eta.end] {
                    self.work[j] -= r * s;
                }
            }
        }
        // Backward on Lᵀ: z[k] uses only later steps' values.
        for k in (0..m).rev() {
            let mut t = self.work[k];
            for &(r, l) in &self.l_cols[k] {
                t -= l * self.work[self.p_inv[r]];
            }
            self.work[k] = t;
        }
        for (&pk, &wk) in self.p.iter().zip(&self.work) {
            v[pk] = wk;
        }
    }

    /// Forrest–Tomlin update: the column at basis position `leaving_pos` is
    /// replaced by the column passed to the **most recent** [`ftran`]
    /// (whose forward-substituted spike was retained). O(touched non-zeros).
    ///
    /// # Errors
    ///
    /// Returns [`SingularBasis`] when the re-triangularised diagonal entry
    /// falls below [`PIVOT_ABS_TOL`]. The factors are left inconsistent in
    /// that case: the caller must [`factorize`](Self::factorize) afresh (or
    /// abandon the basis) before the next solve.
    ///
    /// # Panics
    ///
    /// Panics if no spike is available (no `ftran` since the last
    /// factorisation or update).
    ///
    /// [`ftran`]: Self::ftran
    pub fn ft_update(&mut self, leaving_pos: usize) -> Result<(), SingularBasis> {
        assert!(self.spike_valid, "ft_update needs the spike of an ftran");
        self.spike_valid = false;
        let m = self.m;
        let s = self.q_inv[leaving_pos];

        // Evict the old column s from U (rows listed in its pattern).
        for i in 0..self.u_col_pattern[s].len() {
            let k = self.u_col_pattern[s][i];
            let row = &mut self.u_rows[k];
            if let Some(at) = row.iter().position(|&(j, _)| j == s) {
                row.swap_remove(at);
                self.current_nnz -= 1;
            }
        }
        self.u_col_pattern[s].clear();

        // Install the spike as the new column s and remember row s's old
        // entries (they are about to become sub-diagonal).
        let spike_pos = self.pos[s];
        for k in 0..m {
            if k == s {
                continue;
            }
            let w = self.spike[k];
            if w.abs() > DROP_TOL {
                self.u_rows[k].push((s, w));
                self.u_col_pattern[s].push(k);
                self.current_nnz += 1;
            }
        }

        // Rotate step s to the last triangular position.
        for i in spike_pos..m - 1 {
            self.order[i] = self.order[i + 1];
            self.pos[self.order[i]] = i;
        }
        self.order[m - 1] = s;
        self.pos[s] = m - 1;

        // Scatter row s (now logically the last row) into dense scratch and
        // eliminate everything left of the diagonal with row operations,
        // recording them as one row eta.
        self.touched.clear();
        for i in 0..self.u_rows[s].len() {
            let (j, v) = self.u_rows[s][i];
            self.dense_row[j] = v;
            self.touched.push(j);
            // Their column patterns lose row s.
            let pat = &mut self.u_col_pattern[j];
            if let Some(at) = pat.iter().position(|&k| k == s) {
                pat.swap_remove(at);
            }
            self.current_nnz -= 1;
        }
        self.u_rows[s].clear();
        let diag_val = self.spike[s];
        self.dense_row[s] = diag_val;

        let eta_start = self.eta_entries.len();
        for i in spike_pos..m - 1 {
            let j = self.order[i];
            let v = self.dense_row[j];
            if v == 0.0 {
                continue;
            }
            self.dense_row[j] = 0.0;
            let r = v / self.u_diag[j];
            if r.abs() <= DROP_TOL {
                continue;
            }
            self.eta_entries.push((j, r));
            for idx in 0..self.u_rows[j].len() {
                let (jj, u) = self.u_rows[j][idx];
                if self.dense_row[jj] == 0.0 {
                    self.touched.push(jj);
                }
                self.dense_row[jj] -= r * u;
            }
        }
        let eta_end = self.eta_entries.len();
        if eta_end > eta_start {
            self.row_etas.push(RowEta {
                spike_step: s,
                start: eta_start,
                end: eta_end,
            });
            self.current_nnz += eta_end - eta_start;
        }

        // Whatever survived at column s is the new diagonal; everything else
        // was eliminated or dropped.
        let new_diag = self.dense_row[s];
        self.dense_row[s] = 0.0;
        for i in 0..self.touched.len() {
            let j = self.touched[i];
            self.dense_row[j] = 0.0;
        }
        self.updates_since_refactor += 1;
        if new_diag.abs() < PIVOT_ABS_TOL || !new_diag.is_finite() {
            return Err(SingularBasis);
        }
        self.u_diag[s] = new_diag;
        self.u_diag_inv[s] = 1.0 / new_diag;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense LU-free oracle: Gaussian elimination with partial pivoting.
    fn dense_solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
        let m = b.len();
        let mut aug: Vec<Vec<f64>> = a.to_vec();
        let mut x = b.to_vec();
        let mut perm: Vec<usize> = (0..m).collect();
        for k in 0..m {
            let piv = (k..m)
                .max_by(|&i, &j| {
                    aug[perm[i]][k]
                        .abs()
                        .partial_cmp(&aug[perm[j]][k].abs())
                        .unwrap()
                })
                .unwrap();
            perm.swap(k, piv);
            let pv = aug[perm[k]][k];
            if pv.abs() < 1e-12 {
                return None;
            }
            for i in k + 1..m {
                let f = aug[perm[i]][k] / pv;
                if f == 0.0 {
                    continue;
                }
                for j in k..m {
                    let v = aug[perm[k]][j];
                    aug[perm[i]][j] -= f * v;
                }
                x[perm[i]] -= f * x[perm[k]];
            }
        }
        let mut sol = vec![0.0; m];
        for k in (0..m).rev() {
            let mut t = x[perm[k]];
            for j in k + 1..m {
                t -= aug[perm[k]][j] * sol[j];
            }
            sol[k] = t / aug[perm[k]][k];
        }
        Some(sol)
    }

    /// Builds the CSC view (row c = column c) of a dense matrix whose
    /// `a[r][c]` is row r, column c.
    fn csc_of(a: &[Vec<f64>]) -> CsrMatrix {
        let m = a.len();
        let rows: Vec<Vec<(usize, f64)>> = (0..m)
            .map(|c| {
                (0..m)
                    .filter(|&r| a[r][c] != 0.0)
                    .map(|r| (r, a[r][c]))
                    .collect()
            })
            .collect();
        CsrMatrix::from_rows(m, &rows)
    }

    #[test]
    fn factorize_and_ftran_match_dense_solve() {
        let a = vec![
            vec![2.0, 0.0, 1.0],
            vec![0.0, 3.0, 0.0],
            vec![4.0, 1.0, 5.0],
        ];
        let cols = csc_of(&a);
        let mut lu = LuFactors::new(3);
        lu.factorize(&cols, &[0, 1, 2]).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let expect = dense_solve(&a, &b).unwrap();
        let mut v = b.clone();
        lu.ftran(&mut v);
        for (got, want) in v.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-9, "{v:?} vs {expect:?}");
        }
    }

    #[test]
    fn btran_matches_transposed_dense_solve() {
        let a = vec![
            vec![1.0, 2.0, 0.0],
            vec![0.0, 1.0, 4.0],
            vec![5.0, 0.0, 1.0],
        ];
        let at: Vec<Vec<f64>> = (0..3).map(|r| (0..3).map(|c| a[c][r]).collect()).collect();
        let cols = csc_of(&a);
        let mut lu = LuFactors::new(3);
        lu.factorize(&cols, &[0, 1, 2]).unwrap();
        let c = vec![3.0, -1.0, 2.0];
        let expect = dense_solve(&at, &c).unwrap();
        let mut v = c.clone();
        lu.btran(&mut v);
        for (got, want) in v.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-9, "{v:?} vs {expect:?}");
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        let a = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![0.0, 1.0, 1.0],
        ];
        let cols = csc_of(&a);
        let mut lu = LuFactors::new(3);
        assert_eq!(lu.factorize(&cols, &[0, 1, 2]), Err(SingularBasis));
    }

    #[test]
    fn ft_update_tracks_a_column_replacement() {
        // B with columns [b0 b1 b2]; replace column 1 by a new column and
        // check FTRAN against a dense solve of the updated matrix.
        let a = vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ];
        // Column pool: column 3 of the wider matrix is the replacement.
        let wide = [
            vec![4.0, 1.0, 0.0, 2.0],
            vec![1.0, 3.0, 1.0, 0.0],
            vec![0.0, 1.0, 2.0, 1.0],
        ];
        let rows: Vec<Vec<(usize, f64)>> = (0..4)
            .map(|c| {
                (0..3)
                    .filter(|&r| wide[r][c] != 0.0)
                    .map(|r| (r, wide[r][c]))
                    .collect()
            })
            .collect();
        let cols = CsrMatrix::from_rows(3, &rows);
        let mut lu = LuFactors::new(3);
        lu.factorize(&cols, &[0, 1, 2]).unwrap();

        // FTRAN the replacement column (original row space), then update.
        let mut d = vec![2.0, 0.0, 1.0];
        lu.ftran(&mut d);
        lu.ft_update(1).unwrap();

        let mut updated = a.clone();
        for r in 0..3 {
            updated[r][1] = wide[r][3];
        }
        let b = vec![1.0, 1.0, 1.0];
        let expect = dense_solve(&updated, &b).unwrap();
        let mut v = b.clone();
        lu.ftran(&mut v);
        for (got, want) in v.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-9, "{v:?} vs {expect:?}");
        }
        // BTRAN against the transpose too.
        let ut: Vec<Vec<f64>> = (0..3)
            .map(|r| (0..3).map(|c| updated[c][r]).collect())
            .collect();
        let cvec = vec![2.0, -1.0, 0.5];
        let expect = dense_solve(&ut, &cvec).unwrap();
        let mut v = cvec.clone();
        lu.btran(&mut v);
        for (got, want) in v.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-9, "{v:?} vs {expect:?}");
        }
    }

    #[test]
    fn update_count_and_fill_drive_needs_refactor() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let cols = csc_of(&a);
        let mut lu = LuFactors::new(2);
        lu.factorize(&cols, &[0, 1]).unwrap();
        assert!(!lu.needs_refactor(2));
        let mut d = vec![1.0, 1.0];
        lu.ftran(&mut d);
        lu.ft_update(0).unwrap();
        assert_eq!(lu.updates_since_refactor(), 1);
        assert!(!lu.needs_refactor(2));
        let mut d = vec![0.5, 1.0];
        lu.ftran(&mut d);
        lu.ft_update(1).unwrap();
        assert!(lu.needs_refactor(2));
    }
}
