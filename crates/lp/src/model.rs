//! A small modelling layer for linear programs.
//!
//! Variables are non-negative reals with an optional finite upper bound;
//! constraints are linear `≤ / ≥ / =` relations; the objective is a linear
//! functional to minimise or maximise. This covers everything (LP1) and (LP2)
//! of the paper need:
//!
//! * `x_ij ≥ 0` (machine-steps assigned to a job),
//! * `d_j ≥ 1` (modelled as a `≥` constraint),
//! * mass / load / chain-length constraints,
//! * `min t`.

use serde::{Deserialize, Serialize};

/// Index of a decision variable in an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub usize);

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Minimise the objective.
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// Relational operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `Σ aᵢ xᵢ ≤ b`
    Le,
    /// `Σ aᵢ xᵢ ≥ b`
    Ge,
    /// `Σ aᵢ xᵢ = b`
    Eq,
}

/// A single linear constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse coefficient list `(variable, coefficient)`.
    pub terms: Vec<(VarId, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
    /// Optional human-readable label (used in error messages and tests).
    pub label: String,
}

/// A linear program over non-negative variables.
///
/// # Examples
///
/// ```
/// use suu_lp::{LpProblem, Sense, ConstraintOp, solve, SimplexOptions, LpStatus};
///
/// // maximise 3x + 2y  s.t.  x + y ≤ 4,  x ≤ 2
/// let mut lp = LpProblem::new(Sense::Maximize);
/// let x = lp.add_variable("x");
/// let y = lp.add_variable("y");
/// lp.set_objective_coefficient(x, 3.0);
/// lp.set_objective_coefficient(y, 2.0);
/// lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0, "cap");
/// lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 2.0, "x-cap");
/// let sol = solve(&lp, &SimplexOptions::default()).unwrap();
/// assert_eq!(sol.status, LpStatus::Optimal);
/// assert!((sol.objective - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpProblem {
    sense: Sense,
    names: Vec<String>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates an empty problem with the given optimisation sense.
    #[must_use]
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            names: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a non-negative variable with objective coefficient 0 and returns
    /// its id.
    pub fn add_variable(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        self.objective.push(0.0);
        VarId(self.names.len() - 1)
    }

    /// Sets the objective coefficient of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this problem.
    pub fn set_objective_coefficient(&mut self, var: VarId, coeff: f64) {
        self.objective[var.0] = coeff;
    }

    /// Adds a constraint `Σ terms (op) rhs`.
    ///
    /// Terms referring to the same variable are summed and zero coefficients
    /// dropped (the same compaction the objective gets), so rows are stored
    /// sparse — as `(VarId, f64)` pairs sorted by variable — end to end. The
    /// compaction is a sort-and-merge over the row's own terms: it never
    /// materialises a dense length-`num_variables` buffer, which would make
    /// building an LP with `r` rows O(r · n) regardless of sparsity. Returns
    /// the constraint index.
    ///
    /// # Panics
    ///
    /// Panics if a term references an unknown variable or a coefficient/rhs is
    /// not finite.
    pub fn add_constraint(
        &mut self,
        mut terms: Vec<(VarId, f64)>,
        op: ConstraintOp,
        rhs: f64,
        label: impl Into<String>,
    ) -> usize {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        for &(v, c) in &terms {
            assert!(v.0 < self.names.len(), "unknown variable in constraint");
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        terms.sort_by_key(|&(v, _)| v);
        let mut compact: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            match compact.last_mut() {
                Some((last, sum)) if *last == v => *sum += c,
                _ => compact.push((v, c)),
            }
        }
        compact.retain(|&(_, c)| c != 0.0);
        self.constraints.push(Constraint {
            terms: compact,
            op,
            rhs,
            label: label.into(),
        });
        self.constraints.len() - 1
    }

    /// Number of variables.
    #[must_use]
    pub fn num_variables(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The optimisation sense.
    #[must_use]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Name of a variable.
    #[must_use]
    pub fn variable_name(&self, var: VarId) -> &str {
        &self.names[var.0]
    }

    /// Objective coefficients, indexed by variable.
    #[must_use]
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective at a point.
    #[must_use]
    pub fn objective_value(&self, point: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(point.iter())
            .map(|(c, x)| c * x)
            .sum()
    }

    /// Checks whether `point` satisfies all constraints and non-negativity up
    /// to tolerance `tol`.
    #[must_use]
    pub fn is_feasible(&self, point: &[f64], tol: f64) -> bool {
        if point.len() != self.names.len() {
            return false;
        }
        if point.iter().any(|&x| x < -tol || !x.is_finite()) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|(v, a)| a * point[v.0]).sum();
            match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_variable_assigns_sequential_ids() {
        let mut lp = LpProblem::new(Sense::Minimize);
        assert_eq!(lp.add_variable("a"), VarId(0));
        assert_eq!(lp.add_variable("b"), VarId(1));
        assert_eq!(lp.num_variables(), 2);
        assert_eq!(lp.variable_name(VarId(1)), "b");
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        lp.add_constraint(vec![(x, 1.0), (x, 2.0)], ConstraintOp::Le, 5.0, "c");
        assert_eq!(lp.constraints()[0].terms, vec![(x, 3.0)]);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_constraint(vec![(x, 0.0), (y, 1.0)], ConstraintOp::Ge, 1.0, "c");
        assert_eq!(lp.constraints()[0].terms, vec![(y, 1.0)]);
    }

    #[test]
    fn non_adjacent_duplicates_are_summed_and_rows_stay_sorted() {
        // Regression: duplicates separated by other variables (and given out
        // of order) must still be merged, cancelling pairs dropped, and the
        // stored row sorted by variable id.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        let z = lp.add_variable("z");
        lp.add_constraint(
            vec![(z, 2.0), (x, 1.0), (y, 4.0), (x, 2.5), (z, -2.0)],
            ConstraintOp::Le,
            9.0,
            "dups",
        );
        assert_eq!(lp.constraints()[0].terms, vec![(x, 3.5), (y, 4.0)]);
    }

    #[test]
    fn feasibility_check_handles_all_operators() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 3.0, "le");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0, "ge");
        lp.add_constraint(vec![(y, 2.0)], ConstraintOp::Eq, 2.0, "eq");
        assert!(lp.is_feasible(&[1.5, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[0.5, 1.0], 1e-9)); // violates ge
        assert!(!lp.is_feasible(&[1.5, 1.2], 1e-9)); // violates eq
        assert!(!lp.is_feasible(&[2.5, 1.0], 1e-9)); // violates le
        assert!(!lp.is_feasible(&[-0.1, 1.0], 1e-9)); // negative
        assert!(!lp.is_feasible(&[1.0], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_value_is_dot_product() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, -1.0);
        assert!((lp.objective_value(&[3.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraint_with_foreign_variable_panics() {
        let mut lp = LpProblem::new(Sense::Minimize);
        lp.add_constraint(vec![(VarId(3), 1.0)], ConstraintOp::Le, 1.0, "bad");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rhs_panics() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, f64::NAN, "bad");
    }
}
