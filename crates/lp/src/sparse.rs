//! Compressed-sparse-row matrices for the revised simplex solver.
//!
//! The LPs in this workspace — (LP1)/(LP2) of the paper — are overwhelmingly
//! sparse: an `x_ij` variable exists only where `p_ij > 0`, and every
//! constraint row touches a handful of variables. [`CsrMatrix`] stores exactly
//! the non-zeros in the classic three-array CSR layout (row pointers, column
//! indices, values), supports cache-friendly row iteration, and produces its
//! own transpose (which doubles as a CSC view for column gathers) by a
//! counting sort over the non-zeros.

/// An immutable sparse matrix in compressed-sparse-row form.
///
/// # Examples
///
/// ```
/// use suu_lp::sparse::CsrMatrix;
///
/// // [[1, 0, 2],
/// //  [0, 3, 0]]
/// let m = CsrMatrix::from_rows(3, &[vec![(0, 1.0), (2, 2.0)], vec![(1, 3.0)]]);
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
/// let t = m.transpose();
/// assert_eq!(t.row(2).collect::<Vec<_>>(), vec![(0, 2.0)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// `row_ptr[r]..row_ptr[r + 1]` indexes row `r`'s slice of
    /// `col_idx`/`values`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a matrix from per-row `(column, value)` term lists. Zero terms
    /// are dropped; terms within a row must not repeat a column (callers pass
    /// compacted rows, e.g. [`crate::LpProblem`] constraint terms).
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    #[must_use]
    pub fn from_rows(ncols: usize, rows: &[Vec<(usize, f64)>]) -> Self {
        let nnz = rows.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for row in rows {
            for &(c, v) in row {
                assert!(c < ncols, "column {c} out of range (ncols = {ncols})");
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            nrows: rows.len(),
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a matrix row by row without intermediate per-row allocations:
    /// the returned builder pushes `(column, value)` terms into the final
    /// CSR arrays directly. Used by the revised engine's standard-form
    /// assembly, where per-row `Vec`s were a measurable share of small-solve
    /// setup time.
    #[must_use]
    pub fn builder(ncols: usize, nrows_hint: usize, nnz_hint: usize) -> CsrBuilder {
        let mut row_ptr = Vec::with_capacity(nrows_hint + 1);
        row_ptr.push(0);
        CsrBuilder {
            ncols,
            row_ptr,
            col_idx: Vec::with_capacity(nnz_hint),
            values: Vec::with_capacity(nnz_hint),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates row `r` as `(column, value)` pairs, in stored order.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Number of non-zeros in row `r`.
    #[must_use]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Dot product of row `r` with a dense vector.
    #[must_use]
    pub fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        self.row(r).map(|(c, v)| v * x[c]).sum()
    }

    /// Gathers column `c` as `(row, value)` pairs into `out` (cleared first).
    ///
    /// This is a full O(nnz) scan; code that gathers many columns should
    /// [`transpose`](Self::transpose) once and iterate rows of the transpose
    /// instead (that is exactly what the revised solver does).
    pub fn gather_column(&self, c: usize, out: &mut Vec<(usize, f64)>) {
        out.clear();
        for r in 0..self.nrows {
            for (col, v) in self.row(r) {
                if col == c {
                    out.push((r, v));
                }
            }
        }
    }

    /// The transpose, built by a counting sort over the non-zeros — O(nnz +
    /// ncols). The transpose of a CSR matrix is its CSC form: row `c` of the
    /// result is column `c` of `self`.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for c in 0..self.ncols {
            counts[c + 1] += counts[c];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                let slot = cursor[c];
                col_idx[slot] = r;
                values[slot] = v;
                cursor[c] += 1;
            }
        }
        Self {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materialises the matrix as dense row-major storage (tests and
    /// debugging only).
    #[must_use]
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.ncols]; self.nrows];
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                dense[r][c] = v;
            }
        }
        dense
    }
}

/// Incremental [`CsrMatrix`] assembly: push terms, close rows, finish. See
/// [`CsrMatrix::builder`].
#[derive(Debug)]
pub struct CsrBuilder {
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// Appends a term to the current (still open) row. Zero values are
    /// dropped, matching [`CsrMatrix::from_rows`].
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn push(&mut self, col: usize, value: f64) {
        assert!(
            col < self.ncols,
            "column {col} out of range (ncols = {})",
            self.ncols
        );
        if value != 0.0 {
            self.col_idx.push(col);
            self.values.push(value);
        }
    }

    /// Closes the current row; subsequent pushes start the next one.
    pub fn finish_row(&mut self) {
        self.row_ptr.push(self.col_idx.len());
    }

    /// Finalises the matrix from the rows closed so far.
    #[must_use]
    pub fn build(self) -> CsrMatrix {
        CsrMatrix {
            nrows: self.row_ptr.len() - 1,
            ncols: self.ncols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // [[1, 0, 2, 0],
        //  [0, 0, 0, 0],
        //  [0, 3, 0, 4]]
        CsrMatrix::from_rows(
            4,
            &[vec![(0, 1.0), (2, 2.0)], vec![], vec![(1, 3.0), (3, 4.0)]],
        )
    }

    #[test]
    fn construction_and_row_iteration() {
        let m = example();
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (3, 4, 4));
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row_nnz(2), 2);
    }

    #[test]
    fn zero_terms_are_dropped() {
        let m = CsrMatrix::from_rows(2, &[vec![(0, 0.0), (1, 5.0)]]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(1, 5.0)]);
    }

    #[test]
    fn row_dot_matches_dense() {
        let m = example();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((m.row_dot(0, &x) - 7.0).abs() < 1e-12);
        assert!((m.row_dot(1, &x)).abs() < 1e-12);
        assert!((m.row_dot(2, &x) - 22.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_roundtrips() {
        let m = example();
        let t = m.transpose();
        assert_eq!((t.nrows(), t.ncols()), (4, 3));
        assert_eq!(t.row(2).collect::<Vec<_>>(), vec![(0, 2.0)]);
        assert_eq!(t.row(3).collect::<Vec<_>>(), vec![(2, 4.0)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn gather_column_matches_transpose_row() {
        let m = example();
        let t = m.transpose();
        let mut out = Vec::new();
        for c in 0..m.ncols() {
            m.gather_column(c, &mut out);
            assert_eq!(out, t.row(c).collect::<Vec<_>>(), "column {c}");
        }
    }

    #[test]
    fn to_dense_reconstructs_the_matrix() {
        let m = example();
        let d = m.to_dense();
        assert_eq!(d[0], vec![1.0, 0.0, 2.0, 0.0]);
        assert_eq!(d[1], vec![0.0; 4]);
        assert_eq!(d[2], vec![0.0, 3.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let _ = CsrMatrix::from_rows(2, &[vec![(2, 1.0)]]);
    }
}
