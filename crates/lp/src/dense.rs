//! Two-phase primal simplex on a dense tableau.
//!
//! The solver converts the problem to standard equality form with slack,
//! surplus and artificial variables, finds an initial basic feasible solution
//! by minimising the sum of artificials (phase 1), and then optimises the real
//! objective (phase 2). Pivoting uses Dantzig's rule with an automatic switch
//! to Bland's rule after a run of degenerate pivots, which guarantees
//! termination.
//!
//! Per pivot the dense tableau costs O(rows × cols) regardless of sparsity,
//! so it is the engine of choice only for tiny problems (where the whole
//! tableau fits in cache and there is no factorisation bookkeeping to
//! amortise) — see [`crate::engine`] for the selection policy. Beyond that it
//! serves as the differential-testing oracle for [`crate::revised`]: the two
//! engines must agree on status and objective on every input.

use crate::engine::SimplexOptions;
use crate::model::{ConstraintOp, LpProblem, Sense};
use crate::solution::{LpError, LpSolution, LpStatus};

/// Solves a linear program on the dense tableau.
///
/// # Errors
///
/// Returns [`LpError::IterationLimit`] if the pivot budget is exhausted — in
/// practice a sign of a numerically pathological input.
pub fn solve_dense(problem: &LpProblem, options: &SimplexOptions) -> Result<LpSolution, LpError> {
    let n = problem.num_variables();
    if n == 0 {
        // Degenerate but legal; shared with the revised engine.
        return Ok(crate::engine::solve_empty(problem, options));
    }

    let mut tableau = Tableau::build(problem, options);
    let limit = options
        .max_iterations
        .unwrap_or_else(|| 200 * (tableau.rows + tableau.num_total_vars) + 10_000);

    // Phase 1: minimise the sum of artificial variables.
    if tableau.num_artificials > 0 {
        tableau.install_phase1_objective();
        let status = tableau.optimize(options, limit)?;
        debug_assert!(
            status != PhaseStatus::Unbounded,
            "phase-1 objective is bounded below by zero"
        );
        if tableau.objective_value() > 1e-7 {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: vec![0.0; n],
                iterations: tableau.iterations,
                phase1_iterations: tableau.iterations,
            });
        }
        tableau.drive_out_artificials(options);
    }
    // Everything so far — including drive-out pivots — is phase-1 work.
    let phase1_iterations = tableau.iterations;

    // Phase 2: optimise the real objective.
    tableau.install_phase2_objective(problem);
    let status = tableau.optimize(options, limit)?;
    if status == PhaseStatus::Unbounded {
        return Ok(LpSolution {
            status: LpStatus::Unbounded,
            objective: match problem.sense() {
                Sense::Minimize => f64::NEG_INFINITY,
                Sense::Maximize => f64::INFINITY,
            },
            values: vec![0.0; n],
            iterations: tableau.iterations,
            phase1_iterations,
        });
    }

    let values = tableau.extract_solution(n);
    let objective = problem.objective_value(&values);
    Ok(LpSolution {
        status: LpStatus::Optimal,
        objective,
        values,
        iterations: tableau.iterations,
        phase1_iterations,
    })
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum PhaseStatus {
    Optimal,
    Unbounded,
}

/// Dense simplex tableau.
///
/// Layout: `rows` constraint rows followed by one objective row; columns are
/// all variables (structural, then slack/surplus, then artificial) followed by
/// the right-hand side.
struct Tableau {
    rows: usize,
    /// structural + slack/surplus variables (artificials excluded).
    num_real_vars: usize,
    /// total variables including artificials.
    num_total_vars: usize,
    num_artificials: usize,
    /// Row-major matrix of size `(rows + 1) × (num_total_vars + 1)`.
    a: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Total pivots performed across both phases.
    iterations: usize,
    /// Columns that are artificial (for exclusion after phase 1).
    is_artificial: Vec<bool>,
    /// Set once phase 2 starts: artificial columns may never re-enter.
    exclude_artificials: bool,
}

impl Tableau {
    fn width(&self) -> usize {
        self.num_total_vars + 1
    }

    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.width() + c]
    }

    fn build(problem: &LpProblem, _options: &SimplexOptions) -> Self {
        let n = problem.num_variables();
        let m = problem.num_constraints();

        // Count extra columns via the shared per-row classification (see
        // `engine::row_extra_columns`): one slack/surplus per inequality, one
        // artificial per row that lacks a natural basic column (a `≤` row
        // with non-negative rhs can use its slack as the initial basic
        // variable).
        let mut num_slack = 0usize;
        let mut needs_artificial = vec![false; m];
        for (i, c) in problem.constraints().iter().enumerate() {
            let (slack, artificial) = crate::engine::row_extra_columns(c);
            if slack {
                num_slack += 1;
            }
            needs_artificial[i] = artificial;
        }
        let num_artificials = needs_artificial.iter().filter(|&&x| x).count();

        let num_real_vars = n + num_slack;
        let num_total_vars = num_real_vars + num_artificials;
        let width = num_total_vars + 1;
        let mut a = vec![0.0; (m + 1) * width];
        let mut basis = vec![usize::MAX; m];
        let mut is_artificial = vec![false; num_total_vars];

        let mut slack_cursor = n;
        let mut artificial_cursor = num_real_vars;

        for (i, c) in problem.constraints().iter().enumerate() {
            // Write structural coefficients and rhs; normalise so rhs ≥ 0.
            let mut sign = 1.0;
            let mut rhs = c.rhs;
            // Determine slack sign before normalisation: Le → +1, Ge → −1.
            let slack_sign = match c.op {
                ConstraintOp::Le => 1.0,
                ConstraintOp::Ge => -1.0,
                ConstraintOp::Eq => 0.0,
            };
            if rhs < 0.0 || (rhs == 0.0 && c.op == ConstraintOp::Ge) {
                // Negative rhs rows are negated so rhs ≥ 0. A `≥` row with
                // rhs exactly 0 is negated too: the first pass classified it
                // as an effective `≤` (no artificial), which is only valid
                // once negation turns its surplus column into a +1 slack.
                sign = -1.0;
                rhs = -rhs;
            }
            for &(v, coeff) in &c.terms {
                a[i * width + v.0] = sign * coeff;
            }
            if c.op != ConstraintOp::Eq {
                a[i * width + slack_cursor] = sign * slack_sign;
                // The slack column is a valid initial basic variable iff its
                // coefficient is +1 (i.e. an effective ≤ row).
                if sign * slack_sign > 0.0 {
                    basis[i] = slack_cursor;
                }
                slack_cursor += 1;
            }
            if needs_artificial[i] {
                a[i * width + artificial_cursor] = 1.0;
                is_artificial[artificial_cursor] = true;
                basis[i] = artificial_cursor;
                artificial_cursor += 1;
            }
            a[i * width + num_total_vars] = rhs;
            debug_assert!(basis[i] != usize::MAX, "every row needs a basic column");
        }

        Self {
            rows: m,
            num_real_vars,
            num_total_vars,
            num_artificials,
            a,
            basis,
            iterations: 0,
            is_artificial,
            exclude_artificials: false,
        }
    }

    /// Installs the phase-1 objective (minimise the sum of artificials) as the
    /// reduced-cost row.
    fn install_phase1_objective(&mut self) {
        let w = self.width();
        let obj_row = self.rows;
        for c in 0..w {
            self.a[obj_row * w + c] = 0.0;
        }
        for c in 0..self.num_total_vars {
            if self.is_artificial[c] {
                self.a[obj_row * w + c] = 1.0;
            }
        }
        self.canonicalize_objective();
    }

    /// Installs the phase-2 objective (the problem's own objective converted
    /// to minimisation) as the reduced-cost row, zeroing artificial columns so
    /// they can never re-enter the basis.
    fn install_phase2_objective(&mut self, problem: &LpProblem) {
        let w = self.width();
        let obj_row = self.rows;
        for c in 0..w {
            self.a[obj_row * w + c] = 0.0;
        }
        let flip = match problem.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for (v, &coeff) in problem.objective().iter().enumerate() {
            self.a[obj_row * w + v] = flip * coeff;
        }
        // Artificial columns are frozen out of the pricing step from now on so
        // that phase 2 can never leave the feasible region of the original LP.
        self.exclude_artificials = true;
        self.canonicalize_objective();
    }

    /// Subtracts multiples of the basic rows from the objective row so that
    /// reduced costs of basic variables are zero.
    fn canonicalize_objective(&mut self) {
        let w = self.width();
        let obj_row = self.rows;
        for r in 0..self.rows {
            let b = self.basis[r];
            let factor = self.a[obj_row * w + b];
            if factor != 0.0 {
                for c in 0..w {
                    let v = self.a[r * w + c];
                    self.a[obj_row * w + c] -= factor * v;
                }
            }
        }
    }

    /// Current objective value of the phase objective (always a minimisation).
    fn objective_value(&self) -> f64 {
        -self.at(self.rows, self.num_total_vars)
    }

    /// Runs simplex pivots until optimality or unboundedness.
    fn optimize(&mut self, options: &SimplexOptions, limit: usize) -> Result<PhaseStatus, LpError> {
        let tol = options.tolerance;
        let mut stall = 0usize;
        loop {
            if self.iterations >= limit {
                return Err(LpError::IterationLimit { limit });
            }
            let use_bland = stall >= options.stall_threshold;
            let Some(entering) = self.choose_entering(tol, use_bland) else {
                return Ok(PhaseStatus::Optimal);
            };
            // Budget check only once another pivot is actually needed: a
            // solve finishing in exactly `pivot_budget` pivots is a success,
            // not an exhaustion.
            crate::engine::budget_check(self.iterations, options)?;
            let Some(leaving_row) = self.choose_leaving(entering, tol, use_bland) else {
                return Ok(PhaseStatus::Unbounded);
            };
            let degenerate = self.at(leaving_row, self.num_total_vars).abs() <= tol;
            if degenerate {
                stall += 1;
            } else {
                stall = 0;
            }
            self.pivot(leaving_row, entering);
            self.iterations += 1;
        }
    }

    /// Chooses the entering column: most negative reduced cost (Dantzig) or
    /// smallest index with negative reduced cost (Bland).
    fn choose_entering(&self, tol: f64, bland: bool) -> Option<usize> {
        let w = self.width();
        let obj = self.rows;
        let mut best: Option<(usize, f64)> = None;
        for c in 0..self.num_total_vars {
            if self.exclude_artificials && self.is_artificial[c] {
                continue;
            }
            let rc = self.a[obj * w + c];
            if rc < -tol {
                if bland {
                    return Some(c);
                }
                match best {
                    Some((_, b)) if rc >= b => {}
                    _ => best = Some((c, rc)),
                }
            }
        }
        best.map(|(c, _)| c)
    }

    /// Ratio test: chooses the leaving row. With Bland's rule ties are broken
    /// by the smallest basic-variable index.
    fn choose_leaving(&self, entering: usize, tol: f64, bland: bool) -> Option<usize> {
        let w = self.width();
        let rhs_col = self.num_total_vars;
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.rows {
            let coeff = self.a[r * w + entering];
            if coeff > tol {
                let ratio = self.a[r * w + rhs_col] / coeff;
                let better = match best {
                    None => true,
                    Some((br, bratio)) => {
                        if (ratio - bratio).abs() <= tol {
                            if bland {
                                self.basis[r] < self.basis[br]
                            } else {
                                coeff > self.a[br * w + entering]
                            }
                        } else {
                            ratio < bratio
                        }
                    }
                };
                if better {
                    best = Some((r, ratio));
                }
            }
        }
        best.map(|(r, _)| r)
    }

    /// Gauss–Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.width();
        let pivot = self.at(row, col);
        debug_assert!(pivot.abs() > 0.0, "pivot element must be non-zero");
        let inv = 1.0 / pivot;
        for c in 0..w {
            self.a[row * w + c] *= inv;
        }
        // Clean the pivot column.
        for r in 0..=self.rows {
            if r == row {
                continue;
            }
            let factor = self.a[r * w + col];
            if factor != 0.0 {
                for c in 0..w {
                    let v = self.a[row * w + c];
                    self.a[r * w + c] -= factor * v;
                }
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivots any artificial variable still in the basis out of
    /// it (possible whenever its row has a non-zero real column); rows that
    /// cannot be cleaned are redundant and are zeroed.
    fn drive_out_artificials(&mut self, options: &SimplexOptions) {
        let w = self.width();
        for r in 0..self.rows {
            if !self.is_artificial[self.basis[r]] {
                continue;
            }
            let replacement =
                (0..self.num_real_vars).find(|&c| self.a[r * w + c].abs() > options.tolerance);
            match replacement {
                Some(c) => {
                    self.pivot(r, c);
                    self.iterations += 1;
                }
                None => {
                    // Redundant row: every real coefficient is (numerically)
                    // zero and so is the rhs (phase-1 optimum was zero). Leave
                    // the artificial basic at value zero; zero the artificial
                    // column cost keeps it from re-entering elsewhere.
                    for c in 0..w {
                        if c != self.basis[r] {
                            self.a[r * w + c] = 0.0;
                        }
                    }
                }
            }
        }
    }

    /// Reads the structural-variable values out of the basis.
    fn extract_solution(&self, num_structural: usize) -> Vec<f64> {
        let w = self.width();
        let rhs_col = self.num_total_vars;
        let mut values = vec![0.0; num_structural];
        for r in 0..self.rows {
            let b = self.basis[r];
            if b < num_structural {
                values[b] = self.a[r * w + rhs_col].max(0.0);
            }
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, LpProblem, Sense, VarId};
    use crate::solution::LpStatus;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn maximization_with_le_constraints() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → optimum 36 at (2, 6).
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 5.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0, "c1");
        lp.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0, "c2");
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0, "c3");
        let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
        assert!(lp.is_feasible(&sol.values, 1e-7));
    }

    #[test]
    fn minimization_with_ge_constraints_uses_phase_one() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 3 → optimum at (10, 0) = 20.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0, "cover");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0, "xmin");
        let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 20.0);
        assert_close(sol.value(x), 10.0);
        assert!(lp.is_feasible(&sol.values, 1e-7));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x − y = 1 → x = 2, y = 1, obj 3.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 4.0, "e1");
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0, "e2");
        let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn detects_infeasibility() {
        // x ≤ 1 and x ≥ 3 cannot both hold.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0, "le");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0, "ge");
        let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // max x with x ≥ 1 only.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0, "lb");
        let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // x − y ≤ −2 with min x + y: optimum (0, 2).
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Le, -2.0, "c");
        let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.0, "c1");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0, "c2");
        lp.add_constraint(vec![(y, 1.0)], ConstraintOp::Le, 1.0, "c3");
        lp.add_constraint(vec![(x, 2.0), (y, 1.0)], ConstraintOp::Le, 2.0, "c4");
        let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn zero_variable_problem() {
        let lp = LpProblem::new(Sense::Minimize);
        let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 0.0);
    }

    #[test]
    fn equality_with_zero_rhs() {
        // min x s.t. x − y = 0, y ≥ 2 → x = 2.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 0.0, "tie");
        lp.add_constraint(vec![(y, 1.0)], ConstraintOp::Ge, 2.0, "lb");
        let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.value(x), 2.0);
    }

    #[test]
    fn lp1_shaped_problem_solves() {
        // A miniature of (LP1): 2 jobs, 2 machines, one chain {0, 1}.
        // Variables: x00 x01 x10 x11 d0 d1 t  (x_ij = machine i on job j).
        let p = [[0.9, 0.3], [0.2, 0.8]];
        let mut lp = LpProblem::new(Sense::Minimize);
        let x: Vec<Vec<VarId>> = (0..2)
            .map(|i| {
                (0..2)
                    .map(|j| lp.add_variable(format!("x{i}{j}")))
                    .collect()
            })
            .collect();
        let d: Vec<VarId> = (0..2).map(|j| lp.add_variable(format!("d{j}"))).collect();
        let t = lp.add_variable("t");
        lp.set_objective_coefficient(t, 1.0);
        // Mass constraints: Σ_i p_ij x_ij ≥ 1/2.
        for j in 0..2 {
            lp.add_constraint(
                (0..2).map(|i| (x[i][j], p[i][j])).collect(),
                ConstraintOp::Ge,
                0.5,
                format!("mass{j}"),
            );
        }
        // Machine loads: Σ_j x_ij ≤ t.
        for (i, xi) in x.iter().enumerate() {
            let mut terms: Vec<(VarId, f64)> = xi.iter().map(|&v| (v, 1.0)).collect();
            terms.push((t, -1.0));
            lp.add_constraint(terms, ConstraintOp::Le, 0.0, format!("load{i}"));
        }
        // Chain length: d0 + d1 ≤ t.
        lp.add_constraint(
            vec![(d[0], 1.0), (d[1], 1.0), (t, -1.0)],
            ConstraintOp::Le,
            0.0,
            "chain",
        );
        // x_ij ≤ d_j and d_j ≥ 1.
        for j in 0..2 {
            for xi in &x {
                lp.add_constraint(
                    vec![(xi[j], 1.0), (d[j], -1.0)],
                    ConstraintOp::Le,
                    0.0,
                    "xd",
                );
            }
            lp.add_constraint(vec![(d[j], 1.0)], ConstraintOp::Ge, 1.0, "dmin");
        }
        let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(lp.is_feasible(&sol.values, 1e-6));
        // d0 + d1 ≥ 2 forces t ≥ 2; masses are easily reached within that.
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn reports_iteration_counts() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 5.0, "c");
        let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        assert!(sol.iterations >= 1);
    }

    #[test]
    fn iteration_limit_is_enforced() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 5.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0, "c1");
        lp.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0, "c2");
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0, "c3");
        let opts = SimplexOptions {
            max_iterations: Some(1),
            ..SimplexOptions::default()
        };
        let err = solve_dense(&lp, &opts).unwrap_err();
        assert!(matches!(err, LpError::IterationLimit { limit: 1 }));
    }

    #[test]
    fn random_feasible_problems_return_feasible_optima() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..30 {
            let nv = rng.gen_range(2..6);
            let nc = rng.gen_range(1..6);
            let mut lp = LpProblem::new(Sense::Maximize);
            let vars: Vec<VarId> = (0..nv).map(|i| lp.add_variable(format!("v{i}"))).collect();
            for &v in &vars {
                lp.set_objective_coefficient(v, rng.gen_range(0.0..3.0));
            }
            for c in 0..nc {
                let terms: Vec<(VarId, f64)> =
                    vars.iter().map(|&v| (v, rng.gen_range(0.1..2.0))).collect();
                lp.add_constraint(
                    terms,
                    ConstraintOp::Le,
                    rng.gen_range(1.0..10.0),
                    format!("c{c}"),
                );
            }
            let sol = solve_dense(&lp, &SimplexOptions::default()).unwrap();
            assert_eq!(sol.status, LpStatus::Optimal);
            assert!(lp.is_feasible(&sol.values, 1e-6));
            // The origin is feasible, so the maximum is ≥ 0.
            assert!(sol.objective >= -1e-9);
        }
    }
}
