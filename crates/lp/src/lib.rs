//! A self-contained linear-programming solver.
//!
//! The chain-scheduling algorithm of §4.1 of *Approximation Algorithms for
//! Multiprocessor Scheduling under Uncertainty* solves the relaxed linear
//! program (LP1) — and its simplification (LP2) for independent jobs — and
//! then rounds the fractional solution. The LPs are small and dense (one
//! variable per machine–job pair with positive success probability, plus one
//! per job and the makespan bound `t`), so a classic dense two-phase simplex
//! method is entirely adequate and avoids an external LP dependency.
//!
//! * [`model::LpProblem`] — a tiny modelling layer: nonnegative variables,
//!   optional upper bounds, `≤ / ≥ / =` constraints, minimise or maximise.
//! * [`simplex::solve`] — two-phase primal simplex with Bland's rule, returning
//!   an optimal basic feasible solution, or reporting infeasibility /
//!   unboundedness.
//!
//! Basic feasible solutions matter beyond optimality: the proof of
//! Theorem 4.5 uses the fact that a *basic* optimal solution of (LP2) has at
//! most `n + m` non-zero variables. The simplex method returns vertex
//! solutions by construction, so that property holds for the solutions
//! produced here (and is checked by the `suu-algorithms` tests).

pub mod model;
pub mod simplex;
pub mod solution;

pub use model::{ConstraintOp, LpProblem, Sense, VarId};
pub use simplex::{solve, SimplexOptions};
pub use solution::{LpError, LpSolution, LpStatus};
