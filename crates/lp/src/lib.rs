//! A self-contained linear-programming solver with two interchangeable
//! simplex engines.
//!
//! The chain-scheduling algorithm of §4.1 of *Approximation Algorithms for
//! Multiprocessor Scheduling under Uncertainty* solves the relaxed linear
//! program (LP1) — and its simplification (LP2) for independent jobs — and
//! then rounds the fractional solution. Those LPs are *sparse*: an `x_ij`
//! variable exists only where `p_ij > 0`, and every row touches a handful of
//! variables. The crate therefore ships:
//!
//! * [`model::LpProblem`] — a tiny modelling layer: nonnegative variables,
//!   `≤ / ≥ / =` constraints stored sparse as `(VarId, f64)` rows, minimise
//!   or maximise.
//! * [`sparse::CsrMatrix`] — compressed-sparse-row storage with row
//!   iteration, column gather and transpose (the CSC view).
//! * [`dense`] — the original two-phase dense-tableau simplex: the engine for
//!   tiny problems and the differential-testing oracle.
//! * [`lu`] — sparse LU factorisation of the basis (Markowitz ordering,
//!   threshold partial pivoting) with Forrest–Tomlin row-spike updates, so a
//!   pivot costs the non-zeros it touches and "reinversion" is a periodic
//!   refactorisation triggered by update count or fill-in growth.
//! * [`revised`] — the revised simplex over CSR/CSC on top of those factors,
//!   with devex reference-framework pricing fed by a partial candidate list;
//!   per-pivot cost scales with the non-zeros instead of `rows × cols`.
//! * [`engine::solve`] — the single entry point: picks the engine from
//!   [`SimplexOptions::engine`] (`Auto` routes problems below a *measured*
//!   tableau-cell crossover to dense, everything else to revised; see
//!   [`engine::DENSE_CELL_THRESHOLD`]).
//!
//! Degenerate stretches switch either engine to Bland's anti-cycling rule
//! (dense prices with Dantzig's rule throughout), and both engines return
//! basic feasible solutions — which matters beyond optimality: the proof of
//! Theorem 4.5 uses the fact that a *basic* optimal solution of (LP2) has at
//! most `n + m` non-zero variables, and vertex solutions preserve that
//! property (checked by the `suu-algorithms` tests).

pub mod dense;
pub mod engine;
pub mod lu;
pub mod model;
pub mod revised;
pub mod solution;
pub mod sparse;

pub use dense::solve_dense;
pub use engine::{solve, Engine, SimplexOptions};
pub use lu::LuFactors;
pub use model::{ConstraintOp, LpProblem, Sense, VarId};
pub use revised::{solve_revised, solve_revised_with_basis, solve_warm, WarmOutcome, WarmStart};
pub use solution::{LpError, LpSolution, LpStatus};
pub use sparse::CsrMatrix;
