//! Two-phase *revised* simplex over CSR/CSC sparse structures.
//!
//! Where the dense tableau ([`crate::dense`]) rewrites the whole
//! `(rows + 1) × (cols + 1)` matrix on every pivot, the revised method keeps
//! the constraint matrix immutable in sparse form and maintains only a
//! factorised representation of the basis inverse:
//!
//! * the constraint matrix `A` (standard equality form, rhs ≥ 0) is stored
//!   once as CSR and once transposed (CSC) for column access;
//! * `B⁻¹` is represented in *product form* as a file of eta matrices, one
//!   per pivot: solving `B d = a_q` (FTRAN) and `yᵀB = c_Bᵀ` (BTRAN) costs
//!   time proportional to the accumulated eta non-zeros;
//! * every [`SimplexOptions::refactor_interval`] pivots the eta file is
//!   rebuilt from scratch from the current basis (reinversion with partial
//!   pivoting), bounding both numerical drift and the file length.
//!
//! Per pivot the solver does one BTRAN, one O(nnz(A)) pricing pass (Dantzig's
//! rule, with the same automatic switch to Bland's anti-cycling rule after a
//! run of degenerate pivots as the dense engine), one FTRAN and an O(rows)
//! basic-solution update — asymptotically O(nnz) instead of O(rows × cols),
//! which is the entire point for the (LP1)/(LP2) instances of the paper
//! whose density is O(log m / m).
//!
//! Phase handling mirrors the dense engine: phase 1 minimises the sum of
//! artificial variables; in phase 2 artificials are barred from entering and
//! any still basic (at value zero) are pivoted out lazily by the ratio test
//! the moment an entering column crosses their row. If the factorisation ever
//! turns singular or the solution fails a final feasibility check, the solver
//! transparently falls back to the dense oracle.

use crate::engine::SimplexOptions;
use crate::model::{ConstraintOp, LpProblem, Sense};
use crate::solution::{LpError, LpSolution, LpStatus};
use crate::sparse::CsrMatrix;

/// Solves a linear program with the revised simplex method.
///
/// # Errors
///
/// Returns [`LpError::IterationLimit`] if the pivot budget is exhausted — in
/// practice a sign of a numerically pathological input.
pub fn solve_revised(problem: &LpProblem, options: &SimplexOptions) -> Result<LpSolution, LpError> {
    if problem.num_variables() == 0 {
        return Ok(crate::engine::solve_empty(problem, options));
    }
    match try_solve(problem, options) {
        Ok(solution) => Ok(solution),
        Err(Trouble::IterationLimit { limit }) => Err(LpError::IterationLimit { limit }),
        // A caller budget running out is a *verdict*, not numerical trouble:
        // falling back to the dense oracle would burn the very work the
        // budget was meant to bound, so it propagates directly.
        Err(Trouble::Budget(err)) => Err(err),
        // Singular refactorisation or a failed final check: hand the problem
        // to the dense oracle rather than returning a wrong answer. The
        // pivots burnt before the fallback still happened — account for them
        // so `iterations` (surfaced as `lp_pivots` by the service) reports
        // the true work, not just the oracle's share; the same goes for any
        // remaining pivot budget, which the oracle inherits *minus* what the
        // revised attempt already spent. Phase attribution restarts with the
        // oracle: the abandoned pivots count only towards the total.
        Err(Trouble::Numerical { spent }) => {
            let mut oracle_options = options.clone();
            if let Some(budget) = oracle_options.pivot_budget {
                oracle_options.pivot_budget = Some(budget.saturating_sub(spent));
            }
            match crate::dense::solve_dense(problem, &oracle_options) {
                Ok(mut solution) => {
                    solution.iterations += spent;
                    Ok(solution)
                }
                Err(LpError::BudgetExhausted { pivots, wall_clock }) => {
                    Err(LpError::BudgetExhausted {
                        pivots: pivots + spent,
                        wall_clock,
                    })
                }
                Err(err) => Err(err),
            }
        }
    }
}

/// Internal failure modes of the revised iteration.
enum Trouble {
    IterationLimit {
        limit: usize,
    },
    /// A caller-supplied pivot budget or deadline ran out (see
    /// [`crate::SimplexOptions::pivot_budget`]).
    Budget(LpError),
    /// Numerical breakdown after `spent` pivots (singular refactorisation or
    /// a failed final feasibility check).
    Numerical {
        spent: usize,
    },
}

fn try_solve(problem: &LpProblem, options: &SimplexOptions) -> Result<LpSolution, Trouble> {
    let n = problem.num_variables();
    let mut solver = Revised::build(problem, options);
    let limit = options
        .max_iterations
        .unwrap_or_else(|| 200 * (solver.nrows + solver.ncols) + 10_000);

    // Phase 1: minimise the sum of artificial variables.
    if solver.num_artificials > 0 {
        solver.install_phase1_costs();
        let status = solver.optimize(options, limit)?;
        debug_assert!(
            status != PhaseStatus::Unbounded,
            "phase-1 objective is bounded below by zero"
        );
        if solver.objective_value() > 1e-7 {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: vec![0.0; n],
                iterations: solver.iterations,
                phase1_iterations: solver.iterations,
            });
        }
    }
    let phase1_iterations = solver.iterations;

    // Phase 2: optimise the real objective; artificials may never re-enter
    // and any still basic are held at zero by the guarded ratio test.
    solver.install_phase2_costs(problem);
    let status = solver.optimize(options, limit)?;
    if status == PhaseStatus::Unbounded {
        return Ok(LpSolution {
            status: LpStatus::Unbounded,
            objective: match problem.sense() {
                Sense::Minimize => f64::NEG_INFINITY,
                Sense::Maximize => f64::INFINITY,
            },
            values: vec![0.0; n],
            iterations: solver.iterations,
            phase1_iterations,
        });
    }

    let values = solver.extract_solution(n);
    // Cheap safety net: a vertex that violates the original constraints means
    // the factorisation drifted; let the caller fall back to dense.
    if !problem.is_feasible(&values, 1e-6) {
        return Err(Trouble::Numerical {
            spent: solver.iterations,
        });
    }
    let objective = problem.objective_value(&values);
    Ok(LpSolution {
        status: LpStatus::Optimal,
        objective,
        values,
        iterations: solver.iterations,
        phase1_iterations,
    })
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum PhaseStatus {
    Optimal,
    Unbounded,
}

/// One product-form update: `B_new = B_old · E` where `E` is the identity
/// with column `pivot_row` replaced by the FTRANed entering column `d`.
/// Applying `E⁻¹` to a vector needs only `d`'s non-zeros.
struct Eta {
    pivot_row: usize,
    pivot_val: f64,
    /// Off-pivot non-zeros of `d` as `(row, value)`.
    entries: Vec<(usize, f64)>,
}

/// Revised-simplex state over the standard-form problem.
struct Revised {
    nrows: usize,
    /// Total columns including artificials.
    ncols: usize,
    num_artificials: usize,
    /// Column-access form of `A`: row `c` of this matrix is column `c`.
    cols: CsrMatrix,
    /// Normalised right-hand side (entrywise ≥ 0).
    b: Vec<f64>,
    is_artificial: Vec<bool>,
    /// Basic column of each row.
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Current phase costs per column.
    cost: Vec<f64>,
    /// Eta file representing `B⁻¹` (apply in order for FTRAN).
    etas: Vec<Eta>,
    etas_since_refactor: usize,
    /// Current basic solution `B⁻¹ b`, indexed by row.
    xb: Vec<f64>,
    /// Set once phase 2 starts: artificials are barred from entering and
    /// pivoted out of the basis whenever the ratio test crosses their row.
    guard_artificials: bool,
    iterations: usize,
}

impl Revised {
    fn build(problem: &LpProblem, _options: &SimplexOptions) -> Self {
        let n = problem.num_variables();
        let m = problem.num_constraints();

        // Shared classification (see `engine::row_extra_columns`): an
        // effective `≤` row (after normalising rhs ≥ 0) starts with its slack
        // basic, everything else gets an artificial.
        let mut num_slack = 0usize;
        let mut needs_artificial = vec![false; m];
        for (i, c) in problem.constraints().iter().enumerate() {
            let (slack, artificial) = crate::engine::row_extra_columns(c);
            if slack {
                num_slack += 1;
            }
            needs_artificial[i] = artificial;
        }
        let num_artificials = needs_artificial.iter().filter(|&&x| x).count();
        let num_real = n + num_slack;
        let ncols = num_real + num_artificials;

        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut b = Vec::with_capacity(m);
        let mut basis = vec![usize::MAX; m];
        let mut is_artificial = vec![false; ncols];
        let mut slack_cursor = n;
        let mut artificial_cursor = num_real;

        for (i, c) in problem.constraints().iter().enumerate() {
            let slack_sign = match c.op {
                ConstraintOp::Le => 1.0,
                ConstraintOp::Ge => -1.0,
                ConstraintOp::Eq => 0.0,
            };
            let mut sign = 1.0;
            let mut rhs = c.rhs;
            if rhs < 0.0 || (rhs == 0.0 && c.op == ConstraintOp::Ge) {
                sign = -1.0;
                rhs = -rhs;
            }
            let mut row: Vec<(usize, f64)> =
                c.terms.iter().map(|&(v, a)| (v.0, sign * a)).collect();
            if c.op != ConstraintOp::Eq {
                row.push((slack_cursor, sign * slack_sign));
                if sign * slack_sign > 0.0 {
                    basis[i] = slack_cursor;
                }
                slack_cursor += 1;
            }
            if needs_artificial[i] {
                row.push((artificial_cursor, 1.0));
                is_artificial[artificial_cursor] = true;
                basis[i] = artificial_cursor;
                artificial_cursor += 1;
            }
            rows.push(row);
            b.push(rhs);
        }

        let matrix = CsrMatrix::from_rows(ncols, &rows);
        let cols = matrix.transpose();
        let mut in_basis = vec![false; ncols];
        for &v in &basis {
            in_basis[v] = true;
        }
        // The initial basis is the identity (unit slack/artificial columns),
        // so B⁻¹ = I: the eta file starts empty and xb = b.
        Self {
            nrows: m,
            ncols,
            num_artificials,
            cols,
            xb: b.clone(),
            b,
            is_artificial,
            basis,
            in_basis,
            cost: vec![0.0; ncols],
            etas: Vec::new(),
            etas_since_refactor: 0,
            guard_artificials: false,
            iterations: 0,
        }
    }

    fn install_phase1_costs(&mut self) {
        for c in 0..self.ncols {
            self.cost[c] = if self.is_artificial[c] { 1.0 } else { 0.0 };
        }
    }

    fn install_phase2_costs(&mut self, problem: &LpProblem) {
        let flip = match problem.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for (v, &coeff) in problem.objective().iter().enumerate() {
            self.cost[v] = flip * coeff;
        }
        self.guard_artificials = true;
    }

    /// Current phase objective `c_B · x_B` (always a minimisation).
    fn objective_value(&self) -> f64 {
        self.basis
            .iter()
            .zip(self.xb.iter())
            .map(|(&v, &x)| self.cost[v] * x)
            .sum()
    }

    /// FTRAN: overwrites `v` with `B⁻¹ v` by applying the eta file in order.
    fn ftran(&self, v: &mut [f64]) {
        for eta in &self.etas {
            let t = v[eta.pivot_row];
            if t == 0.0 {
                continue;
            }
            let t = t / eta.pivot_val;
            for &(i, d) in &eta.entries {
                v[i] -= d * t;
            }
            v[eta.pivot_row] = t;
        }
    }

    /// BTRAN: overwrites `y` with `(B⁻¹)ᵀ y` by applying the transposed eta
    /// file in reverse order.
    fn btran(&self, y: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut s = 0.0;
            for &(i, d) in &eta.entries {
                s += d * y[i];
            }
            y[eta.pivot_row] = (y[eta.pivot_row] - s) / eta.pivot_val;
        }
    }

    /// Scatters column `c` of `A` into the dense scratch vector.
    fn scatter_column(&self, c: usize, out: &mut [f64]) {
        out.iter_mut().for_each(|x| *x = 0.0);
        for (r, v) in self.cols.row(c) {
            out[r] = v;
        }
    }

    /// Runs simplex pivots until optimality or unboundedness.
    fn optimize(&mut self, options: &SimplexOptions, limit: usize) -> Result<PhaseStatus, Trouble> {
        let tol = options.tolerance;
        let mut stall = 0usize;
        let mut y = vec![0.0f64; self.nrows];
        let mut d = vec![0.0f64; self.nrows];
        loop {
            if self.iterations >= limit {
                return Err(Trouble::IterationLimit { limit });
            }
            let use_bland = stall >= options.stall_threshold;

            // Simplex multipliers y = (B⁻¹)ᵀ c_B, then price columns.
            for r in 0..self.nrows {
                y[r] = self.cost[self.basis[r]];
            }
            self.btran(&mut y);
            let Some(entering) = self.choose_entering(&y, tol, use_bland) else {
                return Ok(PhaseStatus::Optimal);
            };
            // Budget check only once another pivot is actually needed: a
            // solve finishing in exactly `pivot_budget` pivots is a success,
            // not an exhaustion.
            crate::engine::budget_check(self.iterations, options).map_err(Trouble::Budget)?;

            // Entering direction d = B⁻¹ a_q.
            self.scatter_column(entering, &mut d);
            self.ftran(&mut d);
            let Some(leaving_row) = self.choose_leaving(&d, tol, use_bland) else {
                return Ok(PhaseStatus::Unbounded);
            };

            let degenerate = self.xb[leaving_row].abs() <= tol;
            if degenerate {
                stall += 1;
            } else {
                stall = 0;
            }
            self.pivot(leaving_row, entering, &d)?;
            self.iterations += 1;

            if self.etas_since_refactor >= options.refactor_interval {
                self.refactorize()?;
            }
        }
    }

    /// Entering column: most negative reduced cost (Dantzig) or smallest
    /// index with negative reduced cost (Bland). Reduced costs are computed
    /// against the simplex multipliers `y`, one sparse dot per column —
    /// O(nnz(A)) per call in total.
    fn choose_entering(&self, y: &[f64], tol: f64, bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for c in 0..self.ncols {
            if self.in_basis[c] || (self.guard_artificials && self.is_artificial[c]) {
                continue;
            }
            let mut rc = self.cost[c];
            for (r, a) in self.cols.row(c) {
                rc -= a * y[r];
            }
            if rc < -tol {
                if bland {
                    return Some(c);
                }
                match best {
                    Some((_, b)) if rc >= b => {}
                    _ => best = Some((c, rc)),
                }
            }
        }
        best.map(|(c, _)| c)
    }

    /// Ratio test on the FTRANed entering column `d`. Rows with `d_r > tol`
    /// block at `x_r / d_r`; in phase 2, rows whose basic variable is an
    /// artificial (held at zero) also block at ratio 0 when `d_r < −tol`,
    /// which pivots the artificial out instead of letting it go positive.
    /// Ties are broken like the dense engine: by larger pivot magnitude under
    /// Dantzig, by smaller basic-variable index under Bland.
    fn choose_leaving(&self, d: &[f64], tol: f64, bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.nrows {
            let coeff = d[r];
            let blocking = coeff > tol
                || (self.guard_artificials && self.is_artificial[self.basis[r]] && coeff < -tol);
            if !blocking {
                continue;
            }
            let ratio = self.xb[r].max(0.0) / coeff.abs();
            let better = match best {
                None => true,
                Some((br, bratio)) => {
                    if (ratio - bratio).abs() <= tol {
                        if bland {
                            self.basis[r] < self.basis[br]
                        } else {
                            coeff.abs() > d[br].abs()
                        }
                    } else {
                        ratio < bratio
                    }
                }
            };
            if better {
                best = Some((r, ratio));
            }
        }
        best.map(|(r, _)| r)
    }

    /// Applies the basis change: records the eta, updates the basic solution
    /// and swaps the basis books.
    fn pivot(&mut self, row: usize, entering: usize, d: &[f64]) -> Result<(), Trouble> {
        let pivot_val = d[row];
        if pivot_val.abs() < 1e-12 || !pivot_val.is_finite() {
            return Err(Trouble::Numerical {
                spent: self.iterations,
            });
        }
        let theta = self.xb[row].max(0.0) / pivot_val;
        let mut entries = Vec::new();
        for (r, &dr) in d.iter().enumerate() {
            if r != row && dr != 0.0 {
                entries.push((r, dr));
                self.xb[r] -= theta * dr;
            }
        }
        self.xb[row] = theta;
        self.etas.push(Eta {
            pivot_row: row,
            pivot_val,
            entries,
        });
        self.etas_since_refactor += 1;
        self.in_basis[self.basis[row]] = false;
        self.in_basis[entering] = true;
        self.basis[row] = entering;
        Ok(())
    }

    /// Rebuilds the eta file from scratch for the current basis (product-form
    /// reinversion with partial pivoting over the remaining rows), then
    /// recomputes `x_B = B⁻¹ b`. Rows may end up re-associated with different
    /// basic variables — the basis is a set; only the row↔variable book
    /// needs to stay consistent.
    fn refactorize(&mut self) -> Result<(), Trouble> {
        let vars = self.basis.clone();
        self.etas.clear();
        let mut new_basis = vec![usize::MAX; self.nrows];
        let mut used = vec![false; self.nrows];
        let mut d = vec![0.0f64; self.nrows];
        for var in vars {
            self.scatter_column(var, &mut d);
            self.ftran(&mut d);
            let mut pivot: Option<(usize, f64)> = None;
            for (r, &dr) in d.iter().enumerate() {
                if !used[r] && pivot.is_none_or(|(_, best)| dr.abs() > best.abs()) {
                    pivot = Some((r, dr));
                }
            }
            let Some((r, pivot_val)) = pivot else {
                return Err(Trouble::Numerical {
                    spent: self.iterations,
                });
            };
            if pivot_val.abs() < 1e-11 || !pivot_val.is_finite() {
                return Err(Trouble::Numerical {
                    spent: self.iterations,
                });
            }
            let entries: Vec<(usize, f64)> = d
                .iter()
                .enumerate()
                .filter(|&(i, &v)| i != r && v != 0.0)
                .map(|(i, &v)| (i, v))
                .collect();
            self.etas.push(Eta {
                pivot_row: r,
                pivot_val,
                entries,
            });
            used[r] = true;
            new_basis[r] = var;
        }
        self.basis = new_basis;
        self.xb.copy_from_slice(&self.b);
        let mut xb = std::mem::take(&mut self.xb);
        self.ftran(&mut xb);
        self.xb = xb;
        self.etas_since_refactor = 0;
        Ok(())
    }

    /// Reads the structural-variable values out of the basis.
    fn extract_solution(&self, num_structural: usize) -> Vec<f64> {
        let mut values = vec![0.0; num_structural];
        for (r, &v) in self.basis.iter().enumerate() {
            if v < num_structural {
                values[v] = self.xb[r].max(0.0);
            }
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, LpProblem, Sense, VarId};
    use crate::solution::LpStatus;

    fn opts() -> SimplexOptions {
        SimplexOptions::default()
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn maximization_with_le_constraints() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 5.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0, "c1");
        lp.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0, "c2");
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0, "c3");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn minimization_with_ge_constraints_uses_phase_one() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0, "cover");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0, "xmin");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 20.0);
        assert!(lp.is_feasible(&sol.values, 1e-7));
    }

    #[test]
    fn equality_constraints() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 4.0, "e1");
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0, "e2");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0, "le");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0, "ge");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0, "lb");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Le, -2.0, "c");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.0, "c1");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0, "c2");
        lp.add_constraint(vec![(y, 1.0)], ConstraintOp::Le, 1.0, "c3");
        lp.add_constraint(vec![(x, 2.0), (y, 1.0)], ConstraintOp::Le, 2.0, "c4");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn frequent_refactorization_preserves_the_answer() {
        // Force a refactorisation every other pivot; the optimum must not
        // move.
        let mut lp = LpProblem::new(Sense::Maximize);
        let vars: Vec<VarId> = (0..12).map(|i| lp.add_variable(format!("v{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(v, 1.0 + i as f64 / 3.0);
        }
        for (i, &v) in vars.iter().enumerate() {
            lp.add_constraint(
                vec![(v, 1.0)],
                ConstraintOp::Le,
                1.0 + i as f64,
                format!("c{i}"),
            );
        }
        lp.add_constraint(
            vars.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Le,
            30.0,
            "budget",
        );
        let baseline = solve_revised(&lp, &opts()).unwrap();
        let churned = solve_revised(
            &lp,
            &SimplexOptions {
                refactor_interval: 2,
                ..opts()
            },
        )
        .unwrap();
        assert_eq!(baseline.status, LpStatus::Optimal);
        assert_close(baseline.objective, churned.objective);
    }

    #[test]
    fn artificials_locked_in_the_basis_stay_at_zero() {
        // The equality row is redundant with the ≥ row at the optimum; an
        // artificial can linger in the basis at value 0 and must not distort
        // the solution.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 0.0, "tie");
        lp.add_constraint(vec![(y, 1.0)], ConstraintOp::Ge, 2.0, "lb");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.value(x), 2.0);
    }

    #[test]
    fn iteration_limit_is_enforced() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 5.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0, "c1");
        lp.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0, "c2");
        let err = solve_revised(
            &lp,
            &SimplexOptions {
                max_iterations: Some(1),
                ..opts()
            },
        )
        .unwrap_err();
        assert!(matches!(err, LpError::IterationLimit { limit: 1 }));
    }

    #[test]
    fn zero_variable_problem() {
        let lp = LpProblem::new(Sense::Minimize);
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
    }
}
