//! Two-phase *revised* simplex over CSR/CSC sparse structures.
//!
//! Where the dense tableau ([`crate::dense`]) rewrites the whole
//! `(rows + 1) × (cols + 1)` matrix on every pivot, the revised method keeps
//! the constraint matrix immutable in sparse form and maintains only a
//! factorised representation of the basis:
//!
//! * the constraint matrix `A` (standard equality form, rhs ≥ 0) is stored
//!   once as CSR and once transposed (CSC) for column access;
//! * the basis is held as a sparse LU factorisation ([`crate::lu`]):
//!   Markowitz-ordered elimination with threshold partial pivoting, updated
//!   in place after every pivot by a Forrest–Tomlin row spike so a basis
//!   change costs O(non-zeros touched) instead of a fresh factorisation;
//! * refactorisation happens when [`SimplexOptions::refactor_interval`]
//!   updates have accumulated **or** fill-in outgrows the fresh factors
//!   (see [`LuFactors::needs_refactor`]), whichever comes first — and as a
//!   recovery step whenever an update goes numerically bad.
//!
//! Pricing is phase-split. Phase 1 uses plain Dantzig over a full sweep of
//! the maintained reduced costs (a branchless vectorised min-reduction;
//! artificial columns are dropped from pricing for good once they leave the
//! basis). Phase 2 uses **devex** (Forrest & Goldfarb's reference-framework
//! weights) over a *partial candidate list*: per pivot the solver re-prices
//! only the bounded list of currently attractive columns plus one rotating
//! window of fresh columns, falling back to a full sweep only when both run
//! dry — and a dry full sweep is exactly the optimality proof. After a run
//! of degenerate pivots the solver switches to Bland's anti-cycling rule
//! (full lowest-index scan), exactly like the dense engine, and switches
//! back once progress resumes.
//!
//! Per pivot the solver therefore does one FTRAN (entering direction), one
//! BTRAN (the devex reference row, which doubles as the incremental
//! reduced-cost update row), a bounded re-price and an O(rows)
//! basic-solution update — per-pivot cost tracks the factor non-zeros and
//! the touched columns rather than `rows × cols`, which is the entire point
//! for the (LP1)/(LP2) instances of the paper whose density is
//! O(log m / m).
//!
//! Phase handling mirrors the dense engine: phase 1 minimises the sum of
//! artificial variables; in phase 2 artificials are barred from entering and
//! any still basic (at value zero) are pivoted out lazily by the ratio test
//! the moment an entering column crosses their row. If the factorisation ever
//! turns singular or the solution fails a final feasibility check, the solver
//! transparently falls back to the dense oracle.
//!
//! The pivot loop allocates no per-pivot temporaries: all work vectors
//! (multipliers, direction, devex reference row, candidate list) and the LU
//! scratch live in the solver and are reused across pivots. Its only heap
//! traffic is amortised growth of those long-lived buffers toward their fill
//! high-water marks, which decays as capacities converge — asserted, with a
//! bright line of under one allocation per pivot in steady state, by the
//! `alloc_discipline` integration test.

use crate::engine::SimplexOptions;
use crate::lu::LuFactors;
use crate::model::{ConstraintOp, LpProblem, Sense};
use crate::solution::{LpError, LpSolution, LpStatus};

use crate::sparse::CsrMatrix;

/// Devex weights above this trigger a reference-framework reset (all weights
/// back to 1): past this point the weights are dominated by accumulated
/// round-off rather than useful steepest-edge information.
const DEVEX_RESET: f64 = 1e7;

/// Pivots between devex reference-framework resets. Textbook devex keeps one
/// framework until the weights overflow [`DEVEX_RESET`]; on the paper's
/// (LP1)/(LP2) family the monotone weight growth was measured to *inflate*
/// pivot counts (stale reference information outweighs the steepest-edge
/// signal), while a short-lived framework tracks the active part of the
/// basis. Eight pivots per framework was the empirical sweet spot across the
/// scaling sweep; weight-overflow resets stay in as a safety net.
const DEVEX_FRAME_LIMIT: usize = 8;

/// Entries of `ρ = B⁻ᵀ e_t` at or below this magnitude are skipped by the
/// pivot-row push: their `α` contributions are orders of magnitude below the
/// pricing tolerance, but walking their constraint rows is not free.
const RHO_DROP_TOL: f64 = 1e-12;

/// `α` entries at or below this magnitude skip the devex weight and
/// reduced-cost updates (the full recompute at refactorisation washes out the
/// resulting sub-tolerance drift).
const ALPHA_DROP_TOL: f64 = 1e-12;

/// Capacity of the devex partial-pricing candidate list: small enough that
/// re-pricing the list is cheap against one FTRAN, large enough that the
/// cyclic refill sweep is rare.
fn price_list_cap(ncols: usize) -> usize {
    (ncols / 8).clamp(8, 64)
}

/// Minimum pivot magnitude for a column to seat in the triangular crash
/// basis; positive so the crashed variable's value `rhs / a` stays
/// nonnegative.
const CRASH_PIVOT_TOL: f64 = 1e-7;

/// A crash pivot must be at least this fraction of the largest entry in its
/// column, bounding the multipliers the first factorisation derives from it.
const CRASH_STABILITY_RATIO: f64 = 0.01;

/// Fraction of the columns the rotating phase-2 pricing window covers per
/// pivot (`ncols / 4`): every column is revisited within four pivots. Larger
/// divisors save pricing time but were measured to inflate pivot counts on
/// the scheduling-relaxation family; smaller ones price columns the candidate
/// list already tracks.
const PRICE_WINDOW_DIVISOR: usize = 4;

/// Solves a linear program with the revised simplex method.
///
/// # Errors
///
/// Returns [`LpError::IterationLimit`] if the pivot budget is exhausted — in
/// practice a sign of a numerically pathological input.
pub fn solve_revised(problem: &LpProblem, options: &SimplexOptions) -> Result<LpSolution, LpError> {
    if problem.num_variables() == 0 {
        return Ok(crate::engine::solve_empty(problem, options));
    }
    match try_solve(problem, options) {
        Ok(solution) => Ok(solution),
        Err(Trouble::IterationLimit { limit }) => Err(LpError::IterationLimit { limit }),
        // A caller budget running out is a *verdict*, not numerical trouble:
        // falling back to the dense oracle would burn the very work the
        // budget was meant to bound, so it propagates directly.
        Err(Trouble::Budget(err)) => Err(err),
        Err(Trouble::Numerical { spent }) => oracle_fallback(problem, options, spent),
    }
}

/// Singular refactorisation or a failed final check: hand the problem to the
/// dense oracle rather than returning a wrong answer. The pivots burnt before
/// the fallback still happened — account for them so `iterations` (surfaced
/// as `lp_pivots` by the service) reports the true work, not just the
/// oracle's share; the same goes for any remaining pivot budget, which the
/// oracle inherits *minus* what the revised attempt already spent. Phase
/// attribution restarts with the oracle: the abandoned pivots count only
/// towards the total.
fn oracle_fallback(
    problem: &LpProblem,
    options: &SimplexOptions,
    spent: usize,
) -> Result<LpSolution, LpError> {
    let mut oracle_options = options.clone();
    if let Some(budget) = oracle_options.pivot_budget {
        oracle_options.pivot_budget = Some(budget.saturating_sub(spent));
    }
    match crate::dense::solve_dense(problem, &oracle_options) {
        Ok(mut solution) => {
            solution.iterations += spent;
            Ok(solution)
        }
        Err(LpError::BudgetExhausted { pivots, wall_clock }) => Err(LpError::BudgetExhausted {
            pivots: pivots + spent,
            wall_clock,
        }),
        Err(err) => Err(err),
    }
}

/// A warm-start hint for [`solve_warm`]: the final basis of a previous solve
/// of a *structurally identical* problem (same variable count and standard-
/// form column layout), optionally with that solve's LU factors.
///
/// A warm start is a **hint, never a contract**: any nonsingular basis of the
/// new problem is a legitimate starting point, so correctness does not depend
/// on the donor problem at all. [`solve_warm`] validates the basis against
/// the *new* problem (length, no artificials, no duplicates, nonsingular) and
/// falls back to a cold two-phase solve when it does not fit.
#[derive(Debug, Default)]
pub struct WarmStart {
    /// Standard-form basis column indices (structural `0..n`, then slacks),
    /// one per constraint row.
    pub basis: Vec<usize>,
    /// The donor solve's LU factors. Adopted only after a residual check
    /// proves they still invert the new problem's basis matrix (true for
    /// cost- and rhs-only mutations, which leave the matrix untouched);
    /// otherwise the basis is refactorised from scratch.
    pub factors: Option<LuFactors>,
}

/// Result of a basis-capturing solve ([`solve_warm`] /
/// [`solve_revised_with_basis`]).
#[derive(Debug)]
pub struct WarmOutcome {
    /// The solution, exactly as [`solve_revised`] would report it.
    pub solution: LpSolution,
    /// Final basis snapshot for warm-starting a later solve; empty when the
    /// solve did not end at an optimal artificial-free basis (non-optimal
    /// status, or the dense-oracle fallback ran).
    pub basis: Vec<usize>,
    /// LU factors of that final basis, when available.
    pub factors: Option<LuFactors>,
    /// `true` when the supplied warm basis was actually used (the warm primal
    /// or dual path produced the solution); `false` on every cold path.
    pub warm: bool,
}

impl WarmOutcome {
    /// Converts this outcome into the warm-start hint for a follow-up solve,
    /// or `None` when no reusable basis was captured.
    #[must_use]
    pub fn into_warm_start(self) -> Option<WarmStart> {
        if self.basis.is_empty() {
            return None;
        }
        Some(WarmStart {
            basis: self.basis,
            factors: self.factors,
        })
    }
}

/// [`solve_revised`] plus a final-basis snapshot, for callers that feed a
/// warm-start index. Identical pivot-for-pivot to [`solve_revised`].
///
/// # Errors
///
/// Same contract as [`solve_revised`].
pub fn solve_revised_with_basis(
    problem: &LpProblem,
    options: &SimplexOptions,
) -> Result<WarmOutcome, LpError> {
    if problem.num_variables() == 0 {
        return Ok(WarmOutcome {
            solution: crate::engine::solve_empty(problem, options),
            basis: Vec::new(),
            factors: None,
            warm: false,
        });
    }
    finish_outcome(try_solve_capture(problem, options), problem, options)
}

/// Solves a linear program starting from a warm basis.
///
/// The warm basis is validated against the new problem and installed; then:
///
/// * **primal feasible** (`x_B ≥ 0`) — straight to primal phase 2 (the common
///   case after a cost-only change);
/// * **dual feasible** (all reduced costs ≥ 0) — **dual simplex** pivots
///   until primal feasibility, then primal cleanup (the common case after a
///   rhs/bound change: the parent's optimal basis is primal-infeasible but
///   still dual-feasible);
/// * **neither** — cold two-phase solve from the crash basis, exactly as
///   [`solve_revised`] would run it.
///
/// Every path runs under the same pivot/deadline budgets and keeps the
/// pivots-as-clock determinism contract: the same problem plus the same warm
/// start replays bit-identically.
///
/// # Errors
///
/// Same contract as [`solve_revised`].
pub fn solve_warm(
    problem: &LpProblem,
    warm: WarmStart,
    options: &SimplexOptions,
) -> Result<WarmOutcome, LpError> {
    if problem.num_variables() == 0 {
        return Ok(WarmOutcome {
            solution: crate::engine::solve_empty(problem, options),
            basis: Vec::new(),
            factors: None,
            warm: false,
        });
    }
    finish_outcome(try_solve_warm(problem, warm, options), problem, options)
}

/// Maps internal [`Trouble`] to the public error surface, routing numerical
/// breakdown through the dense oracle (which yields no basis snapshot).
fn finish_outcome(
    result: Result<WarmOutcome, Trouble>,
    problem: &LpProblem,
    options: &SimplexOptions,
) -> Result<WarmOutcome, LpError> {
    match result {
        Ok(outcome) => Ok(outcome),
        Err(Trouble::IterationLimit { limit }) => Err(LpError::IterationLimit { limit }),
        Err(Trouble::Budget(err)) => Err(err),
        Err(Trouble::Numerical { spent }) => {
            oracle_fallback(problem, options, spent).map(|solution| WarmOutcome {
                solution,
                basis: Vec::new(),
                factors: None,
                warm: false,
            })
        }
    }
}

/// Internal failure modes of the revised iteration.
enum Trouble {
    IterationLimit {
        limit: usize,
    },
    /// A caller-supplied pivot budget or deadline ran out (see
    /// [`crate::SimplexOptions::pivot_budget`]).
    Budget(LpError),
    /// Numerical breakdown after `spent` pivots (singular refactorisation or
    /// a failed final feasibility check).
    Numerical {
        spent: usize,
    },
}

fn try_solve(problem: &LpProblem, options: &SimplexOptions) -> Result<LpSolution, Trouble> {
    let mut solver = Revised::build(problem, options);
    solver.refactorize()?;
    run_two_phase(&mut solver, problem, options)
}

/// Cold solve that also snapshots the final basis for warm-start reuse.
/// Pivot-for-pivot identical to [`try_solve`]; only the packaging differs.
fn try_solve_capture(
    problem: &LpProblem,
    options: &SimplexOptions,
) -> Result<WarmOutcome, Trouble> {
    let mut solver = Revised::build(problem, options);
    solver.refactorize()?;
    let solution = run_two_phase(&mut solver, problem, options)?;
    Ok(capture_outcome(solver, solution, false))
}

/// Packages a finished solve, snapshotting the basis (and moving the LU
/// factors out of the solver) when — and only when — it ended at an optimal,
/// artificial-free vertex. Any other terminal state has nothing worth
/// inheriting.
fn capture_outcome(mut solver: Revised, solution: LpSolution, warm: bool) -> WarmOutcome {
    let reusable =
        solution.status == LpStatus::Optimal && solver.basis.iter().all(|&c| c < solver.num_real);
    if !reusable {
        return WarmOutcome {
            solution,
            basis: Vec::new(),
            factors: None,
            warm,
        };
    }
    let basis = solver.basis.clone();
    let factors = std::mem::replace(&mut solver.factors, LuFactors::new(0));
    WarmOutcome {
        solution,
        basis,
        factors: Some(factors),
        warm,
    }
}

/// Warm-started solve: install the donor basis, then dispatch on what it
/// still is for the mutated problem — primal feasible (straight to phase 2),
/// dual feasible (dual simplex, then primal cleanup), or neither (cold
/// two-phase, exactly as [`try_solve_capture`]).
fn try_solve_warm(
    problem: &LpProblem,
    warm: WarmStart,
    options: &SimplexOptions,
) -> Result<WarmOutcome, Trouble> {
    let n = problem.num_variables();
    let mut solver = Revised::build(problem, options);
    if !solver.try_install_warm(warm) {
        return try_solve_capture(problem, options);
    }
    let limit = options
        .max_iterations
        .unwrap_or_else(|| 200 * (solver.nrows + solver.ncols) + 10_000);
    let tol = options.tolerance;

    // The warm basis is artificial-free by construction, so phase 1 never
    // runs on this path: the real objective goes in immediately and the
    // reduced costs decide between the primal and dual loops.
    solver.install_phase2_costs(problem);
    let primal_feasible = solver.xb.iter().all(|&x| x >= -tol);
    if !primal_feasible {
        let dual_feasible =
            (0..solver.num_real).all(|c| !solver.priceable(c) || solver.rc[c] >= -tol);
        if !dual_feasible {
            // The donor vertex is neither primal- nor dual-feasible here:
            // nothing to inherit, run the cold two-phase from the crash basis.
            return try_solve_capture(problem, options);
        }
        match solver.dual_optimize(options, limit)? {
            DualOutcome::PrimalFeasible => {}
            DualOutcome::Infeasible => {
                return Ok(WarmOutcome {
                    solution: LpSolution {
                        status: LpStatus::Infeasible,
                        objective: 0.0,
                        values: vec![0.0; n],
                        iterations: solver.iterations,
                        phase1_iterations: 0,
                    },
                    basis: Vec::new(),
                    factors: None,
                    warm: true,
                });
            }
        }
    }

    let status = solver.optimize(options, limit)?;
    if status == PhaseStatus::Unbounded {
        return Ok(WarmOutcome {
            solution: LpSolution {
                status: LpStatus::Unbounded,
                objective: match problem.sense() {
                    Sense::Minimize => f64::NEG_INFINITY,
                    Sense::Maximize => f64::INFINITY,
                },
                values: vec![0.0; n],
                iterations: solver.iterations,
                phase1_iterations: 0,
            },
            basis: Vec::new(),
            factors: None,
            warm: true,
        });
    }
    let values = solver.extract_solution(n);
    // Same safety net as the cold path: a vertex violating the original
    // constraints means the factorisation drifted; fall back to dense.
    if !problem.is_feasible(&values, 1e-6) {
        return Err(Trouble::Numerical {
            spent: solver.iterations,
        });
    }
    let objective = problem.objective_value(&values);
    let iterations = solver.iterations;
    let solution = LpSolution {
        status: LpStatus::Optimal,
        objective,
        values,
        iterations,
        phase1_iterations: 0,
    };
    Ok(capture_outcome(solver, solution, true))
}

fn run_two_phase(
    solver: &mut Revised,
    problem: &LpProblem,
    options: &SimplexOptions,
) -> Result<LpSolution, Trouble> {
    let n = problem.num_variables();
    let limit = options
        .max_iterations
        .unwrap_or_else(|| 200 * (solver.nrows + solver.ncols) + 10_000);

    // Phase 1: minimise the sum of artificial variables. The triangular
    // crash in `build` replaces artificials with structural columns wherever
    // it can do so feasibly, so phase 1 runs only for the rows it missed —
    // and an entirely crashed basis skips phase 1 outright (the crash basis
    // being feasible *is* the feasibility certificate phase 1 exists to
    // produce).
    if solver.has_basic_artificials() {
        solver.install_phase1_costs();
        let status = solver.optimize(options, limit)?;
        debug_assert!(
            status != PhaseStatus::Unbounded,
            "phase-1 objective is bounded below by zero"
        );
        if solver.objective_value() > 1e-7 {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: vec![0.0; n],
                iterations: solver.iterations,
                phase1_iterations: solver.iterations,
            });
        }
    }
    let phase1_iterations = solver.iterations;

    // Phase 2: optimise the real objective; artificials may never re-enter
    // and any still basic are held at zero by the guarded ratio test.
    solver.install_phase2_costs(problem);
    let status = solver.optimize(options, limit)?;
    if status == PhaseStatus::Unbounded {
        return Ok(LpSolution {
            status: LpStatus::Unbounded,
            objective: match problem.sense() {
                Sense::Minimize => f64::NEG_INFINITY,
                Sense::Maximize => f64::INFINITY,
            },
            values: vec![0.0; n],
            iterations: solver.iterations,
            phase1_iterations,
        });
    }

    let values = solver.extract_solution(n);
    // Cheap safety net: a vertex that violates the original constraints means
    // the factorisation drifted; let the caller fall back to dense.
    if !problem.is_feasible(&values, 1e-6) {
        return Err(Trouble::Numerical {
            spent: solver.iterations,
        });
    }
    let objective = problem.objective_value(&values);
    Ok(LpSolution {
        status: LpStatus::Optimal,
        objective,
        values,
        iterations: solver.iterations,
        phase1_iterations,
    })
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum PhaseStatus {
    Optimal,
    Unbounded,
}

/// Terminal state of the dual-simplex loop.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum DualOutcome {
    /// Every basic value is (tolerance-)nonnegative; primal cleanup may run.
    PrimalFeasible,
    /// Some row has a negative basic value and no negative pivot-row entry:
    /// that row is a primal-infeasibility certificate.
    Infeasible,
}

/// Revised-simplex state over the standard-form problem.
///
/// Vectors over the basis are indexed by *basis position* `t ∈ 0..nrows`:
/// `basis[t]` is the column occupying position `t`, `xb[t]` its value, and
/// [`LuFactors::ftran`] maps original-row space into position space (its
/// BTRAN maps back). A pivot replaces the column at one position; positions
/// never migrate, so the basis books survive refactorisation untouched.
struct Revised {
    nrows: usize,
    /// Total columns including artificials.
    ncols: usize,
    /// Columns below this index are structural or slack; columns at or above
    /// it are artificials. Artificials start basic, so pricing never needs to
    /// look past this bound: a nonbasic artificial has left the basis, and a
    /// departed artificial can be dropped outright (if the phase-1 optimum
    /// over the remaining columns is positive, any feasible point of the
    /// original problem — all artificials zero — would beat it, so none
    /// exists).
    num_real: usize,
    /// Column-access form of `A`: row `c` of this matrix is column `c`.
    cols: CsrMatrix,
    /// Row-access form of `A` (one row per constraint), used to push the
    /// devex reference row through to column space sparsely.
    rows_csr: CsrMatrix,
    /// Normalised right-hand side (entrywise ≥ 0).
    b: Vec<f64>,
    is_artificial: Vec<bool>,
    /// Basic column of each basis position.
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Current phase costs per column.
    cost: Vec<f64>,
    /// Sparse LU factors of the basis, maintained by Forrest–Tomlin updates.
    factors: LuFactors,
    /// Current basic solution `B⁻¹ b`, indexed by basis position.
    xb: Vec<f64>,
    /// Set once phase 2 starts: artificials are barred from entering and
    /// pivoted out of the basis whenever the ratio test crosses their row.
    guard_artificials: bool,
    iterations: usize,
    // --- reusable pivot-loop scratch (no steady-state allocation) ---
    /// Simplex multipliers `y = B⁻ᵀ c_B`, by original row after BTRAN.
    y: Vec<f64>,
    /// Entering direction `d = B⁻¹ a_q`, by basis position after FTRAN.
    d: Vec<f64>,
    /// Devex reference row `ρ = B⁻ᵀ e_t` for the leaving position `t`.
    rho: Vec<f64>,
    /// Tableau pivot row `α = ρᵀ A` scattered by column, plus its support.
    alpha: Vec<f64>,
    alpha_touched: Vec<usize>,
    /// Reduced costs per column, maintained incrementally from the pivot row
    /// (`rc′ = rc − (rc_q/α_q)·α`) and recomputed from scratch at every phase
    /// start and refactorisation to wash out drift.
    rc: Vec<f64>,
    /// Devex reference-framework weights per column (all ≥ 1).
    weights: Vec<f64>,
    /// Partial-pricing candidate list (bounded by [`price_list_cap`]).
    candidates: Vec<usize>,
    /// Refill-time devex scores, parallel to `candidates` (only meaningful
    /// during a refill sweep; compaction keeps the lengths in sync).
    cand_scores: Vec<f64>,
    /// Membership flags for `candidates`, indexed by column.
    in_list: Vec<bool>,
    /// Index of the worst-scoring slot in `candidates`, cached so window
    /// insertions are O(1) until a replacement actually happens.
    worst_slot: usize,
    /// Pivots since the devex reference framework was last reset.
    frame_age: usize,
    /// Cyclic cursor of the rotating pricing window.
    cursor: usize,
    /// Forrest–Tomlin updates between refactorisations: the caller's
    /// [`SimplexOptions::refactor_interval`] floored at the row count, so
    /// small solves (which often finish in under `m` pivots) never pay a
    /// mid-solve refactorisation while long solves keep the caller's cadence.
    refactor_interval: usize,
    /// Set once a phase's cost vector is installed: the very first
    /// factorisation runs before any costs exist, and recomputing reduced
    /// costs against the all-zero vector would be pure waste.
    costs_installed: bool,
}

impl Revised {
    fn build(problem: &LpProblem, options: &SimplexOptions) -> Self {
        let n = problem.num_variables();
        let m = problem.num_constraints();

        // Shared classification (see `engine::row_extra_columns`): an
        // effective `≤` row (after normalising rhs ≥ 0) starts with its slack
        // basic, everything else gets an artificial.
        let mut num_slack = 0usize;
        let mut needs_artificial = vec![false; m];
        for (i, c) in problem.constraints().iter().enumerate() {
            let (slack, artificial) = crate::engine::row_extra_columns(c);
            if slack {
                num_slack += 1;
            }
            needs_artificial[i] = artificial;
        }
        let num_artificials = needs_artificial.iter().filter(|&&x| x).count();
        let num_real = n + num_slack;
        let ncols = num_real + num_artificials;

        let mut b = Vec::with_capacity(m);
        let mut basis = vec![usize::MAX; m];
        let mut is_artificial = vec![false; ncols];
        let mut slack_cursor = n;
        let mut artificial_cursor = num_real;

        // Rows stream straight into the CSR arrays — no intermediate per-row
        // `Vec`s (their allocations were a measurable share of small-solve
        // setup time).
        let term_nnz: usize = problem.constraints().iter().map(|c| c.terms.len()).sum();
        let mut rows_builder = CsrMatrix::builder(ncols, m, term_nnz + num_slack + num_artificials);
        for (i, c) in problem.constraints().iter().enumerate() {
            let slack_sign = match c.op {
                ConstraintOp::Le => 1.0,
                ConstraintOp::Ge => -1.0,
                ConstraintOp::Eq => 0.0,
            };
            let mut sign = 1.0;
            let mut rhs = c.rhs;
            if rhs < 0.0 || (rhs == 0.0 && c.op == ConstraintOp::Ge) {
                sign = -1.0;
                rhs = -rhs;
            }
            for &(v, a) in &c.terms {
                rows_builder.push(v.0, sign * a);
            }
            if c.op != ConstraintOp::Eq {
                rows_builder.push(slack_cursor, sign * slack_sign);
                if sign * slack_sign > 0.0 {
                    basis[i] = slack_cursor;
                }
                slack_cursor += 1;
            }
            if needs_artificial[i] {
                rows_builder.push(artificial_cursor, 1.0);
                is_artificial[artificial_cursor] = true;
                basis[i] = artificial_cursor;
                artificial_cursor += 1;
            }
            rows_builder.finish_row();
            b.push(rhs);
        }

        let rows_csr = rows_builder.build();
        let cols = rows_csr.transpose();

        // Triangular crash: before settling for an all-artificial phase-1
        // start, try to seat a structural column in each artificial row. A
        // candidate must pivot positively in its row (so its basic value
        // `rhs/a` is nonnegative), be acceptably large against its column
        // (stability), and have every *other* supported row still slack-basic
        // with enough remaining slack to absorb the induced load. Rows are
        // processed in index order and the largest acceptable pivot wins, so
        // the crash is deterministic; the resulting basis is lower triangular
        // (crashed rows first, slack rows after) and feasible by
        // construction — phase 1 then only has to drive out the artificials
        // the greedy could not replace, often none at all.
        let mut remaining = b.clone();
        let mut col_used = vec![false; ncols];
        for i in 0..m {
            if !needs_artificial[i] {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            'cand: for (c, a) in rows_csr.row(i) {
                if c >= n || col_used[c] || a <= CRASH_PIVOT_TOL {
                    continue;
                }
                if best.is_some_and(|(_, ba)| a <= ba) {
                    continue;
                }
                let x = b[i] / a;
                let mut col_max = a;
                for (r, ar) in cols.row(c) {
                    col_max = col_max.max(ar.abs());
                    if r == i {
                        continue;
                    }
                    let slack_basic = basis[r] != usize::MAX && basis[r] >= n;
                    if !slack_basic || remaining[r] - ar * x < 0.0 {
                        continue 'cand;
                    }
                }
                if a < CRASH_STABILITY_RATIO * col_max {
                    continue;
                }
                best = Some((c, a));
            }
            if let Some((c, a)) = best {
                let x = b[i] / a;
                for (r, ar) in cols.row(c) {
                    if r != i {
                        remaining[r] -= ar * x;
                    }
                }
                basis[i] = c;
                col_used[c] = true;
            }
        }

        let mut in_basis = vec![false; ncols];
        for &v in &basis {
            in_basis[v] = true;
        }
        // The initial basis is near triangular (crash columns plus unit
        // slack/artificial columns), so the first factorisation is cheap.
        Self {
            nrows: m,
            ncols,
            num_real,
            cols,
            rows_csr,
            xb: b.clone(),
            b,
            is_artificial,
            basis,
            in_basis,
            cost: vec![0.0; ncols],
            factors: LuFactors::new(m),
            guard_artificials: false,
            iterations: 0,
            y: vec![0.0; m],
            d: vec![0.0; m],
            rho: vec![0.0; m],
            alpha: vec![0.0; ncols],
            alpha_touched: Vec::with_capacity(ncols),
            rc: vec![0.0; ncols],
            weights: vec![1.0; ncols],
            candidates: Vec::with_capacity(price_list_cap(ncols)),
            cand_scores: Vec::with_capacity(price_list_cap(ncols)),
            in_list: vec![false; ncols],
            worst_slot: 0,
            frame_age: 0,
            cursor: 0,
            refactor_interval: options.refactor_interval.max(m),
            costs_installed: false,
        }
    }

    /// Whether any artificial variable is still basic (phase 1 has work to
    /// do). The triangular crash can seat structural columns in every
    /// artificial row, in which case phase 1 is skipped entirely.
    fn has_basic_artificials(&self) -> bool {
        self.basis.iter().any(|&v| self.is_artificial[v])
    }

    fn install_phase1_costs(&mut self) {
        for c in 0..self.ncols {
            self.cost[c] = if self.is_artificial[c] { 1.0 } else { 0.0 };
        }
        self.costs_installed = true;
        self.reset_devex();
        self.recompute_reduced_costs();
    }

    fn install_phase2_costs(&mut self, problem: &LpProblem) {
        let flip = match problem.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for (v, &coeff) in problem.objective().iter().enumerate() {
            self.cost[v] = flip * coeff;
        }
        self.guard_artificials = true;
        self.costs_installed = true;
        self.reset_devex();
        self.recompute_reduced_costs();
    }

    /// Starts a fresh devex reference framework: the current nonbasic set
    /// becomes the reference, all weights return to 1.
    fn reset_devex(&mut self) {
        self.weights.iter_mut().for_each(|w| *w = 1.0);
        self.candidates.clear();
        self.cand_scores.clear();
        self.in_list.iter_mut().for_each(|x| *x = false);
    }

    /// Current phase objective `c_B · x_B` (always a minimisation).
    fn objective_value(&self) -> f64 {
        self.basis
            .iter()
            .zip(self.xb.iter())
            .map(|(&v, &x)| self.cost[v] * x)
            .sum()
    }

    /// Runs simplex pivots until optimality or unboundedness.
    fn optimize(&mut self, options: &SimplexOptions, limit: usize) -> Result<PhaseStatus, Trouble> {
        let tol = options.tolerance;
        let mut stall = 0usize;
        loop {
            if self.iterations >= limit {
                return Err(Trouble::IterationLimit { limit });
            }
            // Phase 1 is done the moment no artificial is basic: the
            // objective (sum of basic artificial values) is exactly zero,
            // which is its lower bound — no need to prove LP optimality with
            // a confirming sweep, and any remaining degenerate pivots are
            // skipped outright.
            if !self.guard_artificials && !self.has_basic_artificials() {
                return Ok(PhaseStatus::Optimal);
            }
            let use_bland = stall >= options.stall_threshold;

            // Price columns off the incrementally maintained reduced costs.
            // An empty pricing result is re-verified against freshly
            // recomputed reduced costs before optimality is declared, so
            // incremental drift can cost extra pivots but never a wrong
            // verdict.
            let mut entering_choice = self.choose_entering(tol, use_bland);
            if entering_choice.is_none() {
                self.recompute_reduced_costs();
                entering_choice = self.choose_entering(tol, use_bland);
            }
            let Some(entering) = entering_choice else {
                return Ok(PhaseStatus::Optimal);
            };
            // Budget check only once another pivot is actually needed: a
            // solve finishing in exactly `pivot_budget` pivots is a success,
            // not an exhaustion.
            crate::engine::budget_check(self.iterations, options).map_err(Trouble::Budget)?;

            // Entering direction d = B⁻¹ a_q (the FTRAN stashes the spike the
            // Forrest–Tomlin update below consumes).
            self.d.iter_mut().for_each(|x| *x = 0.0);
            for (r, v) in self.cols.row(entering) {
                self.d[r] = v;
            }
            self.factors.ftran(&mut self.d);
            let Some(leaving) = self.choose_leaving(tol, use_bland) else {
                return Ok(PhaseStatus::Unbounded);
            };
            let pivot_val = self.d[leaving];
            if pivot_val.abs() < 1e-12 || !pivot_val.is_finite() {
                return Err(Trouble::Numerical {
                    spent: self.iterations,
                });
            }

            let degenerate = self.xb[leaving].abs() <= tol;
            if degenerate {
                stall += 1;
            } else {
                stall = 0;
            }

            // Devex weight maintenance needs the *old* basis (one BTRAN of
            // e_leaving), so it runs before the update and the book swap.
            self.devex_update(entering, leaving, pivot_val);

            // Basic-solution update along the entering direction: a
            // branchless streaming pass (zero direction entries are no-ops),
            // with the leaving position overwritten afterwards.
            let theta = self.xb[leaving].max(0.0) / pivot_val;
            for (x, &dt) in self.xb.iter_mut().zip(&self.d) {
                *x -= theta * dt;
            }
            self.xb[leaving] = theta;

            self.in_basis[self.basis[leaving]] = false;
            self.in_basis[entering] = true;
            self.basis[leaving] = entering;
            self.iterations += 1;

            // Keep the factors current: refactorise when the update budget or
            // fill-in says so, otherwise patch with a Forrest–Tomlin update —
            // and refactorise as recovery if the update goes singular (the
            // books already hold the new basis, so a fresh factorisation is
            // always a valid continuation).
            let need = self.factors.needs_refactor(self.refactor_interval)
                || self.factors.ft_update(leaving).is_err();
            if need {
                self.refactorize()?;
            }
        }
    }

    /// Whether column `c` may be priced: nonbasic, and not a barred
    /// artificial in phase 2.
    fn priceable(&self, c: usize) -> bool {
        !(self.in_basis[c] || (self.guard_artificials && self.is_artificial[c]))
    }

    /// Recomputes the whole reduced-cost vector from scratch: one BTRAN for
    /// the simplex multipliers `y = B⁻ᵀ c_B`, then one sparse dot per column.
    /// O(nnz) — runs once per phase start and per refactorisation, not per
    /// pivot; between runs `rc` is maintained incrementally by
    /// [`devex_update`](Self::devex_update).
    fn recompute_reduced_costs(&mut self) {
        for t in 0..self.nrows {
            self.y[t] = self.cost[self.basis[t]];
        }
        self.factors.btran(&mut self.y);
        for c in 0..self.ncols {
            if self.in_basis[c] {
                self.rc[c] = 0.0;
                continue;
            }
            let mut rc = self.cost[c];
            for (r, a) in self.cols.row(c) {
                rc -= a * self.y[r];
            }
            self.rc[c] = rc;
        }
    }

    /// Entering column.
    ///
    /// Phase 1 prices by plain Dantzig (most negative reduced cost): the
    /// devex framework is re-seeded on the phase-2 objective anyway, and the
    /// unweighted rule makes the sweep a branchless min-reduction the
    /// compiler vectorises. Phase 1 must sweep *every* column per pivot —
    /// its sum-of-artificials objective ties scores across huge column
    /// groups, and any bounded refresh policy turns those ties into
    /// degenerate churn (measured 4-5x pivot inflation on covering LPs).
    ///
    /// Phase 2 — devex with *partial pricing on a rotating window*: per
    /// pivot the solver re-prices (a) the persistent bounded candidate list,
    /// compacting out columns that went basic or unattractive, and (b) one
    /// fresh window of columns at the cyclic cursor, so every column is
    /// revisited every few pivots and the list can never go stale. The best
    /// `rc² / weight` over both wins. Only when both run dry does a full
    /// sweep run — and a full sweep that finds nothing is the optimality
    /// proof.
    ///
    /// Bland path: smallest index with negative reduced cost, full scan
    /// (anti-cycling).
    fn choose_entering(&mut self, tol: f64, bland: bool) -> Option<usize> {
        // Artificial columns (indices ≥ `num_real`) are never priced: they
        // start basic, and once nonbasic they are dropped for good (see the
        // `num_real` field docs for why that preserves the infeasibility
        // verdict).
        if bland {
            return (0..self.num_real).find(|&c| self.priceable(c) && self.rc[c] < -tol);
        }
        if !self.guard_artificials {
            // Phase 1: two-pass argmin over rc. Basic columns are implicitly
            // excluded — their rc is 0 up to sub-tolerance drift, which can
            // never beat a `< -tol` candidate. A bare fold over f64 stays
            // scalar (LLVM may not reassociate float min), so the reduction
            // runs over four independent lanes that the backend vectorises;
            // the argmin is then recovered with one early-exit scan.
            let priced = &self.rc[..self.num_real];
            let mut lanes = [f64::INFINITY; 4];
            let mut chunks = priced.chunks_exact(4);
            for chunk in &mut chunks {
                for (lane, &rc) in lanes.iter_mut().zip(chunk) {
                    *lane = if rc < *lane { rc } else { *lane };
                }
            }
            let mut min_rc = lanes.into_iter().fold(f64::INFINITY, f64::min);
            for &rc in chunks.remainder() {
                min_rc = if rc < min_rc { rc } else { min_rc };
            }
            if min_rc >= -tol {
                return None;
            }
            return priced.iter().position(|&rc| rc == min_rc);
        }
        let cap = price_list_cap(self.ncols);
        let mut best: Option<(usize, f64)> = None;
        // (a) Re-price the persistent list.
        let mut keep = 0usize;
        for i in 0..self.candidates.len() {
            let c = self.candidates[i];
            if !self.priceable(c) {
                self.in_list[c] = false;
                continue;
            }
            let rc = self.rc[c];
            if rc < -tol {
                let score = rc * rc / self.weights[c];
                self.candidates[keep] = c;
                self.cand_scores[keep] = score;
                keep += 1;
                if best.is_none_or(|(_, bs)| score > bs) {
                    best = Some((c, score));
                }
            } else {
                self.in_list[c] = false;
            }
        }
        self.candidates.truncate(keep);
        self.cand_scores.truncate(keep);
        self.refresh_worst_slot();
        // (b) Price one fresh window of columns at the cyclic cursor —
        // phase-2 scores are well-separated, so a bounded window per pivot
        // does not hurt the pivot count.
        let window = (self.ncols / PRICE_WINDOW_DIVISOR).max(cap).min(self.ncols);
        let start = self.cursor;
        let mut c = start;
        for _ in 0..window {
            let col = c;
            c += 1;
            if c == self.ncols {
                c = 0;
            }
            let c = col;
            if self.in_list[c] || !self.priceable(c) {
                continue;
            }
            let rc = self.rc[c];
            if rc < -tol {
                let score = rc * rc / self.weights[c];
                self.insert_candidate(c, score, cap);
                if best.is_none_or(|(_, bs)| score > bs) {
                    best = Some((c, score));
                }
            }
        }
        self.cursor = c;
        if best.is_some() {
            return best.map(|(c, _)| c);
        }
        // (c) Both dry (the list is empty here): full sweep keeping the
        // best-scoring columns. Finding nothing attractive proves optimality.
        let mut c = start;
        for _ in 0..self.ncols {
            let col = c;
            c += 1;
            if c == self.ncols {
                c = 0;
            }
            let c = col;
            if self.in_list[c] || !self.priceable(c) {
                continue;
            }
            let rc = self.rc[c];
            if rc < -tol {
                let score = rc * rc / self.weights[c];
                self.insert_candidate(c, score, cap);
                if best.is_none_or(|(_, bs)| score > bs) {
                    best = Some((c, score));
                }
            }
        }
        best.map(|(c, _)| c)
    }

    /// Inserts column `c` into the bounded candidate list, evicting the
    /// worst-scoring member when full. Maintains the `in_list` flags and the
    /// cached worst slot, so a non-improving insertion is one comparison.
    fn insert_candidate(&mut self, c: usize, score: f64, cap: usize) {
        if self.candidates.len() < cap {
            if score
                < self
                    .cand_scores
                    .get(self.worst_slot)
                    .copied()
                    .unwrap_or(f64::INFINITY)
            {
                self.worst_slot = self.candidates.len();
            }
            self.candidates.push(c);
            self.cand_scores.push(score);
            self.in_list[c] = true;
            return;
        }
        if score > self.cand_scores[self.worst_slot] {
            self.in_list[self.candidates[self.worst_slot]] = false;
            self.candidates[self.worst_slot] = c;
            self.cand_scores[self.worst_slot] = score;
            self.in_list[c] = true;
            self.refresh_worst_slot();
        }
    }

    /// Re-finds the worst-scoring candidate slot (after compaction or an
    /// eviction). O(list length), list length ≤ the small cap.
    fn refresh_worst_slot(&mut self) {
        self.worst_slot = 0;
        for i in 1..self.cand_scores.len() {
            if self.cand_scores[i] < self.cand_scores[self.worst_slot] {
                self.worst_slot = i;
            }
        }
    }

    /// Ratio test on the FTRANed entering column `d`. Positions with
    /// `d_t > tol` block at `x_t / d_t`; in phase 2, positions whose basic
    /// variable is an artificial (held at zero) also block at ratio 0 when
    /// `d_t < −tol`, which pivots the artificial out instead of letting it go
    /// positive. Ties are broken like the dense engine: by larger pivot
    /// magnitude under devex, by smaller basic-variable index under Bland.
    fn choose_leaving(&self, tol: f64, bland: bool) -> Option<usize> {
        // Ratios `xb⁺/|d|` compare cross-multiplied (all denominators are
        // positive), keeping the per-row work free of divisions:
        // `r_t < r_b ⟺ num_t·den_b < num_b·den_t`, with the tie window `tol`
        // scaled by `den_t·den_b` to stay a window on the ratio itself.
        let mut best: Option<(usize, f64, f64)> = None;
        for t in 0..self.nrows {
            let coeff = self.d[t];
            let blocking = coeff > tol
                || (self.guard_artificials && self.is_artificial[self.basis[t]] && coeff < -tol);
            if !blocking {
                continue;
            }
            let num = self.xb[t].max(0.0);
            let den = coeff.abs();
            let better = match best {
                None => true,
                Some((bt, bnum, bden)) => {
                    let lhs = num * bden;
                    let rhs = bnum * den;
                    if (lhs - rhs).abs() <= tol * den * bden {
                        if bland {
                            self.basis[t] < self.basis[bt]
                        } else {
                            den > bden
                        }
                    } else {
                        lhs < rhs
                    }
                }
            };
            if better {
                best = Some((t, num, den));
            }
        }
        best.map(|(t, _, _)| t)
    }

    /// Devex reference-framework update for the pivot (entering `q`, leaving
    /// position `t`, pivot element `α_q = d_t`): with `ρ = B⁻ᵀ e_t`, every
    /// nonbasic column `j` in the pivot row\'s support sees `α_j = ρ · a_j`
    /// and `w_j ← max(w_j, (α_j/α_q)² · w_q)`; the leaving variable re-enters
    /// the nonbasic pool at `max(w_q/α_q², 1)`. The push from row space to
    /// column space walks only the constraint rows where `ρ` is non-zero, so
    /// the update is exact devex at sparse cost. Runaway weights reset the
    /// framework.
    fn devex_update(&mut self, entering: usize, leaving: usize, pivot_val: f64) {
        self.rho.iter_mut().for_each(|x| *x = 0.0);
        self.rho[leaving] = 1.0;
        self.factors.btran(&mut self.rho);
        // Push `ρ` through the constraint rows to get the pivot row `α`.
        // When the support is wide (the common late-phase case) the touched
        // set approaches every column, so the scatter skips membership
        // tracking and the consume pass below runs flat over `α` — sequential
        // loads instead of an indirection per column. `ρ` entries at or below
        // `RHO_DROP_TOL` are numerical fuzz seeded by Forrest-Tomlin fill:
        // their `α` contributions sit far below the pricing tolerance, but
        // walking their constraint rows is not free.
        let mut pushed = 0usize;
        for r in 0..self.nrows {
            if self.rho[r].abs() > RHO_DROP_TOL {
                pushed += self.rows_csr.row_nnz(r);
            }
        }
        let flat = pushed * 2 > self.ncols;
        self.alpha_touched.clear();
        for r in 0..self.nrows {
            let rho_r = self.rho[r];
            if rho_r.abs() <= RHO_DROP_TOL {
                continue;
            }
            if flat {
                for (c, a) in self.rows_csr.row(r) {
                    self.alpha[c] += a * rho_r;
                }
            } else {
                for (c, a) in self.rows_csr.row(r) {
                    if self.alpha[c] == 0.0 {
                        self.alpha_touched.push(c);
                    }
                    self.alpha[c] += a * rho_r;
                }
            }
        }
        // Devex weights only matter for phase-2 pricing (phase 1 scores by
        // plain Dantzig and the framework is re-seeded at the phase install),
        // so phase 1 skips weight maintenance entirely.
        let track_weights = self.guard_artificials;
        let w_q = self.weights[entering];
        let aq2 = pivot_val * pivot_val;
        let w_scale = w_q / aq2;
        let drop2 = ALPHA_DROP_TOL * ALPHA_DROP_TOL;
        let ratio = self.rc[entering] / pivot_val;
        // Weights only change when a pivot writes them, so tracking the max
        // over *written* values catches every reset-threshold crossing.
        let mut maxw = 0.0f64;
        // Basic columns keep rc = 0 (their α is exactly 0 aside from the
        // leaving variable, handled below); sub-tolerance α move neither the
        // weights nor the reduced costs measurably, and any accumulated drift
        // is washed out at the next refactorisation's full recompute.
        if flat && !track_weights {
            // Phase 1 maintains only the reduced costs: a pure streaming
            // multiply-subtract the compiler turns into SIMD.
            for c in 0..self.ncols {
                let alpha = self.alpha[c];
                self.alpha[c] = 0.0;
                self.rc[c] -= ratio * alpha;
            }
        } else if flat {
            // Branchless streaming pass, written so LLVM vectorises it: for
            // basic columns `α` is mathematically 0 (fuzz aside), so the
            // basic/nonbasic distinction is dropped — basic reduced costs
            // and weights absorb sub-tolerance noise that nothing reads
            // (both are rewritten when a variable actually leaves the basis,
            // and the refactorisation recompute washes the rest).
            for c in 0..self.ncols {
                let alpha = self.alpha[c];
                self.alpha[c] = 0.0;
                self.rc[c] -= ratio * alpha;
                let candidate_w = (alpha * alpha) * w_scale;
                let w = self.weights[c];
                let w = if candidate_w > w { candidate_w } else { w };
                self.weights[c] = w;
                maxw = if w > maxw { w } else { maxw };
            }
        } else if !track_weights {
            for i in 0..self.alpha_touched.len() {
                let c = self.alpha_touched[i];
                let alpha = self.alpha[c];
                self.alpha[c] = 0.0;
                self.rc[c] -= ratio * alpha;
            }
        } else {
            for i in 0..self.alpha_touched.len() {
                let c = self.alpha_touched[i];
                let alpha = self.alpha[c];
                self.alpha[c] = 0.0;
                let a2 = alpha * alpha;
                if a2 <= drop2 || c == entering || self.in_basis[c] {
                    continue;
                }
                self.rc[c] -= ratio * alpha;
                let candidate_w = a2 * w_scale;
                if candidate_w > self.weights[c] {
                    self.weights[c] = candidate_w;
                    if candidate_w > maxw {
                        maxw = candidate_w;
                    }
                }
            }
        }
        // The entering column goes basic (rc exactly 0); the leaving variable
        // re-enters the nonbasic pool with α = 1 exactly (it *was* the basis
        // column at the pivot position).
        self.rc[entering] = 0.0;
        let leaving_var = self.basis[leaving];
        self.rc[leaving_var] = -ratio;
        if track_weights {
            self.weights[leaving_var] = (w_q / aq2).max(1.0);
            maxw = maxw.max(self.weights[leaving_var]);
            self.frame_age += 1;
            if maxw > DEVEX_RESET || !maxw.is_finite() || self.frame_age >= DEVEX_FRAME_LIMIT {
                self.weights.iter_mut().for_each(|w| *w = 1.0);
                self.frame_age = 0;
            }
        }
    }

    /// Rebuilds the LU factors from scratch for the current basis books and
    /// recomputes `x_B = B⁻¹ b`. Positions keep their variables — only the
    /// internal elimination ordering changes.
    /// Installs a warm basis, returning `false` when it cannot seed this
    /// problem (wrong row count, artificial or duplicate columns, or a
    /// singular basis matrix).
    ///
    /// Donor LU factors are adopted only when a residual check proves they
    /// still invert *this* problem's basis matrix — exactly the cost/rhs-only
    /// mutation case, where the constraint matrix is unchanged. Any mismatch
    /// (edited matrix, stale dimensions, drifted factors) falls back to a
    /// fresh factorisation of the same basis, so the factors are an
    /// optimisation and never a correctness input.
    fn try_install_warm(&mut self, warm: WarmStart) -> bool {
        if warm.basis.len() != self.nrows {
            return false;
        }
        if warm.basis.iter().any(|&c| c >= self.num_real) {
            return false;
        }
        self.in_basis.iter_mut().for_each(|x| *x = false);
        for (t, &c) in warm.basis.iter().enumerate() {
            if self.in_basis[c] {
                return false;
            }
            self.basis[t] = c;
            self.in_basis[c] = true;
        }
        let mut seeded = false;
        if let Some(mut factors) = warm.factors {
            if factors.dim() == self.nrows {
                self.xb.copy_from_slice(&self.b);
                factors.ftran(&mut self.xb);
                if self.residual_ok() {
                    self.factors = factors;
                    seeded = true;
                }
            }
        }
        if !seeded {
            if self.factors.factorize(&self.cols, &self.basis).is_err() {
                return false;
            }
            self.xb.copy_from_slice(&self.b);
            self.factors.ftran(&mut self.xb);
        }
        true
    }

    /// Verifies `B·x_B = b` for the freshly installed basis against *this*
    /// problem's columns — the acceptance test for donor LU factors. Uses
    /// the `y` scratch vector and leaves it zeroed.
    fn residual_ok(&mut self) -> bool {
        self.y.iter_mut().for_each(|v| *v = 0.0);
        let mut ok = self.xb.iter().all(|x| x.is_finite());
        if ok {
            for (t, &c) in self.basis.iter().enumerate() {
                let x = self.xb[t];
                for (r, a) in self.cols.row(c) {
                    self.y[r] += a * x;
                }
            }
            let scale = 1.0 + self.b.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
            ok = self
                .b
                .iter()
                .zip(self.y.iter())
                .all(|(&want, &got)| (want - got).abs() <= 1e-7 * scale);
        }
        self.y.iter_mut().for_each(|v| *v = 0.0);
        ok
    }

    /// Dual simplex: from a dual-feasible basis (all phase-2 reduced costs
    /// ≥ 0) with primal infeasibilities (negative basic values), pivot until
    /// primal feasibility or a primal-infeasibility certificate.
    ///
    /// The leaving row is chosen first (most negative basic value), then the
    /// dual ratio test over the BTRAN'd pivot row picks the entering column
    /// that keeps every reduced cost nonnegative. Pivots share the primal
    /// loop's iteration counter, budgets and Forrest–Tomlin
    /// update/refactorisation cadence, so the pivots-as-clock determinism
    /// contract carries over to the warm path unchanged.
    fn dual_optimize(
        &mut self,
        options: &SimplexOptions,
        limit: usize,
    ) -> Result<DualOutcome, Trouble> {
        let tol = options.tolerance;
        let mut stall = 0usize;
        loop {
            if self.iterations >= limit {
                return Err(Trouble::IterationLimit { limit });
            }
            let use_bland = stall >= options.stall_threshold;

            // Leaving row: most negative basic value (Bland: smallest basic
            // column index among the violated rows, anti-cycling).
            let mut leaving: Option<usize> = None;
            if use_bland {
                for t in 0..self.nrows {
                    if self.xb[t] < -tol
                        && leaving.is_none_or(|best| self.basis[t] < self.basis[best])
                    {
                        leaving = Some(t);
                    }
                }
            } else {
                let mut worst = -tol;
                for (t, &x) in self.xb.iter().enumerate() {
                    if x < worst {
                        worst = x;
                        leaving = Some(t);
                    }
                }
            }
            let Some(t) = leaving else {
                return Ok(DualOutcome::PrimalFeasible);
            };
            // Same contract as the primal loop: a solve finishing in exactly
            // `pivot_budget` pivots is a success, not an exhaustion.
            crate::engine::budget_check(self.iterations, options).map_err(Trouble::Budget)?;

            // Pivot row α = (B⁻ᵀ e_t)ᵀ A, scattered sparsely by column via
            // the row-access form with support tracking.
            self.rho.iter_mut().for_each(|x| *x = 0.0);
            self.rho[t] = 1.0;
            self.factors.btran(&mut self.rho);
            for &c in &self.alpha_touched {
                self.alpha[c] = 0.0;
            }
            self.alpha_touched.clear();
            for (r, &rho_r) in self.rho.iter().enumerate() {
                if rho_r.abs() <= RHO_DROP_TOL {
                    continue;
                }
                for (c, a) in self.rows_csr.row(r) {
                    if self.alpha[c] == 0.0 {
                        self.alpha_touched.push(c);
                    }
                    self.alpha[c] += a * rho_r;
                }
            }

            // Dual ratio test: among priceable columns with α < 0, minimise
            // rc/(−α) (cross-multiplied to avoid per-candidate divisions), so
            // the pivot keeps all reduced costs ≥ 0. Ties keep the larger
            // |α| for stability (Bland: the smaller column index).
            let mut entering: Option<usize> = None;
            let mut best_rc = 0.0_f64;
            let mut best_alpha = 0.0_f64;
            for &c in &self.alpha_touched {
                let a = self.alpha[c];
                if a >= -tol || !self.priceable(c) {
                    continue;
                }
                let rc = self.rc[c].max(0.0);
                let Some(q) = entering else {
                    entering = Some(c);
                    best_rc = rc;
                    best_alpha = a;
                    continue;
                };
                let lhs = rc * (-best_alpha);
                let rhs = best_rc * (-a);
                let tie = (lhs - rhs).abs() <= tol * (-a) * (-best_alpha);
                let better = if tie {
                    if use_bland {
                        c < q
                    } else {
                        a.abs() > best_alpha.abs()
                    }
                } else {
                    lhs < rhs
                };
                if better {
                    entering = Some(c);
                    best_rc = rc;
                    best_alpha = a;
                }
            }
            let Some(q) = entering else {
                // Row t reads Σ_j α_j·x_j = x_B[t] < 0 with every priceable
                // α_j ≥ 0 and x ≥ 0: no nonnegative point satisfies it.
                return Ok(DualOutcome::Infeasible);
            };

            // Reduced-cost update from the pivot row (rc′ = rc − (rc_q/α_q)·α),
            // consuming the scatter as it goes. The entering column's rc
            // becomes 0 and the leaving variable picks up −rc_q/α_q ≥ 0, so
            // dual feasibility is preserved by construction; refactorisations
            // below recompute rc from scratch and wash out incremental drift.
            let alpha_q = self.alpha[q];
            let ratio = self.rc[q] / alpha_q;
            if ratio.abs() <= tol {
                stall += 1; // dual-degenerate pivot: objective did not move
            } else {
                stall = 0;
            }
            for &c in &self.alpha_touched {
                let a = self.alpha[c];
                self.alpha[c] = 0.0;
                if c == q || self.in_basis[c] {
                    continue;
                }
                self.rc[c] -= ratio * a;
            }
            self.alpha_touched.clear();
            self.rc[q] = 0.0;
            let leaving_var = self.basis[t];
            self.rc[leaving_var] = -ratio;

            // Entering direction d = B⁻¹ a_q (the FTRAN stashes the spike the
            // Forrest–Tomlin update below consumes). Its row-t entry is the
            // pivot element — the FTRAN-side twin of α_q.
            self.d.iter_mut().for_each(|x| *x = 0.0);
            for (r, v) in self.cols.row(q) {
                self.d[r] = v;
            }
            self.factors.ftran(&mut self.d);
            let pivot_val = self.d[t];
            if pivot_val.abs() < 1e-12 || !pivot_val.is_finite() {
                return Err(Trouble::Numerical {
                    spent: self.iterations,
                });
            }

            // Basic-solution update: θ = x_B[t]/pivot is ≥ 0 (negative basic
            // value over a negative pivot), becoming the entering variable's
            // value — no clamp, unlike the primal loop, because here the
            // leaving value is *meant* to be negative.
            let theta = self.xb[t] / pivot_val;
            for (x, &dt) in self.xb.iter_mut().zip(&self.d) {
                *x -= theta * dt;
            }
            self.xb[t] = theta;

            self.in_basis[leaving_var] = false;
            self.in_basis[q] = true;
            self.basis[t] = q;
            self.iterations += 1;

            let need = self.factors.needs_refactor(self.refactor_interval)
                || self.factors.ft_update(t).is_err();
            if need {
                self.refactorize()?;
            }
        }
    }

    fn refactorize(&mut self) -> Result<(), Trouble> {
        if self.factors.factorize(&self.cols, &self.basis).is_err() {
            return Err(Trouble::Numerical {
                spent: self.iterations,
            });
        }
        self.xb.copy_from_slice(&self.b);
        self.factors.ftran(&mut self.xb);
        if self.costs_installed {
            self.recompute_reduced_costs();
        }
        Ok(())
    }

    /// Reads the structural-variable values out of the basis.
    fn extract_solution(&self, num_structural: usize) -> Vec<f64> {
        let mut values = vec![0.0; num_structural];
        for (t, &v) in self.basis.iter().enumerate() {
            if v < num_structural {
                values[v] = self.xb[t].max(0.0);
            }
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, LpProblem, Sense, VarId};
    use crate::solution::LpStatus;

    fn opts() -> SimplexOptions {
        SimplexOptions::default()
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn maximization_with_le_constraints() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 5.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0, "c1");
        lp.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0, "c2");
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0, "c3");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn minimization_with_ge_constraints_uses_phase_one() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0, "cover");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0, "xmin");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 20.0);
        assert!(lp.is_feasible(&sol.values, 1e-7));
    }

    #[test]
    fn equality_constraints() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 4.0, "e1");
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0, "e2");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0, "le");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0, "ge");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0, "lb");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Le, -2.0, "c");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.0, "c1");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0, "c2");
        lp.add_constraint(vec![(y, 1.0)], ConstraintOp::Le, 1.0, "c3");
        lp.add_constraint(vec![(x, 2.0), (y, 1.0)], ConstraintOp::Le, 2.0, "c4");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn frequent_refactorization_preserves_the_answer() {
        // Force a refactorisation every other pivot; the optimum must not
        // move.
        let mut lp = LpProblem::new(Sense::Maximize);
        let vars: Vec<VarId> = (0..12).map(|i| lp.add_variable(format!("v{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(v, 1.0 + i as f64 / 3.0);
        }
        for (i, &v) in vars.iter().enumerate() {
            lp.add_constraint(
                vec![(v, 1.0)],
                ConstraintOp::Le,
                1.0 + i as f64,
                format!("c{i}"),
            );
        }
        lp.add_constraint(
            vars.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Le,
            30.0,
            "budget",
        );
        let baseline = solve_revised(&lp, &opts()).unwrap();
        let churned = solve_revised(
            &lp,
            &SimplexOptions {
                refactor_interval: 2,
                ..opts()
            },
        )
        .unwrap();
        assert_eq!(baseline.status, LpStatus::Optimal);
        assert_close(baseline.objective, churned.objective);
    }

    #[test]
    fn artificials_locked_in_the_basis_stay_at_zero() {
        // The equality row is redundant with the ≥ row at the optimum; an
        // artificial can linger in the basis at value 0 and must not distort
        // the solution.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 0.0, "tie");
        lp.add_constraint(vec![(y, 1.0)], ConstraintOp::Ge, 2.0, "lb");
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.value(x), 2.0);
    }

    #[test]
    fn iteration_limit_is_enforced() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 5.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0, "c1");
        lp.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0, "c2");
        let err = solve_revised(
            &lp,
            &SimplexOptions {
                max_iterations: Some(1),
                ..opts()
            },
        )
        .unwrap_err();
        assert!(matches!(err, LpError::IterationLimit { limit: 1 }));
    }

    #[test]
    fn zero_variable_problem() {
        let lp = LpProblem::new(Sense::Minimize);
        let sol = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
    }

    #[test]
    fn solved_twice_is_bit_identical() {
        // Devex with a partial candidate list is still fully deterministic:
        // the same problem must replay to the same vertex, objective and
        // pivot count.
        let mut lp = LpProblem::new(Sense::Minimize);
        let vars: Vec<VarId> = (0..20).map(|i| lp.add_variable(format!("v{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(v, 1.0 + (i % 7) as f64 * 0.25);
        }
        for i in 0..15 {
            let terms: Vec<(VarId, f64)> = (0..4)
                .map(|j| (vars[(i * 3 + j * 5) % 20], 1.0 + (j as f64) * 0.5))
                .collect();
            lp.add_constraint(
                terms,
                ConstraintOp::Ge,
                2.0 + i as f64 * 0.1,
                format!("c{i}"),
            );
        }
        let a = solve_revised(&lp, &opts()).unwrap();
        let b = solve_revised(&lp, &opts()).unwrap();
        assert_eq!(a.status, b.status);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.phase1_iterations, b.phase1_iterations);
        assert!(a.objective.to_bits() == b.objective.to_bits());
        for (x, y) in a.values.iter().zip(b.values.iter()) {
            assert!(x.to_bits() == y.to_bits());
        }
    }

    /// A covering LP whose optimal basis survives small rhs edits: the
    /// canonical warm-start shape.
    fn covering_lp(rhs_bump: f64) -> LpProblem {
        let mut lp = LpProblem::new(Sense::Minimize);
        let vars: Vec<VarId> = (0..12).map(|i| lp.add_variable(format!("v{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(v, 1.0 + (i % 5) as f64 * 0.3);
        }
        for i in 0..9 {
            let terms: Vec<(VarId, f64)> = (0..3)
                .map(|j| (vars[(i * 4 + j * 7) % 12], 1.0 + (j as f64) * 0.25))
                .collect();
            lp.add_constraint(
                terms,
                ConstraintOp::Ge,
                2.0 + i as f64 * 0.2 + if i == 4 { rhs_bump } else { 0.0 },
                format!("c{i}"),
            );
        }
        lp
    }

    #[test]
    fn warm_resolve_of_same_problem_takes_no_pivots() {
        let lp = covering_lp(0.0);
        let cold = solve_revised_with_basis(&lp, &opts()).unwrap();
        assert_eq!(cold.solution.status, LpStatus::Optimal);
        assert!(!cold.warm);
        assert!(!cold.basis.is_empty());
        let start = cold.into_warm_start().unwrap();
        let warm = solve_warm(&lp, start, &opts()).unwrap();
        assert!(warm.warm);
        assert_eq!(warm.solution.status, LpStatus::Optimal);
        // The donor basis is already optimal: zero pivots, no phase 1.
        assert_eq!(warm.solution.iterations, 0);
        assert_eq!(warm.solution.phase1_iterations, 0);
        let cold_again = solve_revised(&lp, &opts()).unwrap();
        assert!(warm.solution.objective.to_bits() == cold_again.objective.to_bits());
    }

    #[test]
    fn warm_after_rhs_change_matches_cold() {
        let parent = covering_lp(0.0);
        let donor = solve_revised_with_basis(&parent, &opts()).unwrap();
        let start = donor.into_warm_start().unwrap();
        // Tightening a covering row leaves the donor vertex short on that row
        // (primal infeasible) while the reduced costs are untouched — the
        // dual-simplex case.
        let child = covering_lp(1.5);
        let warm = solve_warm(&child, start, &opts()).unwrap();
        let cold = solve_revised(&child, &opts()).unwrap();
        assert!(warm.warm);
        assert_eq!(warm.solution.status, cold.status);
        assert!(
            (warm.solution.objective - cold.objective).abs() <= 1e-9,
            "warm {} vs cold {}",
            warm.solution.objective,
            cold.objective
        );
        assert!(child.is_feasible(&warm.solution.values, 1e-7));
    }

    #[test]
    fn warm_solve_replays_bit_identical() {
        let parent = covering_lp(0.0);
        let child = covering_lp(1.5);
        let run = |factors: bool| {
            let donor = solve_revised_with_basis(&parent, &opts()).unwrap();
            let mut start = donor.into_warm_start().unwrap();
            if !factors {
                start.factors = None;
            }
            solve_warm(&child, start, &opts()).unwrap()
        };
        let a = run(true);
        let b = run(true);
        let c = run(false); // basis-only warm start must replay identically too
        for other in [&b, &c] {
            assert_eq!(a.solution.iterations, other.solution.iterations);
            assert!(a.solution.objective.to_bits() == other.solution.objective.to_bits());
            for (x, y) in a.solution.values.iter().zip(other.solution.values.iter()) {
                assert!(x.to_bits() == y.to_bits());
            }
        }
    }

    #[test]
    fn invalid_warm_basis_falls_back_to_cold() {
        let lp = covering_lp(0.0);
        let cold = solve_revised(&lp, &opts()).unwrap();
        for basis in [
            Vec::new(),                      // wrong length
            vec![0usize; 9],                 // duplicates
            vec![usize::MAX - 1; 9],         // out of range
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8], // likely singular / arbitrary
        ] {
            let warm = solve_warm(
                &lp,
                WarmStart {
                    basis,
                    factors: None,
                },
                &opts(),
            )
            .unwrap();
            assert_eq!(warm.solution.status, LpStatus::Optimal);
            assert!(
                (warm.solution.objective - cold.objective).abs() <= 1e-9,
                "fallback objective diverged"
            );
        }
    }

    #[test]
    fn warm_start_detects_infeasibility_via_dual() {
        let mut parent = LpProblem::new(Sense::Minimize);
        let x = parent.add_variable("x");
        parent.set_objective_coefficient(x, 1.0);
        parent.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 5.0, "cap");
        parent.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0, "floor");
        let donor = solve_revised_with_basis(&parent, &opts()).unwrap();
        assert_eq!(donor.solution.status, LpStatus::Optimal);
        let start = donor.into_warm_start().unwrap();

        let mut child = LpProblem::new(Sense::Minimize);
        let x = child.add_variable("x");
        child.set_objective_coefficient(x, 1.0);
        child.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 5.0, "cap");
        child.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 9.0, "floor");
        let warm = solve_warm(&child, start, &opts()).unwrap();
        assert_eq!(warm.solution.status, LpStatus::Infeasible);
        let cold = solve_revised(&child, &opts()).unwrap();
        assert_eq!(cold.status, LpStatus::Infeasible);
    }
}
