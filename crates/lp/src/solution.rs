//! Solution and error types for the LP solver.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Status of a solved linear program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
}

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Solve status. `values`/`objective` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Optimal objective value (in the problem's own sense).
    pub objective: f64,
    /// Optimal value of every variable, indexed by [`VarId`](crate::VarId).
    pub values: Vec<f64>,
    /// Number of simplex pivots performed across both phases.
    pub iterations: usize,
    /// Pivots spent in phase 1 (finding an initial basic feasible solution),
    /// including any drive-out pivots; `iterations - phase1_iterations` is
    /// the phase-2 share. Pivots are the solver's *deterministic* clock —
    /// wall-clock fields here would break the bit-identical-replay guarantees
    /// the engines are tested against — so this is the phase-attribution
    /// hook observability layers aggregate over.
    pub phase1_iterations: usize,
}

impl LpSolution {
    /// Value of variable `var`.
    #[must_use]
    pub fn value(&self, var: crate::VarId) -> f64 {
        self.values[var.0]
    }

    /// Number of variables whose optimal value exceeds `tol` in magnitude.
    #[must_use]
    pub fn num_nonzero(&self, tol: f64) -> usize {
        self.values.iter().filter(|v| v.abs() > tol).count()
    }
}

/// Errors reported by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The pivot limit was exceeded before reaching optimality; the problem is
    /// probably numerically pathological.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// A **caller-supplied** resource budget ran out mid-solve: the pivot
    /// budget ([`SimplexOptions::pivot_budget`](crate::SimplexOptions)) or the
    /// wall-clock deadline ([`SimplexOptions::deadline`](crate::SimplexOptions)).
    /// Unlike [`IterationLimit`](Self::IterationLimit) (the internal safety
    /// net against pathological inputs), this is an expected outcome of
    /// budgeted serving: the solve was healthy, it just cost more than the
    /// caller was willing to pay.
    BudgetExhausted {
        /// Pivots performed before the budget ran out.
        pivots: usize,
        /// `true` when the wall-clock deadline tripped, `false` when the
        /// pivot budget did.
        wall_clock: bool,
    },
    /// The problem has no variables or no constraints in a configuration the
    /// solver does not handle (e.g. zero variables with constraints).
    Malformed(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} pivots exceeded")
            }
            Self::BudgetExhausted { pivots, wall_clock } => {
                let what = if *wall_clock {
                    "wall-clock deadline"
                } else {
                    "pivot budget"
                };
                write!(f, "solve {what} exhausted after {pivots} pivots")
            }
            Self::Malformed(msg) => write!(f, "malformed LP: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarId;

    #[test]
    fn value_indexes_by_var_id() {
        let sol = LpSolution {
            status: LpStatus::Optimal,
            objective: 1.0,
            values: vec![0.0, 2.5, 3.0],
            iterations: 4,
            phase1_iterations: 1,
        };
        assert!((sol.value(VarId(1)) - 2.5).abs() < 1e-12);
        assert_eq!(sol.num_nonzero(1e-9), 2);
    }

    #[test]
    fn errors_render_human_readable() {
        let e = LpError::IterationLimit { limit: 10 };
        assert!(e.to_string().contains("10"));
        let e = LpError::Malformed("empty".into());
        assert!(e.to_string().contains("empty"));
    }
}
