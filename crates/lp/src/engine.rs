//! Engine selection: the dense tableau vs the revised simplex over CSR.
//!
//! The workspace ships two interchangeable simplex implementations:
//!
//! * [`crate::dense`] — the original two-phase dense tableau. Every pivot is a
//!   full pass over the `(rows + 1) × (cols + 1)` tableau. Simple, and the
//!   fastest option for tiny problems where the whole tableau fits in cache.
//!   It doubles as the differential-testing oracle for the revised engine.
//! * [`crate::revised`] — the revised simplex over CSR/CSC sparse structures
//!   with a product-form (eta-file) basis factorisation. Per-pivot cost is
//!   proportional to the number of non-zeros, not `rows × cols`, which is the
//!   asymptotic win for the sparse (LP1)/(LP2) instances the paper's
//!   algorithms generate.
//!
//! [`solve`] auto-selects: dense below [`DENSE_CELL_THRESHOLD`] estimated
//! tableau cells, revised above. Both engines share [`SimplexOptions`] and the
//! Dantzig-with-Bland-fallback pivoting discipline.

use crate::model::{Constraint, ConstraintOp, LpProblem};
use crate::solution::{LpError, LpSolution, LpStatus};

/// Standard-form column contribution of one constraint row, as
/// `(slack, artificial)`: every inequality gets a slack/surplus column, and
/// every row that is not an effective `≤` after rhs normalisation (a `≥` row
/// with rhs ≤ 0 negates into one) also gets an artificial — a `≥` row with
/// positive rhs contributes both. Single source of truth shared by the
/// [`Engine::Auto`] size estimate and both engine builders.
pub(crate) fn row_extra_columns(c: &Constraint) -> (bool, bool) {
    let slack = c.op != ConstraintOp::Eq;
    let effective_le = match c.op {
        ConstraintOp::Le => c.rhs >= 0.0,
        ConstraintOp::Ge => c.rhs <= 0.0,
        ConstraintOp::Eq => false,
    };
    (slack, !effective_le)
}

/// Which simplex implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Pick automatically from the problem size: dense for tiny problems,
    /// revised otherwise.
    #[default]
    Auto,
    /// Force the dense two-phase tableau.
    Dense,
    /// Force the revised simplex over CSR.
    Revised,
}

/// Problems whose exact tableau size `(rows + 1) × (total columns + 1)` —
/// structural plus slack/surplus plus artificial — is at most this many
/// cells stay on the dense engine under [`Engine::Auto`]: at that size the
/// dense tableau fits comfortably in cache and has no factorisation
/// bookkeeping to amortise.
///
/// The value is *measured*, not guessed: the `exp_lp_scaling` experiment's
/// crossover probe times both engines on (LP2) relaxations bracketing the
/// break-even size and fits the cell count where the revised engine starts
/// winning (geometric midpoint between the largest dense-winning point and
/// the smallest revised-winning point; see the "auto crossover" table in
/// `BENCH_lp_scaling.json`). The recorded fit is ≈ 35,700 cells from the
/// bracket (31,347 dense-winning; 40,586 revised-winning), rounded here.
/// Re-fit after any engine change.
pub const DENSE_CELL_THRESHOLD: usize = 35_000;

/// The exact standard-form tableau size `(rows + 1) × (total columns + 1)`
/// of a problem — the quantity [`Engine::Auto`] compares against
/// [`DENSE_CELL_THRESHOLD`]. Exposed so the `exp_lp_scaling` crossover probe
/// fits the threshold in the same units the selector uses.
#[must_use]
pub fn tableau_cells(problem: &LpProblem) -> usize {
    let rows = problem.num_constraints();
    // Count the extra columns exactly (one cheap O(rows) pass over the
    // shared per-row classification).
    let extra: usize = problem
        .constraints()
        .iter()
        .map(|c| {
            let (slack, artificial) = row_extra_columns(c);
            usize::from(slack) + usize::from(artificial)
        })
        .sum();
    (rows + 1).saturating_mul(problem.num_variables() + extra + 1)
}

/// Options controlling the simplex solvers (both engines).
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Numerical tolerance for reduced costs, ratio tests and feasibility.
    pub tolerance: f64,
    /// Maximum number of pivots across both phases; `None` derives a generous
    /// limit from the problem size.
    pub max_iterations: Option<usize>,
    /// Number of consecutive degenerate pivots after which the solver switches
    /// from Dantzig's rule to Bland's anti-cycling rule.
    pub stall_threshold: usize,
    /// Which engine to run.
    pub engine: Engine,
    /// Revised engine only: number of eta updates accumulated before the
    /// basis is refactorised from scratch (bounds both numerical drift and
    /// the length of the eta file).
    pub refactor_interval: usize,
    /// Caller-supplied pivot budget across both phases. Exceeding it aborts
    /// the solve with [`LpError::BudgetExhausted`] — unlike
    /// [`max_iterations`](Self::max_iterations), which is the internal safety
    /// net and reports [`LpError::IterationLimit`]. A budget never changes a
    /// *successful* solve: the pivot sequence is deterministic, so any solve
    /// that finishes within the budget is bit-identical to an unbudgeted one.
    pub pivot_budget: Option<usize>,
    /// Caller-supplied wall-clock deadline, checked cooperatively every
    /// [`DEADLINE_CHECK_INTERVAL`] pivots (and before the first). Tripping it
    /// aborts with [`LpError::BudgetExhausted`] (`wall_clock: true`).
    pub deadline: Option<std::time::Instant>,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-9,
            max_iterations: None,
            stall_threshold: 64,
            engine: Engine::Auto,
            refactor_interval: 64,
            pivot_budget: None,
            deadline: None,
        }
    }
}

/// How many pivots pass between cooperative deadline checks: rare enough
/// that the `Instant::now` syscall is noise, frequent enough that a budgeted
/// solve overshoots its deadline by at most a handful of pivots.
pub const DEADLINE_CHECK_INTERVAL: usize = 32;

/// The cooperative budget check both engines run once the pricing step has
/// committed to another pivot (i.e. **after** the optimality check, so a
/// solve that finishes in exactly `pivot_budget` pivots returns Optimal).
/// `iterations` is the cumulative pivot count (phases 1 + 2).
pub(crate) fn budget_check(iterations: usize, options: &SimplexOptions) -> Result<(), LpError> {
    if let Some(budget) = options.pivot_budget {
        if iterations >= budget {
            return Err(LpError::BudgetExhausted {
                pivots: iterations,
                wall_clock: false,
            });
        }
    }
    if let Some(deadline) = options.deadline {
        if iterations.is_multiple_of(DEADLINE_CHECK_INTERVAL)
            && std::time::Instant::now() >= deadline
        {
            return Err(LpError::BudgetExhausted {
                pivots: iterations,
                wall_clock: true,
            });
        }
    }
    Ok(())
}

/// Solves a linear program with the engine selected by
/// [`SimplexOptions::engine`].
///
/// # Errors
///
/// Returns [`LpError::IterationLimit`] if the pivot budget is exhausted — in
/// practice a sign of a numerically pathological input.
pub fn solve(problem: &LpProblem, options: &SimplexOptions) -> Result<LpSolution, LpError> {
    match options.engine {
        Engine::Dense => crate::dense::solve_dense(problem, options),
        Engine::Revised => crate::revised::solve_revised(problem, options),
        Engine::Auto => {
            if tableau_cells(problem) <= DENSE_CELL_THRESHOLD {
                crate::dense::solve_dense(problem, options)
            } else {
                crate::revised::solve_revised(problem, options)
            }
        }
    }
}

/// Shared handling of the zero-variable corner case: the all-zero point
/// either satisfies every (constant) constraint or the problem is infeasible.
pub(crate) fn solve_empty(problem: &LpProblem, options: &SimplexOptions) -> LpSolution {
    let feasible = problem.constraints().iter().all(|c| match c.op {
        ConstraintOp::Le => 0.0 <= c.rhs + options.tolerance,
        ConstraintOp::Ge => 0.0 >= c.rhs - options.tolerance,
        ConstraintOp::Eq => c.rhs.abs() <= options.tolerance,
    });
    LpSolution {
        status: if feasible {
            LpStatus::Optimal
        } else {
            LpStatus::Infeasible
        },
        objective: 0.0,
        values: Vec::new(),
        iterations: 0,
        phase1_iterations: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn auto_routes_tiny_problems_to_dense_and_large_to_revised() {
        // Indirect check: both engines must agree anyway, so the observable
        // contract of Auto is simply that it solves. Exercise both branches.
        let mut tiny = LpProblem::new(Sense::Maximize);
        let x = tiny.add_variable("x");
        tiny.set_objective_coefficient(x, 1.0);
        tiny.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 3.0, "c");
        let sol = solve(&tiny, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 3.0).abs() < 1e-9);

        let mut large = LpProblem::new(Sense::Maximize);
        let vars: Vec<_> = (0..200)
            .map(|i| large.add_variable(format!("v{i}")))
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            large.set_objective_coefficient(v, 1.0 + (i % 7) as f64);
            large.add_constraint(vec![(v, 1.0)], ConstraintOp::Le, 2.0, format!("c{i}"));
        }
        assert!(
            tableau_cells(&large) > DENSE_CELL_THRESHOLD,
            "sweep point must hit revised"
        );
        let sol = solve(&large, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        let expected: f64 = (0..200).map(|i| 2.0 * (1.0 + (i % 7) as f64)).sum();
        assert!((sol.objective - expected).abs() < 1e-6);
    }

    #[test]
    fn pivot_budget_trips_with_budget_exhausted_on_both_engines() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0, "cover");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0, "xmin");
        for engine in [Engine::Dense, Engine::Revised] {
            let err = solve(
                &lp,
                &SimplexOptions {
                    engine,
                    pivot_budget: Some(1),
                    ..SimplexOptions::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(
                    err,
                    LpError::BudgetExhausted {
                        pivots: 1,
                        wall_clock: false
                    }
                ),
                "{engine:?}: {err:?}"
            );
        }
    }

    #[test]
    fn expired_deadline_aborts_before_the_first_pivot() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 3.0, "c");
        let err = solve(
            &lp,
            &SimplexOptions {
                deadline: Some(std::time::Instant::now()),
                ..SimplexOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                LpError::BudgetExhausted {
                    pivots: 0,
                    wall_clock: true
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn exact_budget_solves_succeed() {
        // A solve that needs exactly `pivot_budget` pivots is a success:
        // the check fires only when the pricing step wants one more pivot.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0, "cover");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0, "xmin");
        for engine in [Engine::Dense, Engine::Revised] {
            let free = solve(
                &lp,
                &SimplexOptions {
                    engine,
                    ..SimplexOptions::default()
                },
            )
            .unwrap();
            assert!(free.iterations > 0);
            let exact = solve(
                &lp,
                &SimplexOptions {
                    engine,
                    pivot_budget: Some(free.iterations),
                    ..SimplexOptions::default()
                },
            )
            .unwrap();
            assert_eq!(free, exact, "{engine:?}");
            // A zero-pivot problem succeeds even under a zero budget.
            let mut trivial = LpProblem::new(Sense::Minimize);
            let z = trivial.add_variable("z");
            trivial.set_objective_coefficient(z, 1.0);
            trivial.add_constraint(vec![(z, 1.0)], ConstraintOp::Le, 5.0, "c");
            let sol = solve(
                &trivial,
                &SimplexOptions {
                    engine,
                    pivot_budget: Some(0),
                    ..SimplexOptions::default()
                },
            )
            .unwrap();
            assert_eq!(sol.status, LpStatus::Optimal);
        }
    }

    #[test]
    fn sufficient_budget_is_invisible_in_the_result() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0, "cover");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0, "xmin");
        for engine in [Engine::Dense, Engine::Revised] {
            let free = solve(
                &lp,
                &SimplexOptions {
                    engine,
                    ..SimplexOptions::default()
                },
            )
            .unwrap();
            let budgeted = solve(
                &lp,
                &SimplexOptions {
                    engine,
                    pivot_budget: Some(10_000),
                    deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(60)),
                    ..SimplexOptions::default()
                },
            )
            .unwrap();
            assert_eq!(free, budgeted, "{engine:?}");
        }
    }

    #[test]
    fn phase_attribution_bounds_hold_on_both_engines() {
        // Pure ≤ rows start with an all-slack basis: no artificials, so no
        // phase-1 pivots — every pivot is phase-2 work.
        let mut easy = LpProblem::new(Sense::Maximize);
        let x = easy.add_variable("x");
        easy.set_objective_coefficient(x, 1.0);
        easy.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 3.0, "c");
        // A ≥ row with positive rhs needs an artificial: phase 1 must pivot.
        let mut hard = LpProblem::new(Sense::Minimize);
        let u = hard.add_variable("u");
        let v = hard.add_variable("v");
        hard.set_objective_coefficient(u, 2.0);
        hard.set_objective_coefficient(v, 3.0);
        hard.add_constraint(vec![(u, 1.0), (v, 1.0)], ConstraintOp::Ge, 10.0, "cover");
        hard.add_constraint(vec![(u, 1.0)], ConstraintOp::Ge, 3.0, "umin");
        for engine in [Engine::Dense, Engine::Revised] {
            let opts = SimplexOptions {
                engine,
                ..SimplexOptions::default()
            };
            let sol = solve(&easy, &opts).unwrap();
            assert_eq!(sol.phase1_iterations, 0, "{engine:?}");
            assert!(sol.iterations >= 1, "{engine:?}");
            let sol = solve(&hard, &opts).unwrap();
            assert!(sol.phase1_iterations >= 1, "{engine:?}");
            assert!(sol.phase1_iterations <= sol.iterations, "{engine:?}");
        }
    }

    #[test]
    fn forced_engines_agree_on_a_small_problem() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0, "cover");
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0, "xmin");
        let dense = solve(
            &lp,
            &SimplexOptions {
                engine: Engine::Dense,
                ..SimplexOptions::default()
            },
        )
        .unwrap();
        let revised = solve(
            &lp,
            &SimplexOptions {
                engine: Engine::Revised,
                ..SimplexOptions::default()
            },
        )
        .unwrap();
        assert_eq!(dense.status, revised.status);
        assert!((dense.objective - revised.objective).abs() < 1e-6);
    }
}
