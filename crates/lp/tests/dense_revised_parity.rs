//! Differential-testing battery: the dense tableau is the oracle for the
//! revised simplex. On every generated LP the two engines must agree on the
//! status and, when optimal, on the objective within 1e-6 (the optimal
//! *vertex* may legitimately differ; both must be feasible).

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use suu_lp::{
    solve_dense, solve_revised, ConstraintOp, LpProblem, LpStatus, Sense, SimplexOptions, VarId,
};

fn assert_engines_agree(lp: &LpProblem, label: &str) {
    let options = SimplexOptions::default();
    let dense = solve_dense(lp, &options).expect("dense solve");
    let revised = solve_revised(lp, &options).expect("revised solve");
    assert_eq!(dense.status, revised.status, "{label}: status mismatch");
    if dense.status == LpStatus::Optimal {
        assert!(
            (dense.objective - revised.objective).abs() <= 1e-6,
            "{label}: dense {} vs revised {}",
            dense.objective,
            revised.objective
        );
        assert!(
            lp.is_feasible(&dense.values, 1e-6),
            "{label}: dense vertex infeasible"
        );
        assert!(
            lp.is_feasible(&revised.values, 1e-6),
            "{label}: revised vertex infeasible"
        );
    }
}

/// A random LP mixing all three operators, with signs and bounds chosen so
/// that every status (optimal / infeasible / unbounded) shows up across the
/// battery.
fn random_lp(rng: &mut ChaCha8Rng) -> LpProblem {
    let nv = rng.gen_range(2..10);
    let nc = rng.gen_range(1..12);
    let sense = if rng.gen_bool(0.5) {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut lp = LpProblem::new(sense);
    let vars: Vec<VarId> = (0..nv).map(|i| lp.add_variable(format!("v{i}"))).collect();
    for &v in &vars {
        lp.set_objective_coefficient(v, rng.gen_range(-2.0..3.0));
    }
    for c in 0..nc {
        // Sparse rows: each touches 1..=4 variables.
        let k = rng.gen_range(1..=4.min(nv));
        let mut terms = Vec::new();
        for _ in 0..k {
            terms.push((vars[rng.gen_range(0..nv)], rng.gen_range(-2.0..2.5)));
        }
        let op = match rng.gen_range(0..3) {
            0 => ConstraintOp::Le,
            1 => ConstraintOp::Ge,
            _ => ConstraintOp::Eq,
        };
        lp.add_constraint(terms, op, rng.gen_range(-4.0..8.0), format!("c{c}"));
    }
    lp
}

#[test]
fn random_mixed_lps_agree() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD1FF);
    let mut statuses = [0usize; 3];
    for trial in 0..200 {
        let lp = random_lp(&mut rng);
        let dense = solve_dense(&lp, &SimplexOptions::default()).unwrap();
        statuses[match dense.status {
            LpStatus::Optimal => 0,
            LpStatus::Infeasible => 1,
            LpStatus::Unbounded => 2,
        }] += 1;
        assert_engines_agree(&lp, &format!("random trial {trial}"));
    }
    // The battery is only meaningful if it actually exercises every status.
    assert!(
        statuses.iter().all(|&c| c > 0),
        "battery must cover optimal/infeasible/unbounded, got {statuses:?}"
    );
}

#[test]
fn random_feasible_covering_lps_agree() {
    // Guaranteed-feasible minimisation problems with ≥ rows (phase 1 heavy).
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FE);
    for trial in 0..60 {
        let nv = rng.gen_range(2..8);
        let nc = rng.gen_range(1..8);
        let mut lp = LpProblem::new(Sense::Minimize);
        let vars: Vec<VarId> = (0..nv).map(|i| lp.add_variable(format!("v{i}"))).collect();
        for &v in &vars {
            lp.set_objective_coefficient(v, rng.gen_range(0.5..3.0));
        }
        for c in 0..nc {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for &v in &vars {
                if rng.gen_bool(0.6) {
                    terms.push((v, rng.gen_range(0.1..2.0)));
                }
            }
            if terms.is_empty() {
                continue;
            }
            lp.add_constraint(
                terms,
                ConstraintOp::Ge,
                rng.gen_range(0.5..5.0),
                format!("c{c}"),
            );
        }
        assert_engines_agree(&lp, &format!("covering trial {trial}"));
    }
}

#[test]
fn degenerate_lps_agree() {
    // Many constraints active at the optimum: the classic degeneracy stress.
    let mut rng = ChaCha8Rng::seed_from_u64(0xDE6E);
    for trial in 0..40 {
        let nv = rng.gen_range(2..6);
        let mut lp = LpProblem::new(Sense::Maximize);
        let vars: Vec<VarId> = (0..nv).map(|i| lp.add_variable(format!("v{i}"))).collect();
        for &v in &vars {
            lp.set_objective_coefficient(v, 1.0);
        }
        // Shared bound repeated through overlapping rows ⇒ degenerate vertex.
        let bound = rng.gen_range(1.0..3.0);
        lp.add_constraint(
            vars.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Le,
            bound,
            "sum",
        );
        for (i, &v) in vars.iter().enumerate() {
            lp.add_constraint(vec![(v, 1.0)], ConstraintOp::Le, bound, format!("b{i}"));
            lp.add_constraint(
                vec![(v, 2.0), (vars[(i + 1) % nv], 1.0)],
                ConstraintOp::Le,
                2.0 * bound,
                format!("p{i}"),
            );
        }
        assert_engines_agree(&lp, &format!("degenerate trial {trial}"));
    }
}

#[test]
fn equality_systems_agree() {
    // Pure equality systems solved through phase 1, including infeasible and
    // redundant-row cases.
    let mut rng = ChaCha8Rng::seed_from_u64(0xE0);
    for trial in 0..60 {
        let nv = rng.gen_range(2..6);
        let nc = rng.gen_range(1..=nv + 1);
        let mut lp = LpProblem::new(Sense::Minimize);
        let vars: Vec<VarId> = (0..nv).map(|i| lp.add_variable(format!("v{i}"))).collect();
        for &v in &vars {
            lp.set_objective_coefficient(v, rng.gen_range(0.0..2.0));
        }
        for c in 0..nc {
            let terms: Vec<(VarId, f64)> = vars
                .iter()
                .map(|&v| (v, rng.gen_range(-1.5..2.0)))
                .collect();
            lp.add_constraint(
                terms,
                ConstraintOp::Eq,
                rng.gen_range(-1.0..3.0),
                format!("e{c}"),
            );
        }
        assert_engines_agree(&lp, &format!("equality trial {trial}"));
    }
}

#[test]
fn adversarial_options_preserve_parity() {
    // Hostile solver options must change *how* the revised engine gets to
    // the answer, never the answer itself: `refactor_interval: 1` (clamped
    // to m internally) forces Forrest–Tomlin chains to be torn down and the
    // basis refactorised as often as the engine allows, and
    // `stall_threshold: 1` flips pricing into Bland's rule after a single
    // degenerate pivot, dragging the devex candidate list in and out of
    // play. The dense oracle still runs with defaults.
    let mut rng = ChaCha8Rng::seed_from_u64(0xAD5);
    let harsh = SimplexOptions {
        refactor_interval: 1,
        stall_threshold: 1,
        ..SimplexOptions::default()
    };
    for trial in 0..80 {
        let lp = random_lp(&mut rng);
        let dense = solve_dense(&lp, &SimplexOptions::default()).expect("dense solve");
        let revised = solve_revised(&lp, &harsh).expect("revised solve under harsh options");
        assert_eq!(
            dense.status, revised.status,
            "harsh-options trial {trial}: status mismatch"
        );
        if dense.status == LpStatus::Optimal {
            assert!(
                (dense.objective - revised.objective).abs() <= 1e-6,
                "harsh-options trial {trial}: dense {} vs revised {}",
                dense.objective,
                revised.objective
            );
            assert!(
                lp.is_feasible(&revised.values, 1e-6),
                "harsh-options trial {trial}: revised vertex infeasible"
            );
        }
        // Determinism under pressure: the same harsh solve, run twice, must
        // be bit-identical (pivots are the clock; options are part of it).
        let again = solve_revised(&lp, &harsh).expect("repeat solve");
        assert_eq!(revised.status, again.status, "trial {trial}: repeat status");
        assert_eq!(
            revised.objective.to_bits(),
            again.objective.to_bits(),
            "trial {trial}: repeat objective not bit-identical"
        );
    }
}
