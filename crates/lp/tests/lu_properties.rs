//! Property battery for the sparse LU kernel ([`suu_lp::LuFactors`]):
//!
//! * FTRAN solves `B x = v` — checked against a dense
//!   Gaussian-elimination oracle and by multiplying back through `B`;
//! * BTRAN solves `Bᵀ y = v` — same two checks on the transpose;
//! * a Forrest–Tomlin column update is *equivalent* to refactorising the
//!   updated basis from scratch (both solve the same systems), across
//!   chains of successive updates;
//! * structurally singular bases (zero column, duplicated column, a column
//!   that is the sum of two others) are rejected by `factorize`.
//!
//! Matrices are random sparse permuted-diagonally-dominant systems: a
//! permutation pivot per column plus bounded off-diagonal clutter, so
//! invertibility is guaranteed by construction while the sparsity pattern —
//! the thing the Markowitz ordering and the triangularisation pre-pass
//! actually react to — varies freely.

use proptest::prelude::*;
use suu_lp::{CsrMatrix, LuFactors};

/// Deterministic value in `±[0.5, 2.0]` for off-deterministic generation.
fn mix(seed: u64, a: usize, b: usize) -> u64 {
    let mut z = seed ^ ((a as u64) << 32) ^ (b as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(seed: u64, a: usize, b: usize) -> f64 {
    (mix(seed, a, b) >> 11) as f64 / (1u64 << 53) as f64
}

/// Random sparse invertible `m × m` matrix as column lists `(row, value)`.
///
/// Column `c` holds a strong pivot at row `perm[c]` (|v| in [1, 2]) plus up
/// to `extra` off-pivot entries with magnitude ≤ 0.3 / (extra + 1), keeping
/// the matrix nonsingular (permuted strict diagonal dominance) for every
/// seed.
fn random_invertible(m: usize, extra: usize, seed: u64) -> Vec<Vec<(usize, f64)>> {
    // Fisher–Yates over the pivot rows.
    let mut perm: Vec<usize> = (0..m).collect();
    for i in (1..m).rev() {
        let j = (mix(seed, i, 0xFFFF) as usize) % (i + 1);
        perm.swap(i, j);
    }
    let mut cols = Vec::with_capacity(m);
    for c in 0..m {
        let sign = if mix(seed, c, 0xA) & 1 == 0 {
            1.0
        } else {
            -1.0
        };
        let mut col = vec![(perm[c], sign * (1.0 + unit(seed, c, 0xB)))];
        for e in 0..extra {
            let r = (mix(seed, c, e) as usize) % m;
            if col.iter().all(|&(rr, _)| rr != r) {
                let v = (unit(seed, c, e + 100) - 0.5) * 0.6 / (extra as f64 + 1.0);
                if v != 0.0 {
                    col.push((r, v));
                }
            }
        }
        cols.push(col);
    }
    cols
}

/// Dense `B x = v` oracle: Gaussian elimination with partial pivoting.
fn dense_solve(cols: &[Vec<(usize, f64)>], v: &[f64]) -> Vec<f64> {
    let m = v.len();
    let mut a = vec![vec![0.0f64; m + 1]; m];
    for (c, col) in cols.iter().enumerate() {
        for &(r, val) in col {
            a[r][c] = val;
        }
    }
    for (r, x) in v.iter().enumerate() {
        a[r][m] = *x;
    }
    for k in 0..m {
        let piv = (k..m)
            .max_by(|&i, &j| a[i][k].abs().partial_cmp(&a[j][k].abs()).unwrap())
            .unwrap();
        a.swap(k, piv);
        assert!(a[k][k].abs() > 1e-12, "oracle matrix must be invertible");
        for i in k + 1..m {
            let f = a[i][k] / a[k][k];
            if f != 0.0 {
                for j in k..=m {
                    a[i][j] -= f * a[k][j];
                }
            }
        }
    }
    let mut x = vec![0.0; m];
    for k in (0..m).rev() {
        let mut t = a[k][m];
        for j in k + 1..m {
            t -= a[k][j] * x[j];
        }
        x[k] = t / a[k][k];
    }
    x
}

/// Multiplies `B x` (columns given as sparse lists, `x` by basis position).
fn apply(cols: &[Vec<(usize, f64)>], x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    for (c, col) in cols.iter().enumerate() {
        for &(r, v) in col {
            out[r] += v * x[c];
        }
    }
    out
}

/// Multiplies `Bᵀ y` (`y` by original row).
fn apply_t(cols: &[Vec<(usize, f64)>], y: &[f64]) -> Vec<f64> {
    cols.iter()
        .map(|col| col.iter().map(|&(r, v)| v * y[r]).sum())
        .collect()
}

fn factors_for(cols: &[Vec<(usize, f64)>]) -> LuFactors {
    let m = cols.len();
    let csc = CsrMatrix::from_rows(m, cols);
    let basis: Vec<usize> = (0..m).collect();
    let mut f = LuFactors::new(m);
    f.factorize(&csc, &basis)
        .expect("matrix is invertible by construction");
    f
}

fn rhs(m: usize, seed: u64) -> Vec<f64> {
    (0..m).map(|r| unit(seed, r, 0xD) * 4.0 - 2.0).collect()
}

const TOL: f64 = 1e-8;

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= TOL * (1.0 + x.abs().max(y.abs())),
            "{what}: component {i} differs ({x} vs {y})"
        );
    }
}

/// The proptest FT chain tolerates `ft_update` rejections (the caller's
/// contract is "refactorise on Err"), so this deterministic case pins the
/// success path: the update must be *accepted* and must then agree with a
/// fresh factorisation.
#[test]
fn a_benign_ft_update_is_accepted_and_correct() {
    let mut cols = random_invertible(8, 3, 0x0FF1CE);
    let mut factors = factors_for(&cols);
    let pos = 3;
    let pivot_row = cols[pos]
        .iter()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
        .unwrap()
        .0;
    let newcol = vec![(pivot_row, 1.5), ((pivot_row + 1) % 8, 0.1)];
    let mut dirn = vec![0.0; 8];
    for &(r, v) in &newcol {
        dirn[r] = v;
    }
    factors.ftran(&mut dirn);
    cols[pos] = newcol;
    factors
        .ft_update(pos)
        .expect("a strong-pivot replacement column must be accepted");
    assert_eq!(factors.updates_since_refactor(), 1);
    let v = rhs(8, 0xFEED);
    let mut via_update = v.clone();
    factors.ftran(&mut via_update);
    let mut via_fresh = v.clone();
    factors_for(&cols).ftran(&mut via_fresh);
    assert_close(
        &via_update,
        &via_fresh,
        "accepted FT update vs refactorisation",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ftran_matches_the_dense_oracle_and_inverts_b(
        m in 2usize..14,
        extra in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let cols = random_invertible(m, extra, seed);
        let mut factors = factors_for(&cols);
        let v = rhs(m, seed ^ 0x5EED);
        let mut x = v.clone();
        factors.ftran(&mut x);
        assert_close(&apply(&cols, &x), &v, "B·ftran(v) must reproduce v");
        assert_close(&x, &dense_solve(&cols, &v), "ftran vs dense oracle");
    }

    #[test]
    fn btran_solves_the_transposed_system(
        m in 2usize..14,
        extra in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let cols = random_invertible(m, extra, seed);
        let mut factors = factors_for(&cols);
        let v = rhs(m, seed ^ 0xB7);
        let mut y = v.clone();
        factors.btran(&mut y);
        assert_close(&apply_t(&cols, &y), &v, "Bᵀ·btran(v) must reproduce v");
    }

    #[test]
    fn ftran_btran_round_trip_through_both_triangles(
        m in 2usize..14,
        extra in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        // ftran(v) then multiplying by B, and btran(v) then multiplying by
        // Bᵀ, both walk L and U once in each direction — together they
        // exercise every stored non-zero of the factors in both orders.
        let cols = random_invertible(m, extra, seed);
        let mut factors = factors_for(&cols);
        let v = rhs(m, seed ^ 0x70);
        let mut x = v.clone();
        factors.ftran(&mut x);
        let mut y = apply(&cols, &x);
        factors.btran(&mut y);
        // y = B⁻ᵀ B x̂ where x̂ solves B x̂ = v: multiplying back must again
        // close the loop.
        assert_close(&apply_t(&cols, &y), &apply(&cols, &x), "round trip");
    }

    #[test]
    fn forrest_tomlin_update_is_equivalent_to_refactorisation(
        m in 3usize..12,
        extra in 0usize..4,
        seed in 0u64..1_000_000,
        updates in 1usize..4,
    ) {
        let mut cols = random_invertible(m, extra, seed);
        let mut factors = factors_for(&cols);
        for step in 0..updates {
            // Replace one basis column with a fresh strong-pivot column (on
            // the leaving column's own pivot row, so the updated matrix
            // stays invertible).
            let pos = (mix(seed, step, 0xC0) as usize) % m;
            let pivot_row = cols[pos]
                .iter()
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                .unwrap()
                .0;
            let mut newcol = vec![(pivot_row, 1.0 + unit(seed, step, 0xC1))];
            let r2 = (mix(seed, step, 0xC2) as usize) % m;
            if r2 != pivot_row {
                newcol.push((r2, (unit(seed, step, 0xC3) - 0.5) * 0.4));
            }
            // FT protocol: ftran the entering column, then splice its spike
            // into the factors at the leaving position.
            let mut dirn = vec![0.0; m];
            for &(r, v) in &newcol {
                dirn[r] = v;
            }
            factors.ftran(&mut dirn);
            cols[pos] = newcol;
            if factors.ft_update(pos).is_err() {
                // A rejected update is a legal outcome (the caller
                // refactorises); it must not be silently wrong, so stop
                // comparing this chain here.
                return Ok(());
            }
            // The updated factors must agree with a from-scratch
            // factorisation of the updated matrix on a random system.
            let v = rhs(m, seed ^ (step as u64) << 8);
            let mut via_update = v.clone();
            factors.ftran(&mut via_update);
            let mut fresh = factors_for(&cols);
            let mut via_fresh = v.clone();
            fresh.ftran(&mut via_fresh);
            assert_close(&via_update, &via_fresh, "FT update vs refactorisation (ftran)");
            let mut bt_update = v.clone();
            factors.btran(&mut bt_update);
            let mut bt_fresh = v.clone();
            fresh.btran(&mut bt_fresh);
            assert_close(&bt_update, &bt_fresh, "FT update vs refactorisation (btran)");
        }
    }

    #[test]
    fn structurally_singular_bases_are_rejected(
        m in 2usize..10,
        extra in 0usize..4,
        seed in 0u64..1_000_000,
        kind in 0usize..3,
    ) {
        let mut cols = random_invertible(m, extra, seed);
        let a = (mix(seed, 0, 0xE0) as usize) % m;
        let b = (mix(seed, 1, 0xE1) as usize) % m;
        prop_assume!(a != b);
        match kind {
            0 => cols[a].clear(),              // zero column
            1 => cols[a] = cols[b].clone(),    // duplicated column
            _ => {
                // cols[a] := cols[a] + cols[b] would stay invertible; make a
                // dependent triple instead: cols[a] = cols[b] + cols[c].
                let c = (a + 1) % m;
                prop_assume!(c != b);
                let mut sum = vec![0.0; m];
                for &(r, v) in cols[b].iter().chain(cols[c].iter()) {
                    sum[r] += v;
                }
                cols[a] = sum
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != 0.0)
                    .map(|(r, &v)| (r, v))
                    .collect();
            }
        }
        let csc = CsrMatrix::from_rows(m, &cols);
        let basis: Vec<usize> = (0..m).collect();
        let mut f = LuFactors::new(m);
        prop_assert!(f.factorize(&csc, &basis).is_err(), "singular basis must be rejected");
    }
}
