//! Warm-vs-cold differential battery for [`suu_lp::solve_warm`].
//!
//! 300+ random LPs, each mutated by one of {rhs, cost, bound, drop-row}.
//! The warm-started solve of the mutated child must agree with a cold solve
//! on the status and (when optimal) on the objective to 1e-12, and repeated
//! warm solves from the same start must replay **bit-identically** — the
//! pivots-as-clock determinism contract holds on the dual-simplex path too.
//!
//! Mutation kinds are chosen to exercise every dispatch arm of the warm
//! path: `cost` leaves the donor vertex primal-feasible (straight to
//! phase 2), `rhs`/`bound` typically leave it dual-feasible only (dual
//! simplex), and `drop-row` changes the standard-form shape so the basis no
//! longer fits and the solver must fall back to a cold solve internally.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use suu_lp::{
    solve_revised, solve_revised_with_basis, solve_warm, ConstraintOp, LpProblem, LpStatus, Sense,
    SimplexOptions, WarmStart,
};

/// A rebuildable LP description: mutations edit the spec and rebuild, since
/// [`LpProblem`] itself is append-only by design.
#[derive(Clone)]
struct Spec {
    sense: Sense,
    obj: Vec<f64>,
    #[allow(clippy::type_complexity)]
    rows: Vec<(Vec<(usize, f64)>, ConstraintOp, f64)>,
}

impl Spec {
    fn build(&self) -> LpProblem {
        let mut lp = LpProblem::new(self.sense);
        let vars: Vec<_> = (0..self.obj.len())
            .map(|i| lp.add_variable(format!("v{i}")))
            .collect();
        for (&v, &c) in vars.iter().zip(self.obj.iter()) {
            lp.set_objective_coefficient(v, c);
        }
        for (i, (terms, op, rhs)) in self.rows.iter().enumerate() {
            let terms: Vec<_> = terms.iter().map(|&(j, a)| (vars[j], a)).collect();
            lp.add_constraint(terms, *op, *rhs, format!("c{i}"));
        }
        lp
    }
}

/// Random LP. Seven in eight are covering-flavoured — minimise a positive
/// objective over `≥` rows with positive coefficients plus a few loose
/// capacity rows — so they are feasible and bounded, which is the warm
/// path's home turf. The eighth is a "wild" mix (signs, `=` rows, maximise)
/// so infeasible and unbounded verdicts stay represented in the battery.
fn random_spec(rng: &mut ChaCha8Rng) -> Spec {
    let nv = rng.gen_range(4..12);
    let nc = rng.gen_range(3..12);
    if rng.gen_bool(0.125) {
        return wild_spec(rng, nv, nc);
    }
    let obj: Vec<f64> = (0..nv).map(|_| rng.gen_range(0.2..3.0)).collect();
    let mut rows = Vec::new();
    for _ in 0..nc {
        let k = rng.gen_range(1..=3.min(nv));
        let mut picked = Vec::new();
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for _ in 0..k {
            let j = rng.gen_range(0..nv);
            if picked.contains(&j) {
                continue;
            }
            picked.push(j);
            terms.push((j, rng.gen_range(0.5..2.5)));
        }
        let (op, rhs) = if rng.gen_bool(0.7) {
            (ConstraintOp::Ge, rng.gen_range(0.5..4.0))
        } else {
            (ConstraintOp::Le, rng.gen_range(15.0..40.0))
        };
        rows.push((terms, op, rhs));
    }
    Spec {
        sense: Sense::Minimize,
        obj,
        rows,
    }
}

fn wild_spec(rng: &mut ChaCha8Rng, nv: usize, nc: usize) -> Spec {
    let sense = if rng.gen_bool(0.5) {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let obj: Vec<f64> = (0..nv).map(|_| rng.gen_range(-2.0..3.0)).collect();
    let mut rows = Vec::new();
    for _ in 0..nc {
        let k = rng.gen_range(1..=3.min(nv));
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for _ in 0..k {
            let j = rng.gen_range(0..nv);
            if terms.iter().any(|&(seen, _)| seen == j) {
                continue;
            }
            terms.push((j, rng.gen_range(-2.0..2.5)));
        }
        let op = match rng.gen_range(0..10) {
            0..=4 => ConstraintOp::Ge,
            5..=8 => ConstraintOp::Le,
            _ => ConstraintOp::Eq,
        };
        rows.push((terms, op, rng.gen_range(0.5..8.0)));
    }
    Spec { sense, obj, rows }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    Rhs,
    Cost,
    Bound,
    DropRow,
}

/// Applies one structured edit. `Bound` retunes a single-variable row when
/// one exists (the model's stand-in for a variable bound) and otherwise
/// appends a fresh upper bound — the append changes the standard-form shape,
/// which doubles as coverage of the basis-shape fallback.
fn mutate(spec: &Spec, kind: Mutation, rng: &mut ChaCha8Rng) -> Spec {
    let mut out = spec.clone();
    match kind {
        Mutation::Rhs => {
            // Biased towards *tightening* a covering row: that leaves the
            // donor vertex primal-infeasible but dual-feasible — the edit
            // the dual-simplex arm exists for.
            let i = rng.gen_range(0..out.rows.len());
            let bump = if rng.gen_bool(0.8) {
                rng.gen_range(0.3..2.5)
            } else {
                rng.gen_range(-1.5..0.0)
            };
            out.rows[i].2 = (out.rows[i].2 + bump).max(0.1);
        }
        Mutation::Cost => {
            let j = rng.gen_range(0..out.obj.len());
            out.obj[j] += rng.gen_range(-2.0..2.0);
        }
        Mutation::Bound => {
            if let Some(i) = out.rows.iter().position(|(terms, _, _)| terms.len() == 1) {
                out.rows[i].2 = (out.rows[i].2 + rng.gen_range(-1.0..1.0)).max(0.1);
            } else {
                let j = rng.gen_range(0..out.obj.len());
                out.rows
                    .push((vec![(j, 1.0)], ConstraintOp::Le, rng.gen_range(2.0..10.0)));
            }
        }
        Mutation::DropRow => {
            if out.rows.len() > 1 {
                let i = rng.gen_range(0..out.rows.len());
                out.rows.remove(i);
            } else {
                out.rows[0].2 = (out.rows[0].2 + 0.5).max(0.1);
            }
        }
    }
    out
}

fn opts() -> SimplexOptions {
    SimplexOptions::default()
}

#[test]
fn warm_matches_cold_across_mutations() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5747_4c50);
    let kinds = [
        Mutation::Rhs,
        Mutation::Cost,
        Mutation::Bound,
        Mutation::DropRow,
    ];
    let mut total = 0usize;
    let mut optimal_parents = 0usize;
    let mut captured = 0usize;
    let mut warm_used = 0usize;
    let mut warm_pivoted = 0usize;
    for case in 0..340 {
        let spec = random_spec(&mut rng);
        let parent = spec.build();
        let Ok(donor) = solve_revised_with_basis(&parent, &opts()) else {
            continue;
        };
        total += 1;
        if donor.solution.status == LpStatus::Optimal {
            optimal_parents += 1;
        }
        if donor.solution.status != LpStatus::Optimal || donor.basis.is_empty() {
            continue;
        }
        captured += 1;
        let basis = donor.basis.clone();
        let factors = donor.factors;

        let kind = kinds[case % kinds.len()];
        let child_spec = mutate(&spec, kind, &mut rng);
        let child = child_spec.build();
        let cold = solve_revised(&child, &opts()).expect("cold child solve");

        // Basis-only warm start, twice: parity against cold plus the
        // bit-identical replay check.
        let warm_a = solve_warm(
            &child,
            WarmStart {
                basis: basis.clone(),
                factors: None,
            },
            &opts(),
        )
        .expect("warm child solve");
        let warm_b = solve_warm(
            &child,
            WarmStart {
                basis: basis.clone(),
                factors: None,
            },
            &opts(),
        )
        .expect("warm child re-solve");

        assert_eq!(
            warm_a.solution.status, cold.status,
            "case {case} ({kind:?}): warm status {:?} vs cold {:?}",
            warm_a.solution.status, cold.status
        );
        if cold.status == LpStatus::Optimal {
            let tol = 1e-12 * (1.0 + cold.objective.abs());
            assert!(
                (warm_a.solution.objective - cold.objective).abs() <= tol,
                "case {case} ({kind:?}): warm {} vs cold {}",
                warm_a.solution.objective,
                cold.objective
            );
            assert!(
                child.is_feasible(&warm_a.solution.values, 1e-6),
                "case {case} ({kind:?}): warm vertex infeasible"
            );
        }

        // Determinism: identical warm inputs replay bit-for-bit.
        assert_eq!(warm_a.solution.iterations, warm_b.solution.iterations);
        assert_eq!(
            warm_a.solution.objective.to_bits(),
            warm_b.solution.objective.to_bits(),
            "case {case} ({kind:?}): warm replay objective drifted"
        );
        for (x, y) in warm_a
            .solution
            .values
            .iter()
            .zip(warm_b.solution.values.iter())
        {
            assert_eq!(x.to_bits(), y.to_bits(), "case {case}: replay value drift");
        }

        // Donor-factors warm start: same verdict and objective; the factors
        // are an optimisation, never allowed to change the answer beyond
        // the parity tolerance.
        let warm_f = solve_warm(&child, WarmStart { basis, factors }, &opts())
            .expect("warm child solve with factors");
        assert_eq!(
            warm_f.solution.status, cold.status,
            "case {case} ({kind:?}): factors-warm status diverged"
        );
        if cold.status == LpStatus::Optimal {
            let tol = 1e-12 * (1.0 + cold.objective.abs());
            assert!(
                (warm_f.solution.objective - cold.objective).abs() <= tol,
                "case {case} ({kind:?}): factors-warm {} vs cold {}",
                warm_f.solution.objective,
                cold.objective
            );
        }

        if warm_a.warm {
            warm_used += 1;
            if warm_a.solution.iterations > 0 {
                warm_pivoted += 1;
            }
        }
    }
    eprintln!(
        "warm_cold_parity: total={total} optimal_parents={optimal_parents} captured={captured} warm_used={warm_used} warm_pivoted={warm_pivoted}"
    );
    assert!(total >= 300, "battery shrank: only {total} LPs generated");
    // The battery is only meaningful if the warm path actually runs: most
    // optimal parents must warm-start their child, and a healthy share must
    // need real (dual or primal) pivots rather than a free re-read.
    assert!(
        warm_used >= 100,
        "warm path exercised on only {warm_used} cases"
    );
    assert!(
        warm_pivoted >= 20,
        "warm path pivoted on only {warm_pivoted} cases"
    );
}

/// The `drop-row` arm by construction mismatches the basis shape; pin down
/// that the fallback is silent, cold and correct.
#[test]
fn shape_mismatch_falls_back_cold() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD809);
    for case in 0..24 {
        let spec = random_spec(&mut rng);
        let parent = spec.build();
        let Ok(donor) = solve_revised_with_basis(&parent, &opts()) else {
            continue;
        };
        if donor.solution.status != LpStatus::Optimal || donor.basis.is_empty() {
            continue;
        }
        let child_spec = mutate(&spec, Mutation::DropRow, &mut rng);
        if child_spec.rows.len() == spec.rows.len() {
            continue; // degenerate single-row fallback edit
        }
        let child = child_spec.build();
        let cold = solve_revised(&child, &opts()).expect("cold solve");
        let warm = solve_warm(
            &child,
            WarmStart {
                basis: donor.basis,
                factors: donor.factors,
            },
            &opts(),
        )
        .expect("warm solve");
        assert!(!warm.warm, "case {case}: shape mismatch must report cold");
        assert_eq!(warm.solution.status, cold.status);
        if cold.status == LpStatus::Optimal {
            assert_eq!(
                warm.solution.objective.to_bits(),
                cold.objective.to_bits(),
                "case {case}: internal cold fallback must equal solve_revised exactly"
            );
        }
    }
}
