//! Allocation discipline for the revised engine's pivot loop, asserted with
//! a counting global allocator (referenced by the `revised` and `lu` module
//! docs).
//!
//! The claim under test is about *scaling*, not absolutes: building the
//! solver and the first factorisation may allocate freely (CSR assembly, LU
//! workspaces, pricing buffers), and the long-lived factor workspaces grow
//! amortised toward their fill high-water marks (Forrest–Tomlin spikes and
//! refactorisation fill push into per-row `Vec`s whose capacity persists).
//! What must NOT happen is a per-pivot temporary — any `Vec::new`, `clone`
//! or `collect` on the pivot path would cost ≥ 1 allocation per pivot
//! forever. We measure it directly: solve the same LP under increasing
//! `max_iterations` caps and compare the allocation counts of equal-width
//! pivot windows. The steady-state window must stay well under one
//! allocation per pivot, and the whole profile must be bit-deterministic.
//!
//! Everything lives in a single `#[test]` because the counter is a process
//! global: the default test harness runs `#[test]`s concurrently, and a
//! sibling test's allocations would show up in our windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use suu_lp::{solve_revised, ConstraintOp, LpError, LpProblem, Sense, SimplexOptions};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// A deterministic covering LP large enough that the revised engine needs
/// well over 240 pivots (two phases: the `Ge` rows plant artificials).
fn long_running_lp() -> LpProblem {
    let nv = 60;
    let nc = 80;
    let mut lp = LpProblem::new(Sense::Minimize);
    let vars: Vec<_> = (0..nv).map(|i| lp.add_variable(format!("x{i}"))).collect();
    let mut state = 0x5EEDu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for &v in &vars {
        lp.set_objective_coefficient(v, 1.0 + (next() % 100) as f64 / 50.0);
    }
    for c in 0..nc {
        // Each row covers 4 variables with positive weights: feasible (push
        // any cover high enough) and bounded below (minimisation, all
        // positive costs), so the solve runs to optimality if uncapped.
        let mut terms = Vec::new();
        for _ in 0..4 {
            let v = vars[(next() % nv as u64) as usize];
            if terms.iter().all(|&(w, _)| w != v) {
                terms.push((v, 0.5 + (next() % 100) as f64 / 40.0));
            }
        }
        lp.add_constraint(
            terms,
            ConstraintOp::Ge,
            1.0 + (c % 7) as f64,
            format!("r{c}"),
        );
    }
    lp
}

/// Runs the revised engine capped at `cap` pivots and returns the number of
/// allocator calls the solve made. The solve must actually hit the cap, so
/// every measured run executes exactly `cap` pivots down the same
/// deterministic path.
fn allocs_for_capped_solve(lp: &LpProblem, cap: usize) -> u64 {
    let options = SimplexOptions {
        max_iterations: Some(cap),
        ..SimplexOptions::default()
    };
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let outcome = solve_revised(lp, &options);
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    match outcome {
        Err(LpError::IterationLimit { limit }) => assert_eq!(limit, cap),
        other => panic!("expected the {cap}-pivot cap to trip, got {other:?}"),
    }
    after - before
}

#[test]
fn pivot_loop_performs_no_per_pivot_allocation() {
    let lp = long_running_lp();

    // Ladder of caps, each 60 pivots apart. The prefix of the pivot
    // sequence is identical across runs (pivots are the clock and options
    // only differ in the cap), so subtracting adjacent rungs isolates the
    // allocations attributable to 60 pivots of work — including the
    // data-driven refactorisations that fall inside the window.
    let a60 = allocs_for_capped_solve(&lp, 60);
    let a120 = allocs_for_capped_solve(&lp, 120);
    let a180 = allocs_for_capped_solve(&lp, 180);
    let a240 = allocs_for_capped_solve(&lp, 240);

    let windows = [a120 - a60, a180 - a120, a240 - a180];

    // Each windowed allocation is amortised workspace growth (factor fill
    // finding a new high-water mark). A single per-pivot temporary on the
    // hot path would add ≥ 60 to EVERY window; the measured profile sits
    // well under that early (capacity still warming) and decays from there,
    // so one allocation per pivot is a bright line between "amortised
    // growth" and "allocating pivot loop".
    for (i, &w) in windows.iter().enumerate() {
        assert!(
            w < 120,
            "window {i} allocated {w} times over 60 pivots (ladder: {a60} / {a120} / {a180} / {a240})"
        );
    }
    let late = windows[2];
    assert!(
        late < 60,
        "steady-state window allocated {late} times over 60 pivots — \
         at least one per-pivot allocation crept onto the hot path \
         (ladder: {a60} / {a120} / {a180} / {a240})"
    );

    // Allocation behaviour is part of the deterministic contract: the same
    // capped solve, repeated, must allocate the exact same number of times.
    let again = allocs_for_capped_solve(&lp, 240);
    assert_eq!(
        a240, again,
        "identical solves allocated differently ({a240} vs {again})"
    );

    // Sanity on the fixture itself: uncapped, the LP solves to optimality
    // (so the capped runs above were genuinely mid-pivot-loop snapshots,
    // not pathological cycling).
    let full = solve_revised(&lp, &SimplexOptions::default()).expect("uncapped solve");
    assert_eq!(full.status, suu_lp::LpStatus::Optimal);
}
