//! Primal-feasibility checks for the simplex solver.
//!
//! Every optimal solution the solver reports must satisfy all constraints and
//! the nonnegativity bounds — on fixed textbook models and on batteries of
//! randomly generated LPs that are feasible by construction.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use suu_lp::{solve, ConstraintOp, LpProblem, LpStatus, Sense, SimplexOptions};

const TOL: f64 = 1e-7;

#[test]
fn textbook_models_yield_primal_feasible_optima() {
    // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
    let mut lp = LpProblem::new(Sense::Maximize);
    let x = lp.add_variable("x");
    let y = lp.add_variable("y");
    lp.set_objective_coefficient(x, 3.0);
    lp.set_objective_coefficient(y, 5.0);
    lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0, "c1");
    lp.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0, "c2");
    lp.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0, "c3");
    let sol = solve(&lp, &SimplexOptions::default()).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(lp.is_feasible(&sol.values, TOL));

    // min 2x + 3y s.t. x + y ≥ 10, x ≥ 3 (phase-one path).
    let mut lp = LpProblem::new(Sense::Minimize);
    let x = lp.add_variable("x");
    let y = lp.add_variable("y");
    lp.set_objective_coefficient(x, 2.0);
    lp.set_objective_coefficient(y, 3.0);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0, "cover");
    lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0, "xmin");
    let sol = solve(&lp, &SimplexOptions::default()).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(lp.is_feasible(&sol.values, TOL));

    // Mixed operators including equalities.
    let mut lp = LpProblem::new(Sense::Minimize);
    let x = lp.add_variable("x");
    let y = lp.add_variable("y");
    let z = lp.add_variable("z");
    lp.set_objective_coefficient(x, 1.0);
    lp.set_objective_coefficient(y, 2.0);
    lp.set_objective_coefficient(z, 0.5);
    lp.add_constraint(
        vec![(x, 1.0), (y, 1.0), (z, 1.0)],
        ConstraintOp::Eq,
        6.0,
        "balance",
    );
    lp.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Ge, 1.0, "gap");
    lp.add_constraint(vec![(z, 1.0)], ConstraintOp::Le, 4.0, "zcap");
    let sol = solve(&lp, &SimplexOptions::default()).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(lp.is_feasible(&sol.values, TOL));
}

/// Random LPs, feasible by construction: draw a nonnegative witness `x0` and
/// set every `≤` right-hand side to `A·x0` plus nonnegative slack. `x = x0` is
/// then feasible, so the solver must report `Optimal` and its solution must be
/// primal feasible with objective no worse than the witness's.
#[test]
fn random_feasible_minimization_lps_return_feasible_optima() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x51b913);
    for trial in 0..40u64 {
        let num_vars = rng.gen_range(1..8);
        let num_constraints = rng.gen_range(1..10);
        let mut lp = LpProblem::new(Sense::Minimize);
        let vars: Vec<_> = (0..num_vars)
            .map(|k| lp.add_variable(format!("x{k}")))
            .collect();
        let witness: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(0.0..5.0)).collect();
        let costs: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(0.0..3.0)).collect();
        for (var, &c) in vars.iter().zip(&costs) {
            lp.set_objective_coefficient(*var, c);
        }
        for row in 0..num_constraints {
            let coeffs: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(-2.0..4.0)).collect();
            let lhs_at_witness: f64 = coeffs.iter().zip(&witness).map(|(a, x)| a * x).sum();
            let slack = rng.gen_range(0.0..2.0);
            let terms: Vec<_> = vars.iter().copied().zip(coeffs).collect();
            lp.add_constraint(
                terms,
                ConstraintOp::Le,
                lhs_at_witness + slack,
                format!("c{row}"),
            );
        }

        let sol = solve(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal, "trial {trial}");
        assert!(
            lp.is_feasible(&sol.values, TOL),
            "trial {trial}: reported optimum violates a constraint"
        );
        assert!(
            sol.values.iter().all(|&v| v >= -TOL),
            "trial {trial}: negative variable in solution"
        );
        let witness_objective: f64 = costs.iter().zip(&witness).map(|(c, x)| c * x).sum();
        assert!(
            sol.objective <= witness_objective + 1e-6,
            "trial {trial}: objective {} worse than witness {witness_objective}",
            sol.objective
        );
    }
}

/// Same battery with `≥` constraints and maximization, exercising phase one.
#[test]
fn random_feasible_maximization_lps_with_ge_constraints() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xfea51b1e);
    for trial in 0..40u64 {
        let num_vars = rng.gen_range(1..6);
        let num_constraints = rng.gen_range(1..8);
        let mut lp = LpProblem::new(Sense::Maximize);
        let vars: Vec<_> = (0..num_vars)
            .map(|k| lp.add_variable(format!("x{k}")))
            .collect();
        let witness: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(0.5..4.0)).collect();
        for var in &vars {
            // Maximize -Σ x (i.e. keep the problem bounded).
            lp.set_objective_coefficient(*var, -1.0);
        }
        for row in 0..num_constraints {
            let coeffs: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(0.0..3.0)).collect();
            let lhs_at_witness: f64 = coeffs.iter().zip(&witness).map(|(a, x)| a * x).sum();
            let slack = rng.gen_range(0.0..1.0);
            let terms: Vec<_> = vars.iter().copied().zip(coeffs).collect();
            lp.add_constraint(
                terms,
                ConstraintOp::Ge,
                (lhs_at_witness - slack).max(0.0),
                format!("c{row}"),
            );
        }

        let sol = solve(&lp, &SimplexOptions::default()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal, "trial {trial}");
        assert!(
            lp.is_feasible(&sol.values, TOL),
            "trial {trial}: reported optimum violates a constraint"
        );
    }
}
