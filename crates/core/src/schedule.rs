//! Schedules: oblivious schedules, pseudo-schedules and scheduling policies.
//!
//! The paper distinguishes three kinds of schedule:
//!
//! * a general **schedule** (Definition 2.1) specifies an assignment for every
//!   step and every possible set of unfinished jobs;
//! * a **regimen** (Definition 2.2) depends only on the unfinished set;
//! * an **oblivious schedule** (Definition 2.3) depends only on the step
//!   number, so it is a plain sequence of assignments.
//!
//! In code the general/regimen cases are captured by the
//! [`SchedulingPolicy`] trait — a callback that produces the next assignment
//! from the step number and the unfinished set — while oblivious schedules
//! are concrete data ([`ObliviousSchedule`]) that also implement the trait.
//! **Pseudo-schedules** (Definition 4.1), where a machine may be assigned a
//! set of jobs in one step, are represented by [`PseudoSchedule`]; they are an
//! intermediate artefact of the LP rounding and are flattened into feasible
//! oblivious schedules by the random-delay step in `suu-algorithms`.

use serde::{Deserialize, Serialize};

use crate::assignment::{Assignment, MultiAssignment};
use crate::ids::{JobId, MachineId};

/// The set of unfinished jobs, tracked as a membership mask.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSet {
    member: Vec<bool>,
    count: usize,
}

impl JobSet {
    /// The full set `{0, …, num_jobs−1}`.
    #[must_use]
    pub fn all(num_jobs: usize) -> Self {
        Self {
            member: vec![true; num_jobs],
            count: num_jobs,
        }
    }

    /// The empty set over a universe of `num_jobs` jobs.
    #[must_use]
    pub fn empty(num_jobs: usize) -> Self {
        Self {
            member: vec![false; num_jobs],
            count: 0,
        }
    }

    /// Builds a set from explicit members.
    #[must_use]
    pub fn from_members(num_jobs: usize, members: impl IntoIterator<Item = JobId>) -> Self {
        let mut set = Self::empty(num_jobs);
        for j in members {
            set.insert(j);
        }
        set
    }

    /// Size of the universe.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.member.len()
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether `job` is a member.
    #[must_use]
    pub fn contains(&self, job: JobId) -> bool {
        self.member[job.0]
    }

    /// Inserts `job`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, job: JobId) -> bool {
        if self.member[job.0] {
            false
        } else {
            self.member[job.0] = true;
            self.count += 1;
            true
        }
    }

    /// Removes `job`; returns `true` if it was present.
    pub fn remove(&mut self, job: JobId) -> bool {
        if self.member[job.0] {
            self.member[job.0] = false;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = JobId> + '_ {
        self.member
            .iter()
            .enumerate()
            .filter_map(|(j, &m)| m.then_some(JobId(j)))
    }

    /// A `finished[j]` mask: `true` for jobs *not* in the set. (The set is
    /// normally used to hold unfinished jobs.)
    #[must_use]
    pub fn complement_mask(&self) -> Vec<bool> {
        self.member.iter().map(|&m| !m).collect()
    }
}

/// A scheduling policy: given the step number and the current set of
/// unfinished jobs, produce the assignment for this step.
///
/// This is the executable form of the paper's schedules. Oblivious schedules
/// ignore the unfinished set; regimens ignore the step number; adaptive
/// algorithms (such as `SUU-I-ALG`, which reruns the greedy `MSM-ALG` on the
/// unfinished jobs every step) use both. The simulator in `suu-sim` drives any
/// `SchedulingPolicy` and takes care of ignoring assignments to finished or
/// not-yet-eligible jobs, as Definition 2.1 prescribes.
pub trait SchedulingPolicy {
    /// The assignment for step `step` (0-based) when `unfinished` is the set
    /// of unfinished jobs.
    fn assign(&mut self, step: usize, unfinished: &JobSet) -> Assignment;

    /// A short human-readable name for reports.
    fn name(&self) -> String {
        "policy".to_string()
    }
}

/// An oblivious schedule (Definition 2.3): one assignment per step,
/// independent of the execution history.
///
/// A finite oblivious schedule of length `T` is interpreted cyclically when
/// executed beyond `T` (the paper writes `Σ∞` for the infinite repetition of
/// `Σ`), which guarantees that every job keeps receiving machine-steps and the
/// expected makespan is finite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObliviousSchedule {
    num_machines: usize,
    steps: Vec<Assignment>,
}

impl ObliviousSchedule {
    /// Creates an empty schedule for `num_machines` machines.
    #[must_use]
    pub fn new(num_machines: usize) -> Self {
        Self {
            num_machines,
            steps: Vec::new(),
        }
    }

    /// Creates a schedule from explicit steps.
    ///
    /// # Panics
    ///
    /// Panics if the steps do not all have `num_machines` machines.
    #[must_use]
    pub fn from_steps(num_machines: usize, steps: Vec<Assignment>) -> Self {
        assert!(
            steps.iter().all(|s| s.num_machines() == num_machines),
            "all steps must cover the same machines"
        );
        Self {
            num_machines,
            steps,
        }
    }

    /// Number of machines.
    #[must_use]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Length `T` of the schedule (number of steps).
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends one step.
    ///
    /// # Panics
    ///
    /// Panics if the machine count differs.
    pub fn push_step(&mut self, step: Assignment) {
        assert_eq!(
            step.num_machines(),
            self.num_machines,
            "step must cover the same machines"
        );
        self.steps.push(step);
    }

    /// The assignment of step `t` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `t ≥ len()`.
    #[must_use]
    pub fn step(&self, t: usize) -> &Assignment {
        &self.steps[t]
    }

    /// The assignment used at step `t` when the schedule is repeated
    /// indefinitely (`Σ∞`). Returns an idle assignment for an empty schedule.
    #[must_use]
    pub fn step_cyclic(&self, t: usize) -> Assignment {
        if self.steps.is_empty() {
            Assignment::idle(self.num_machines)
        } else {
            self.steps[t % self.steps.len()].clone()
        }
    }

    /// All steps.
    #[must_use]
    pub fn steps(&self) -> &[Assignment] {
        &self.steps
    }

    /// Concatenation `self ∘ other` (run `self` first, then `other`).
    ///
    /// # Panics
    ///
    /// Panics if the machine counts differ.
    #[must_use]
    pub fn concat(&self, other: &Self) -> Self {
        assert_eq!(self.num_machines, other.num_machines);
        let mut steps = self.steps.clone();
        steps.extend(other.steps.iter().cloned());
        Self {
            num_machines: self.num_machines,
            steps,
        }
    }

    /// Replicates every *step* `factor` times in place (the "schedule
    /// replication" operation of §4.1: each step's machine assignment is
    /// repeated σ times before moving on).
    #[must_use]
    pub fn replicate_steps(&self, factor: usize) -> Self {
        let mut steps = Vec::with_capacity(self.steps.len() * factor);
        for s in &self.steps {
            for _ in 0..factor {
                steps.push(s.clone());
            }
        }
        Self {
            num_machines: self.num_machines,
            steps,
        }
    }

    /// Repeats the whole schedule `times` times (`Σ` → `Σ ∘ Σ ∘ …`).
    #[must_use]
    pub fn repeat_whole(&self, times: usize) -> Self {
        let mut steps = Vec::with_capacity(self.steps.len() * times);
        for _ in 0..times {
            steps.extend(self.steps.iter().cloned());
        }
        Self {
            num_machines: self.num_machines,
            steps,
        }
    }

    /// Load of a machine: the number of steps in which it is busy.
    #[must_use]
    pub fn load(&self, machine: MachineId) -> usize {
        self.steps
            .iter()
            .filter(|s| s.target(machine).is_some())
            .count()
    }

    /// Maximum load over all machines.
    #[must_use]
    pub fn max_load(&self) -> usize {
        (0..self.num_machines)
            .map(|i| self.load(MachineId(i)))
            .max()
            .unwrap_or(0)
    }
}

impl SchedulingPolicy for ObliviousSchedule {
    fn assign(&mut self, step: usize, _unfinished: &JobSet) -> Assignment {
        self.step_cyclic(step)
    }

    fn name(&self) -> String {
        format!("oblivious(len={})", self.len())
    }
}

/// A pseudo-schedule (Definition 4.1): per step, each machine may be assigned
/// a *set* of jobs. Produced by the LP rounding of Theorem 4.1; not directly
/// executable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PseudoSchedule {
    num_machines: usize,
    steps: Vec<MultiAssignment>,
}

impl PseudoSchedule {
    /// Creates an empty pseudo-schedule.
    #[must_use]
    pub fn new(num_machines: usize) -> Self {
        Self {
            num_machines,
            steps: Vec::new(),
        }
    }

    /// Creates a pseudo-schedule of `length` idle steps.
    #[must_use]
    pub fn idle(num_machines: usize, length: usize) -> Self {
        Self {
            num_machines,
            steps: vec![MultiAssignment::idle(num_machines); length],
        }
    }

    /// Number of machines.
    #[must_use]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Length (number of steps).
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether there are no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The multi-assignment of step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t ≥ len()`.
    #[must_use]
    pub fn step(&self, t: usize) -> &MultiAssignment {
        &self.steps[t]
    }

    /// All steps.
    #[must_use]
    pub fn steps(&self) -> &[MultiAssignment] {
        &self.steps
    }

    /// Appends a step.
    ///
    /// # Panics
    ///
    /// Panics if the machine count differs.
    pub fn push_step(&mut self, step: MultiAssignment) {
        assert_eq!(step.num_machines(), self.num_machines);
        self.steps.push(step);
    }

    /// Ensures the schedule has at least `length` steps by appending idle
    /// steps.
    pub fn extend_to(&mut self, length: usize) {
        while self.steps.len() < length {
            self.steps.push(MultiAssignment::idle(self.num_machines));
        }
    }

    /// Assigns `machine` to `job` during every step in `[start, end)`,
    /// extending the schedule as needed.
    pub fn assign_interval(&mut self, machine: MachineId, job: JobId, start: usize, end: usize) {
        self.extend_to(end);
        for t in start..end {
            self.steps[t].add(machine, job);
        }
    }

    /// Unions another pseudo-schedule into this one, offsetting the other's
    /// steps by `offset` (used to overlay the per-chain schedules `f^k_t` of
    /// Theorem 4.1 and to apply chain delays).
    ///
    /// # Panics
    ///
    /// Panics if the machine counts differ.
    pub fn union_with_offset(&mut self, other: &Self, offset: usize) {
        assert_eq!(self.num_machines, other.num_machines);
        self.extend_to(offset + other.len());
        for (t, step) in other.steps.iter().enumerate() {
            self.steps[offset + t].union_with(step);
        }
    }

    /// Total load of a machine: the number of `(step, job)` assignments it
    /// receives (Definition 4.2).
    #[must_use]
    pub fn load(&self, machine: MachineId) -> usize {
        self.steps.iter().map(|s| s.congestion(machine)).sum()
    }

    /// Maximum load over machines (the load of the pseudo-schedule,
    /// Definition 4.2).
    #[must_use]
    pub fn max_load(&self) -> usize {
        (0..self.num_machines)
            .map(|i| self.load(MachineId(i)))
            .max()
            .unwrap_or(0)
    }

    /// Maximum *congestion*: the largest number of jobs assigned to a single
    /// machine in a single step. A pseudo-schedule is a feasible oblivious
    /// schedule iff this is ≤ 1.
    #[must_use]
    pub fn max_congestion(&self) -> usize {
        self.steps
            .iter()
            .map(MultiAssignment::max_congestion)
            .max()
            .unwrap_or(0)
    }

    /// Converts to an [`ObliviousSchedule`] if every step is feasible.
    #[must_use]
    pub fn to_oblivious(&self) -> Option<ObliviousSchedule> {
        let mut steps = Vec::with_capacity(self.steps.len());
        for s in &self.steps {
            steps.push(s.to_assignment()?);
        }
        Some(ObliviousSchedule::from_steps(self.num_machines, steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobset_insert_remove_and_iterate() {
        let mut s = JobSet::all(4);
        assert_eq!(s.len(), 4);
        assert!(s.remove(JobId(2)));
        assert!(!s.remove(JobId(2)));
        assert!(!s.contains(JobId(2)));
        assert_eq!(s.len(), 3);
        assert!(s.insert(JobId(2)));
        assert!(!s.insert(JobId(2)));
        let members: Vec<JobId> = s.iter().collect();
        assert_eq!(members, vec![JobId(0), JobId(1), JobId(2), JobId(3)]);
    }

    #[test]
    fn jobset_complement_mask() {
        let s = JobSet::from_members(3, [JobId(0), JobId(2)]);
        assert_eq!(s.complement_mask(), vec![false, true, false]);
        assert_eq!(s.universe(), 3);
        assert!(!s.is_empty());
        assert!(JobSet::empty(2).is_empty());
    }

    #[test]
    fn oblivious_schedule_push_and_index() {
        let mut sched = ObliviousSchedule::new(2);
        assert!(sched.is_empty());
        let mut a = Assignment::idle(2);
        a.assign(MachineId(0), JobId(1));
        sched.push_step(a.clone());
        assert_eq!(sched.len(), 1);
        assert_eq!(sched.step(0), &a);
    }

    #[test]
    #[should_panic(expected = "same machines")]
    fn push_step_with_wrong_machine_count_panics() {
        let mut sched = ObliviousSchedule::new(2);
        sched.push_step(Assignment::idle(3));
    }

    #[test]
    fn cyclic_step_wraps_around() {
        let mut sched = ObliviousSchedule::new(1);
        let mut a0 = Assignment::idle(1);
        a0.assign(MachineId(0), JobId(0));
        let a1 = Assignment::idle(1);
        sched.push_step(a0.clone());
        sched.push_step(a1.clone());
        assert_eq!(sched.step_cyclic(0), a0);
        assert_eq!(sched.step_cyclic(5), a1);
        assert_eq!(sched.step_cyclic(6), a0);
        assert_eq!(
            ObliviousSchedule::new(3).step_cyclic(10),
            Assignment::idle(3)
        );
    }

    #[test]
    fn concat_replicate_and_repeat() {
        let mut a = Assignment::idle(1);
        a.assign(MachineId(0), JobId(0));
        let b = Assignment::idle(1);
        let s1 = ObliviousSchedule::from_steps(1, vec![a.clone()]);
        let s2 = ObliviousSchedule::from_steps(1, vec![b.clone()]);
        let cat = s1.concat(&s2);
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.step(0), &a);
        assert_eq!(cat.step(1), &b);

        let rep = cat.replicate_steps(3);
        assert_eq!(rep.len(), 6);
        assert_eq!(rep.step(0), &a);
        assert_eq!(rep.step(2), &a);
        assert_eq!(rep.step(3), &b);

        let whole = cat.repeat_whole(2);
        assert_eq!(whole.len(), 4);
        assert_eq!(whole.step(2), &a);
    }

    #[test]
    fn load_counts_busy_steps() {
        let mut a = Assignment::idle(2);
        a.assign(MachineId(0), JobId(0));
        let mut b = Assignment::idle(2);
        b.assign(MachineId(0), JobId(1));
        b.assign(MachineId(1), JobId(1));
        let sched = ObliviousSchedule::from_steps(2, vec![a, b]);
        assert_eq!(sched.load(MachineId(0)), 2);
        assert_eq!(sched.load(MachineId(1)), 1);
        assert_eq!(sched.max_load(), 2);
    }

    #[test]
    fn oblivious_schedule_is_a_policy() {
        let mut a = Assignment::idle(1);
        a.assign(MachineId(0), JobId(0));
        let mut sched = ObliviousSchedule::from_steps(1, vec![a.clone()]);
        let unfinished = JobSet::all(1);
        assert_eq!(sched.assign(0, &unfinished), a);
        assert_eq!(sched.assign(7, &unfinished), a);
        assert!(sched.name().contains("oblivious"));
    }

    #[test]
    fn pseudo_schedule_assign_interval_and_load() {
        let mut ps = PseudoSchedule::new(2);
        ps.assign_interval(MachineId(0), JobId(0), 0, 3);
        ps.assign_interval(MachineId(0), JobId(1), 2, 4);
        ps.assign_interval(MachineId(1), JobId(1), 1, 2);
        assert_eq!(ps.len(), 4);
        assert_eq!(ps.load(MachineId(0)), 5);
        assert_eq!(ps.load(MachineId(1)), 1);
        assert_eq!(ps.max_load(), 5);
        assert_eq!(ps.max_congestion(), 2); // step 2 has jobs 0 and 1 on machine 0
        assert!(ps.to_oblivious().is_none());
    }

    #[test]
    fn feasible_pseudo_schedule_converts_to_oblivious() {
        let mut ps = PseudoSchedule::new(2);
        ps.assign_interval(MachineId(0), JobId(0), 0, 2);
        ps.assign_interval(MachineId(1), JobId(1), 0, 1);
        assert_eq!(ps.max_congestion(), 1);
        let ob = ps.to_oblivious().unwrap();
        assert_eq!(ob.len(), 2);
        assert_eq!(ob.step(0).target(MachineId(0)), Some(JobId(0)));
        assert_eq!(ob.step(1).target(MachineId(1)), None);
    }

    #[test]
    fn union_with_offset_overlays_schedules() {
        let mut a = PseudoSchedule::new(1);
        a.assign_interval(MachineId(0), JobId(0), 0, 2);
        let mut b = PseudoSchedule::new(1);
        b.assign_interval(MachineId(0), JobId(1), 0, 2);
        a.union_with_offset(&b, 1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.step(0).congestion(MachineId(0)), 1);
        assert_eq!(a.step(1).congestion(MachineId(0)), 2);
        assert_eq!(a.step(2).congestion(MachineId(0)), 1);
    }

    #[test]
    fn oblivious_schedule_serde_roundtrip() {
        let mut a = Assignment::idle(2);
        a.assign(MachineId(0), JobId(1));
        let mut b = Assignment::idle(2);
        b.assign(MachineId(1), JobId(0));
        let sched = ObliviousSchedule::from_steps(2, vec![a, b]);
        let json = serde_json::to_string(&sched).unwrap();
        let back: ObliviousSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(sched, back);
        assert_eq!(back.num_machines(), 2);
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn pseudo_schedule_serde_roundtrip() {
        let mut ps = PseudoSchedule::new(2);
        ps.assign_interval(MachineId(0), JobId(0), 0, 2);
        ps.assign_interval(MachineId(0), JobId(1), 1, 3);
        ps.assign_interval(MachineId(1), JobId(2), 0, 1);
        let json = serde_json::to_string(&ps).unwrap();
        let back: PseudoSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(ps, back);
        assert_eq!(back.max_congestion(), ps.max_congestion());
    }

    #[test]
    fn jobset_serde_roundtrip() {
        let s = JobSet::from_members(5, [JobId(1), JobId(4)]);
        let json = serde_json::to_string(&s).unwrap();
        let back: JobSet = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn idle_pseudo_schedule_has_zero_load() {
        let ps = PseudoSchedule::idle(3, 5);
        assert_eq!(ps.len(), 5);
        assert_eq!(ps.max_load(), 0);
        assert_eq!(ps.max_congestion(), 0);
        assert!(ps.to_oblivious().is_some());
    }
}
