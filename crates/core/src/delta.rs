//! Structured instance deltas: small edits applied to a parent
//! [`SuuInstance`] instead of resubmitting the whole instance.
//!
//! Real tenants mutate instances — one `p_ij` drifts, a job lands or
//! completes, a machine drains — and the service's warm-start path solves the
//! mutated instance from the parent's cached basis. A delta is the wire-level
//! description of such an edit batch. Application is **pure** (the parent is
//! untouched), **deterministic** (a fixed edit order, documented on
//! [`SuuInstance::apply_delta`]) and **total**: every malformed delta is
//! rejected with a structured [`DeltaError`], never a panic, and the result is
//! revalidated through [`SuuInstance::new`] so an applied delta can only ever
//! produce a valid instance.

use serde::{DeError, Deserialize, Serialize, Value};
use suu_graph::{Dag, DagError};

use crate::error::InstanceError;
use crate::instance::SuuInstance;

/// An edit batch against a parent instance.
///
/// All indices are `usize` job/machine positions. `set_prob` and `add_edge`
/// address the instance *after* `add_machine`/`add_job` have been applied, so
/// a single delta can add a job and immediately set extra probabilities or
/// precedence edges for it; `remove_job`/`drain_machine` run last. See
/// [`SuuInstance::apply_delta`] for the full order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InstanceDelta {
    /// Probability overwrites `(machine, job, p)`. At most one entry per
    /// cell — duplicates are ambiguous and rejected.
    pub set_prob: Vec<(usize, usize, f64)>,
    /// Appends one job (taking the next job index) with the given
    /// per-machine success probabilities (length = machine count after
    /// `add_machine`).
    pub add_job: Option<Vec<f64>>,
    /// Removes the job with this index; later jobs shift down by one and
    /// edges incident to the removed job are dropped.
    pub remove_job: Option<usize>,
    /// Removes (drains) the machine with this index; later machines shift
    /// down by one.
    pub drain_machine: Option<usize>,
    /// Appends one machine (taking the next machine index) with the given
    /// per-job success probabilities (length = the parent's job count).
    pub add_machine: Option<Vec<f64>>,
    /// Precedence edges to add, as `(predecessor, successor)` job indices.
    pub add_edge: Vec<(usize, usize)>,
}

impl InstanceDelta {
    /// `true` when the delta contains no edits at all (applying it returns a
    /// logically identical instance).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set_prob.is_empty()
            && self.add_job.is_none()
            && self.remove_job.is_none()
            && self.drain_machine.is_none()
            && self.add_machine.is_none()
            && self.add_edge.is_empty()
    }
}

/// Why a delta could not be applied. Every variant names the offending edit;
/// application never panics on malformed input.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// An edit referenced a job index that does not exist (at the point in
    /// the edit order where the edit runs).
    UnknownJob {
        /// The offending job index.
        job: usize,
        /// Number of jobs at that point.
        num_jobs: usize,
    },
    /// An edit referenced a machine index that does not exist.
    UnknownMachine {
        /// The offending machine index.
        machine: usize,
        /// Number of machines at that point.
        num_machines: usize,
    },
    /// A probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Machine index of the offending entry.
        machine: usize,
        /// Job index of the offending entry.
        job: usize,
        /// The offending value.
        value: f64,
    },
    /// Two `set_prob` entries addressed the same cell — ambiguous, rejected.
    DuplicateCell {
        /// Machine index of the duplicated cell.
        machine: usize,
        /// Job index of the duplicated cell.
        job: usize,
    },
    /// `add_job` supplied the wrong number of per-machine probabilities.
    AddJobArity {
        /// Machine count the row must match.
        expected: usize,
        /// Length supplied.
        actual: usize,
    },
    /// `add_machine` supplied the wrong number of per-job probabilities.
    AddMachineArity {
        /// Job count the row must match.
        expected: usize,
        /// Length supplied.
        actual: usize,
    },
    /// An `add_edge` entry was a self-loop.
    SelfEdge {
        /// The job with the self-loop.
        job: usize,
    },
    /// Adding the requested edges would create a directed cycle.
    EdgeCreatesCycle {
        /// One job known to lie on the cycle.
        witness: usize,
    },
    /// The edits were individually well-formed but the resulting instance is
    /// invalid (empty, or a job left unschedulable by a drain).
    Invalid(InstanceError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownJob { job, num_jobs } => {
                write!(
                    f,
                    "delta references job {job} but instance has {num_jobs} jobs"
                )
            }
            Self::UnknownMachine {
                machine,
                num_machines,
            } => write!(
                f,
                "delta references machine {machine} but instance has {num_machines} machines"
            ),
            Self::InvalidProbability {
                machine,
                job,
                value,
            } => write!(
                f,
                "delta sets p[{machine},{job}] = {value}, not a probability"
            ),
            Self::DuplicateCell { machine, job } => {
                write!(f, "delta sets p[{machine},{job}] twice")
            }
            Self::AddJobArity { expected, actual } => write!(
                f,
                "add_job supplies {actual} probabilities, expected {expected} (one per machine)"
            ),
            Self::AddMachineArity { expected, actual } => write!(
                f,
                "add_machine supplies {actual} probabilities, expected {expected} (one per job)"
            ),
            Self::SelfEdge { job } => write!(f, "add_edge contains self-loop on job {job}"),
            Self::EdgeCreatesCycle { witness } => {
                write!(
                    f,
                    "add_edge creates a precedence cycle through job {witness}"
                )
            }
            Self::Invalid(err) => write!(f, "delta produces an invalid instance: {err}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl SuuInstance {
    /// Applies `delta` to `self`, returning the mutated instance. `self` is
    /// untouched.
    ///
    /// Edits run in a fixed, documented order:
    ///
    /// 1. `add_machine` (the new machine takes the next machine index),
    /// 2. `add_job` (the new job takes the next job index, no edges),
    /// 3. `set_prob` (addresses the post-addition instance),
    /// 4. `add_edge` (post-addition job indices),
    /// 5. `remove_job` (later jobs shift down, incident edges drop),
    /// 6. `drain_machine` (later machines shift down).
    ///
    /// The result passes [`SuuInstance::new`] validation, so downstream code
    /// can rely on every invariant a freshly built instance has.
    ///
    /// # Errors
    ///
    /// Returns a [`DeltaError`] naming the offending edit; never panics on
    /// malformed deltas.
    pub fn apply_delta(&self, delta: &InstanceDelta) -> Result<Self, DeltaError> {
        let mut n = self.num_jobs();
        let mut m = self.num_machines();
        let mut probs: Vec<f64> = Vec::with_capacity((m + 1) * (n + 1));
        for i in 0..m {
            for j in 0..n {
                probs.push(self.prob(crate::MachineId(i), crate::JobId(j)));
            }
        }
        let mut edges = self.precedence().edges();

        let check_prob = |machine: usize, job: usize, p: f64| {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(DeltaError::InvalidProbability {
                    machine,
                    job,
                    value: p,
                });
            }
            Ok(())
        };

        // 1. add_machine: one new row of per-job probabilities.
        if let Some(row) = &delta.add_machine {
            if row.len() != n {
                return Err(DeltaError::AddMachineArity {
                    expected: n,
                    actual: row.len(),
                });
            }
            for (j, &p) in row.iter().enumerate() {
                check_prob(m, j, p)?;
            }
            probs.extend_from_slice(row);
            m += 1;
        }

        // 2. add_job: one new column of per-machine probabilities.
        if let Some(col) = &delta.add_job {
            if col.len() != m {
                return Err(DeltaError::AddJobArity {
                    expected: m,
                    actual: col.len(),
                });
            }
            for (i, &p) in col.iter().enumerate() {
                check_prob(i, n, p)?;
            }
            let mut grown = Vec::with_capacity(m * (n + 1));
            for i in 0..m {
                grown.extend_from_slice(&probs[i * n..(i + 1) * n]);
                grown.push(col[i]);
            }
            probs = grown;
            n += 1;
        }

        // 3. set_prob overwrites, at most one per cell.
        for (idx, &(i, j, p)) in delta.set_prob.iter().enumerate() {
            if i >= m {
                return Err(DeltaError::UnknownMachine {
                    machine: i,
                    num_machines: m,
                });
            }
            if j >= n {
                return Err(DeltaError::UnknownJob {
                    job: j,
                    num_jobs: n,
                });
            }
            check_prob(i, j, p)?;
            if delta.set_prob[..idx]
                .iter()
                .any(|&(pi, pj, _)| pi == i && pj == j)
            {
                return Err(DeltaError::DuplicateCell { machine: i, job: j });
            }
            probs[i * n + j] = p;
        }

        // 4. add_edge: range/self-loop checks up front, cycle detection by
        // the DAG constructor below (a cycle can span old and new edges).
        for &(u, v) in &delta.add_edge {
            if u >= n {
                return Err(DeltaError::UnknownJob {
                    job: u,
                    num_jobs: n,
                });
            }
            if v >= n {
                return Err(DeltaError::UnknownJob {
                    job: v,
                    num_jobs: n,
                });
            }
            if u == v {
                return Err(DeltaError::SelfEdge { job: u });
            }
            edges.push((u, v));
        }

        // 5. remove_job: drop the column, drop incident edges, shift later
        // job indices down.
        if let Some(job) = delta.remove_job {
            if job >= n {
                return Err(DeltaError::UnknownJob { job, num_jobs: n });
            }
            let mut shrunk = Vec::with_capacity(m * (n - 1));
            for i in 0..m {
                for j in 0..n {
                    if j != job {
                        shrunk.push(probs[i * n + j]);
                    }
                }
            }
            probs = shrunk;
            edges.retain(|&(u, v)| u != job && v != job);
            let shift = |x: usize| if x > job { x - 1 } else { x };
            for e in &mut edges {
                *e = (shift(e.0), shift(e.1));
            }
            n -= 1;
        }

        // 6. drain_machine: drop the row.
        if let Some(machine) = delta.drain_machine {
            if machine >= m {
                return Err(DeltaError::UnknownMachine {
                    machine,
                    num_machines: m,
                });
            }
            probs.drain(machine * n..(machine + 1) * n);
            m -= 1;
        }

        if n == 0 || m == 0 {
            return Err(DeltaError::Invalid(InstanceError::Empty));
        }

        let dag = Dag::from_edges(n, edges).map_err(|err| match err {
            DagError::SelfLoop(job) => DeltaError::SelfEdge { job },
            DagError::Cycle { witness } => DeltaError::EdgeCreatesCycle { witness },
            DagError::NodeOutOfRange { node, num_nodes } => DeltaError::UnknownJob {
                job: node,
                num_jobs: num_nodes,
            },
        })?;
        SuuInstance::new(n, m, probs, dag).map_err(DeltaError::Invalid)
    }
}

/// Wire format: `{"set_prob":[[i,j,p]],"add_job":[p...],"remove_job":j,
/// "drain_machine":i,"add_machine":[p...],"add_edge":[[u,v]]}` with every
/// field optional and omitted when absent/empty.
impl Serialize for InstanceDelta {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        if !self.set_prob.is_empty() {
            let entries = self
                .set_prob
                .iter()
                .map(|&(i, j, p)| {
                    Value::Array(vec![
                        Value::Number(i as f64),
                        Value::Number(j as f64),
                        Value::Number(p),
                    ])
                })
                .collect();
            fields.push((String::from("set_prob"), Value::Array(entries)));
        }
        if let Some(col) = &self.add_job {
            fields.push((String::from("add_job"), col.to_value()));
        }
        if let Some(job) = self.remove_job {
            fields.push((String::from("remove_job"), Value::Number(job as f64)));
        }
        if let Some(machine) = self.drain_machine {
            fields.push((String::from("drain_machine"), Value::Number(machine as f64)));
        }
        if let Some(row) = &self.add_machine {
            fields.push((String::from("add_machine"), row.to_value()));
        }
        if !self.add_edge.is_empty() {
            let entries = self
                .add_edge
                .iter()
                .map(|&(u, v)| Value::Array(vec![Value::Number(u as f64), Value::Number(v as f64)]))
                .collect();
            fields.push((String::from("add_edge"), Value::Array(entries)));
        }
        Value::Object(fields)
    }
}

impl Deserialize for InstanceDelta {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let Value::Object(_) = v else {
            return Err(DeError::new("delta must be an object"));
        };
        let index = |value: &Value, what: &str| -> Result<usize, DeError> {
            let n = value
                .as_number()
                .ok_or_else(|| DeError::new(format!("{what} must be a number")))?;
            if n.fract() != 0.0 || !(0.0..=(1u64 << 53) as f64).contains(&n) {
                return Err(DeError::new(format!(
                    "{what} must be a non-negative integer"
                )));
            }
            Ok(n as usize)
        };
        let mut delta = InstanceDelta::default();
        if let Some(raw) = v.get("set_prob") {
            let Value::Array(entries) = raw else {
                return Err(DeError::new(
                    "set_prob must be an array of [i, j, p] triples",
                ));
            };
            for entry in entries {
                let Value::Array(triple) = entry else {
                    return Err(DeError::new("set_prob entry must be [i, j, p]"));
                };
                if triple.len() != 3 {
                    return Err(DeError::new("set_prob entry must be [i, j, p]"));
                }
                let i = index(&triple[0], "set_prob machine")?;
                let j = index(&triple[1], "set_prob job")?;
                let p = triple[2]
                    .as_number()
                    .ok_or_else(|| DeError::new("set_prob probability must be a number"))?;
                delta.set_prob.push((i, j, p));
            }
        }
        if let Some(raw) = v.get("add_job") {
            delta.add_job = Some(Vec::from_value(raw)?);
        }
        if let Some(raw) = v.get("remove_job") {
            delta.remove_job = Some(index(raw, "remove_job")?);
        }
        if let Some(raw) = v.get("drain_machine") {
            delta.drain_machine = Some(index(raw, "drain_machine")?);
        }
        if let Some(raw) = v.get("add_machine") {
            delta.add_machine = Some(Vec::from_value(raw)?);
        }
        if let Some(raw) = v.get("add_edge") {
            let Value::Array(entries) = raw else {
                return Err(DeError::new("add_edge must be an array of [u, v] pairs"));
            };
            for entry in entries {
                let Value::Array(pair) = entry else {
                    return Err(DeError::new("add_edge entry must be [u, v]"));
                };
                if pair.len() != 2 {
                    return Err(DeError::new("add_edge entry must be [u, v]"));
                }
                let u = index(&pair[0], "add_edge predecessor")?;
                let v2 = index(&pair[1], "add_edge successor")?;
                delta.add_edge.push((u, v2));
            }
        }
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstanceBuilder, JobId, MachineId};

    fn base() -> SuuInstance {
        InstanceBuilder::new(3, 2)
            .probability(MachineId(0), JobId(0), 0.9)
            .probability(MachineId(0), JobId(1), 0.5)
            .probability(MachineId(1), JobId(1), 0.7)
            .probability(MachineId(1), JobId(2), 0.2)
            .probability(MachineId(0), JobId(2), 0.1)
            .chains(&[vec![0, 1]])
            .build()
            .unwrap()
    }

    #[test]
    fn set_prob_overwrites_one_cell() {
        let delta = InstanceDelta {
            set_prob: vec![(1, 2, 0.8)],
            ..Default::default()
        };
        let child = base().apply_delta(&delta).unwrap();
        assert_eq!(child.prob(MachineId(1), JobId(2)), 0.8);
        assert_eq!(child.prob(MachineId(0), JobId(0)), 0.9);
        assert_eq!(child.num_jobs(), 3);
    }

    #[test]
    fn add_and_remove_reshape_the_instance() {
        let delta = InstanceDelta {
            add_job: Some(vec![0.3, 0.4]),
            add_edge: vec![(2, 3)],
            ..Default::default()
        };
        let child = base().apply_delta(&delta).unwrap();
        assert_eq!(child.num_jobs(), 4);
        assert!(child.precedence().has_edge(2, 3));
        assert_eq!(child.prob(MachineId(1), JobId(3)), 0.4);

        let removed = child
            .apply_delta(&InstanceDelta {
                remove_job: Some(0),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(removed.num_jobs(), 3);
        // Job 1's edges to job 0 dropped; the 2→3 edge shifted to 1→2.
        assert!(removed.precedence().has_edge(1, 2));
        assert_eq!(removed.prob(MachineId(0), JobId(0)), 0.5);
    }

    #[test]
    fn drain_leaving_unschedulable_job_is_rejected() {
        // Job 0 only has positive probability on machine 0.
        let err = base()
            .apply_delta(&InstanceDelta {
                drain_machine: Some(0),
                ..Default::default()
            })
            .unwrap_err();
        assert!(matches!(
            err,
            DeltaError::Invalid(InstanceError::UnschedulableJob { .. })
        ));
    }

    #[test]
    fn structured_rejections() {
        let inst = base();
        assert!(matches!(
            inst.apply_delta(&InstanceDelta {
                set_prob: vec![(5, 0, 0.5)],
                ..Default::default()
            }),
            Err(DeltaError::UnknownMachine {
                machine: 5,
                num_machines: 2
            })
        ));
        assert!(matches!(
            inst.apply_delta(&InstanceDelta {
                set_prob: vec![(0, 9, 0.5)],
                ..Default::default()
            }),
            Err(DeltaError::UnknownJob {
                job: 9,
                num_jobs: 3
            })
        ));
        assert!(matches!(
            inst.apply_delta(&InstanceDelta {
                set_prob: vec![(0, 0, 1.5)],
                ..Default::default()
            }),
            Err(DeltaError::InvalidProbability { .. })
        ));
        assert!(matches!(
            inst.apply_delta(&InstanceDelta {
                set_prob: vec![(0, 0, 0.1), (0, 0, 0.2)],
                ..Default::default()
            }),
            Err(DeltaError::DuplicateCell { machine: 0, job: 0 })
        ));
        assert!(matches!(
            inst.apply_delta(&InstanceDelta {
                add_edge: vec![(1, 0)],
                ..Default::default()
            }),
            Err(DeltaError::EdgeCreatesCycle { .. })
        ));
        assert!(matches!(
            inst.apply_delta(&InstanceDelta {
                add_edge: vec![(2, 2)],
                ..Default::default()
            }),
            Err(DeltaError::SelfEdge { job: 2 })
        ));
    }

    #[test]
    fn serde_roundtrip_preserves_every_field() {
        let delta = InstanceDelta {
            set_prob: vec![(0, 1, 0.25), (1, 0, 0.75)],
            add_job: Some(vec![0.1, 0.2]),
            remove_job: Some(2),
            drain_machine: Some(1),
            add_machine: Some(vec![0.3, 0.4, 0.5]),
            add_edge: vec![(0, 1), (1, 2)],
        };
        let back = InstanceDelta::from_value(&delta.to_value()).unwrap();
        assert_eq!(delta, back);

        let empty = InstanceDelta::default();
        assert!(empty.is_empty());
        let back = InstanceDelta::from_value(&empty.to_value()).unwrap();
        assert!(back.is_empty());
    }
}
