//! SUU problem instances and their builder.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};
use suu_graph::{Dag, ForestKind};

use crate::error::InstanceError;
use crate::ids::{JobId, MachineId};

/// Lazily built sparse index over the positive entries of the probability
/// matrix, in compressed-sparse-row form along both axes plus the globally
/// sorted entry list. Realistic multi-tenant instances have per-job machine
/// eligibility that is O(log m), not O(m), so the algorithms' hot loops must
/// iterate non-zeros — never scan the dense matrix.
#[derive(Debug, Clone)]
struct ProbIndex {
    /// `machine_ptr[i]..machine_ptr[i + 1]` indexes `machine_entries`:
    /// the jobs machine `i` can work on, in increasing job order.
    machine_ptr: Vec<usize>,
    machine_entries: Vec<(JobId, f64)>,
    /// `job_ptr[j]..job_ptr[j + 1]` indexes `job_entries`: the machines
    /// capable of job `j`, in increasing machine order.
    job_ptr: Vec<usize>,
    job_entries: Vec<(MachineId, f64)>,
    /// Every positive entry, sorted by decreasing probability (ties keep
    /// machine-major insertion order) — the processing order of MSM-ALG and
    /// MSM-E-ALG.
    sorted: Vec<(MachineId, JobId, f64)>,
}

impl ProbIndex {
    fn build(num_jobs: usize, num_machines: usize, probs: &[f64]) -> Self {
        let mut machine_ptr = Vec::with_capacity(num_machines + 1);
        let mut machine_entries = Vec::new();
        let mut job_counts = vec![0usize; num_jobs + 1];
        machine_ptr.push(0);
        for i in 0..num_machines {
            for j in 0..num_jobs {
                let p = probs[i * num_jobs + j];
                if p > 0.0 {
                    machine_entries.push((JobId(j), p));
                    job_counts[j + 1] += 1;
                }
            }
            machine_ptr.push(machine_entries.len());
        }
        for j in 0..num_jobs {
            job_counts[j + 1] += job_counts[j];
        }
        let job_ptr = job_counts.clone();
        let mut cursor = job_counts;
        let mut job_entries = vec![(MachineId(0), 0.0); machine_entries.len()];
        for i in 0..num_machines {
            for &(j, p) in &machine_entries[machine_ptr[i]..machine_ptr[i + 1]] {
                job_entries[cursor[j.0]] = (MachineId(i), p);
                cursor[j.0] += 1;
            }
        }
        let mut sorted: Vec<(MachineId, JobId, f64)> = Vec::with_capacity(machine_entries.len());
        for i in 0..num_machines {
            for &(j, p) in &machine_entries[machine_ptr[i]..machine_ptr[i + 1]] {
                sorted.push((MachineId(i), j, p));
            }
        }
        sorted.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        Self {
            machine_ptr,
            machine_entries,
            job_ptr,
            job_entries,
            sorted,
        }
    }
}

/// A validated instance of multiprocessor scheduling under uncertainty.
///
/// An instance consists of `n` unit-time jobs, `m` machines, the probability
/// matrix `p_ij` (probability that machine `i` completes job `j` in one step)
/// and a precedence DAG over the jobs. Validation guarantees that every
/// probability lies in `[0, 1]` and that every job has at least one machine
/// with positive success probability (otherwise the expected makespan would be
/// infinite; the paper makes the same assumption).
///
/// # Examples
///
/// ```
/// use suu_core::{InstanceBuilder, JobId, MachineId};
///
/// // Two machines, three independent jobs.
/// let instance = InstanceBuilder::new(3, 2)
///     .probability(MachineId(0), JobId(0), 0.9)
///     .probability(MachineId(0), JobId(1), 0.5)
///     .probability(MachineId(1), JobId(1), 0.7)
///     .probability(MachineId(1), JobId(2), 0.2)
///     .probability(MachineId(0), JobId(2), 0.1)
///     .build()
///     .unwrap();
/// assert_eq!(instance.num_jobs(), 3);
/// assert_eq!(instance.prob(MachineId(1), JobId(1)), 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct SuuInstance {
    num_jobs: usize,
    num_machines: usize,
    /// Row-major `num_machines × num_jobs` success-probability matrix.
    probs: Vec<f64>,
    precedence: Dag,
    /// Sparse non-zero index, built on first use (see [`ProbIndex`]). Derived
    /// state: excluded from equality, hashing and the wire format.
    index: OnceLock<ProbIndex>,
}

/// Equality is over the logical contents only — the lazily built index is a
/// cache of `probs` and must not influence comparisons.
impl PartialEq for SuuInstance {
    fn eq(&self, other: &Self) -> bool {
        self.num_jobs == other.num_jobs
            && self.num_machines == other.num_machines
            && self.probs == other.probs
            && self.precedence == other.precedence
    }
}

/// Hand-written (the vendored serde derive has no `skip`): serialises exactly
/// the four logical fields, preserving the wire format from before the index
/// existed.
impl Serialize for SuuInstance {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (String::from("num_jobs"), self.num_jobs.to_value()),
            (String::from("num_machines"), self.num_machines.to_value()),
            (String::from("probs"), self.probs.to_value()),
            (String::from("precedence"), self.precedence.to_value()),
        ])
    }
}

impl Deserialize for SuuInstance {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let required = |key: &str| {
            v.get(key)
                .ok_or_else(|| serde::DeError::new(format!("missing field `{key}` in SuuInstance")))
        };
        Ok(Self {
            num_jobs: usize::from_value(required("num_jobs")?)?,
            num_machines: usize::from_value(required("num_machines")?)?,
            probs: Vec::from_value(required("probs")?)?,
            precedence: Dag::from_value(required("precedence")?)?,
            index: OnceLock::new(),
        })
    }
}

impl SuuInstance {
    /// Creates an instance from a dense probability matrix (row-major,
    /// `machines × jobs`) and a precedence DAG.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] if the dimensions are inconsistent, a
    /// probability is out of range, or some job has zero probability on every
    /// machine.
    pub fn new(
        num_jobs: usize,
        num_machines: usize,
        probs: Vec<f64>,
        precedence: Dag,
    ) -> Result<Self, InstanceError> {
        if num_jobs == 0 || num_machines == 0 {
            return Err(InstanceError::Empty);
        }
        if probs.len() != num_jobs * num_machines {
            return Err(InstanceError::DimensionMismatch {
                expected: num_jobs * num_machines,
                actual: probs.len(),
            });
        }
        if precedence.num_nodes() != num_jobs {
            return Err(InstanceError::PrecedenceSizeMismatch {
                jobs: num_jobs,
                nodes: precedence.num_nodes(),
            });
        }
        for i in 0..num_machines {
            for j in 0..num_jobs {
                let p = probs[i * num_jobs + j];
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(InstanceError::InvalidProbability {
                        machine: MachineId(i),
                        job: JobId(j),
                        value: p,
                    });
                }
            }
        }
        for j in 0..num_jobs {
            let reachable = (0..num_machines).any(|i| probs[i * num_jobs + j] > 0.0);
            if !reachable {
                return Err(InstanceError::UnschedulableJob { job: JobId(j) });
            }
        }
        Ok(Self {
            num_jobs,
            num_machines,
            probs,
            precedence,
            index: OnceLock::new(),
        })
    }

    /// The sparse non-zero index, building it on first use.
    fn index(&self) -> &ProbIndex {
        self.index
            .get_or_init(|| ProbIndex::build(self.num_jobs, self.num_machines, &self.probs))
    }

    /// Number of jobs `n`.
    #[must_use]
    pub fn num_jobs(&self) -> usize {
        self.num_jobs
    }

    /// Number of machines `m`.
    #[must_use]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Success probability `p_ij` of machine `i` completing job `j` in one
    /// step.
    #[must_use]
    pub fn prob(&self, machine: MachineId, job: JobId) -> f64 {
        self.probs[machine.0 * self.num_jobs + job.0]
    }

    /// The precedence DAG.
    #[must_use]
    pub fn precedence(&self) -> &Dag {
        &self.precedence
    }

    /// Structural class of the precedence DAG (independent / chains / trees /
    /// forest / general).
    #[must_use]
    pub fn forest_kind(&self) -> ForestKind {
        suu_graph::forest::classify(&self.precedence)
    }

    /// `true` if the jobs are independent (no precedence constraints) — the
    /// SUU-I special case of §3.
    #[must_use]
    pub fn is_independent(&self) -> bool {
        self.precedence.is_independent()
    }

    /// All jobs.
    pub fn jobs(&self) -> impl Iterator<Item = JobId> {
        (0..self.num_jobs).map(JobId)
    }

    /// All machines.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> {
        (0..self.num_machines).map(MachineId)
    }

    /// The machine with the highest success probability for `job`, together
    /// with that probability. Validation guarantees the probability is > 0.
    #[must_use]
    pub fn best_machine(&self, job: JobId) -> (MachineId, f64) {
        let mut best = (MachineId(0), 0.0);
        for i in 0..self.num_machines {
            let p = self.prob(MachineId(i), job);
            if p > best.1 {
                best = (MachineId(i), p);
            }
        }
        best
    }

    /// The smallest non-zero probability in the matrix (`p_min` in the
    /// paper's running-time analysis of SUU-I-OBL).
    #[must_use]
    pub fn min_positive_prob(&self) -> f64 {
        self.probs
            .iter()
            .copied()
            .filter(|&p| p > 0.0)
            .fold(1.0, f64::min)
    }

    /// The largest probability in the matrix.
    #[must_use]
    pub fn max_prob(&self) -> f64 {
        self.probs.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of success probabilities over all machines for `job` — the maximum
    /// mass the job can accumulate in one step if every machine works on it.
    #[must_use]
    pub fn total_prob(&self, job: JobId) -> f64 {
        (0..self.num_machines)
            .map(|i| self.prob(MachineId(i), job))
            .sum()
    }

    /// The machines with `p_ij > 0` for `job`, with their probabilities, in
    /// increasing machine order. Allocation-free: backed by the lazily built
    /// CSR index, so per-call cost is O(non-zeros of the job's column).
    pub fn positive_probs(&self, job: JobId) -> impl Iterator<Item = (MachineId, f64)> + '_ {
        let index = self.index();
        index.job_entries[index.job_ptr[job.0]..index.job_ptr[job.0 + 1]]
            .iter()
            .copied()
    }

    /// The jobs with `p_ij > 0` for `machine`, with their probabilities, in
    /// increasing job order. Allocation-free like [`positive_probs`]
    /// (`Self::positive_probs`).
    pub fn positive_jobs(&self, machine: MachineId) -> impl Iterator<Item = (JobId, f64)> + '_ {
        let index = self.index();
        index.machine_entries[index.machine_ptr[machine.0]..index.machine_ptr[machine.0 + 1]]
            .iter()
            .copied()
    }

    /// Number of positive entries in the probability matrix.
    #[must_use]
    pub fn num_positive(&self) -> usize {
        self.index().job_entries.len()
    }

    /// Probability entries `(machine, job, p_ij)` with `p_ij > 0`, in
    /// decreasing order of probability — the processing order used by
    /// MSM-ALG and MSM-E-ALG. Allocation-free: the slice lives in the lazily
    /// built index, so repeated calls (e.g. one per schedule step) cost
    /// nothing beyond the first.
    #[must_use]
    pub fn positive_entries_sorted(&self) -> &[(MachineId, JobId, f64)] {
        &self.index().sorted
    }

    /// Jobs whose predecessors are all contained in `finished` and that are
    /// themselves not finished: the jobs eligible for execution.
    #[must_use]
    pub fn eligible_jobs(&self, finished: &[bool]) -> Vec<JobId> {
        assert_eq!(
            finished.len(),
            self.num_jobs,
            "finished mask has wrong length"
        );
        (0..self.num_jobs)
            .filter(|&j| {
                !finished[j] && self.precedence.predecessors(j).iter().all(|&p| finished[p])
            })
            .map(JobId)
            .collect()
    }

    /// Restricts the instance to the given jobs (in the given order), keeping
    /// all machines and the precedence structure induced on those jobs.
    /// Returns the sub-instance and the mapping from new job ids to original
    /// ones.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is empty, contains duplicates or out-of-range ids.
    #[must_use]
    pub fn restrict_to_jobs(&self, jobs: &[JobId]) -> (Self, Vec<JobId>) {
        assert!(!jobs.is_empty(), "cannot restrict to an empty job set");
        let indices: Vec<usize> = jobs.iter().map(|j| j.0).collect();
        let (sub_dag, _) = self.precedence.induced_subgraph(&indices);
        let mut probs = Vec::with_capacity(self.num_machines * jobs.len());
        for i in 0..self.num_machines {
            for &j in &indices {
                probs.push(self.probs[i * self.num_jobs + j]);
            }
        }
        let sub = Self::new(jobs.len(), self.num_machines, probs, sub_dag)
            .expect("restriction of a valid instance is valid");
        (sub, jobs.to_vec())
    }

    /// Re-runs the constructor validation on `self`.
    ///
    /// Derived deserialisation rebuilds the struct field by field without
    /// going through [`SuuInstance::new`], so instances received over a wire
    /// protocol must be revalidated before use. Hand-built instances always
    /// pass.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`SuuInstance::new`].
    pub fn validate(&self) -> Result<(), InstanceError> {
        Self::new(
            self.num_jobs,
            self.num_machines,
            self.probs.clone(),
            self.precedence.clone(),
        )
        .map(|_| ())
    }

    /// A stable 64-bit digest of the instance contents (dimensions, the bit
    /// patterns of every `p_ij` with `-0.0` normalised to `+0.0`, and the
    /// precedence edge list).
    ///
    /// Two equal instances always have equal digests, so the digest can key a
    /// schedule cache: repeated submissions of the same workload hash to the
    /// same bucket, and a full equality check on the stored instance guards
    /// against collisions. The digest is FNV-1a over a canonical byte
    /// rendering, independent of `HashMap` iteration order and of the build's
    /// `RandomState`, so it is reproducible across processes and runs.
    #[must_use]
    pub fn canonical_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&(self.num_jobs as u64).to_le_bytes());
        eat(&(self.num_machines as u64).to_le_bytes());
        for &p in &self.probs {
            // Normalise -0.0 to +0.0: the two compare equal (`==`/PartialEq)
            // but have different bit patterns, and equal instances must have
            // equal digests.
            eat(&(p + 0.0).to_bits().to_le_bytes());
        }
        for (u, v) in self.precedence.edges() {
            eat(&(u as u64).to_le_bytes());
            eat(&(v as u64).to_le_bytes());
        }
        h
    }

    /// A stable 64-bit digest of the instance's *structure*: dimensions, the
    /// positivity pattern of the probability matrix (which `p_ij` are > 0,
    /// not their values) and the precedence edge list.
    ///
    /// Two instances with equal structural digests produce LP relaxations
    /// with identical variable and constraint layouts, so an optimal basis of
    /// one is a valid warm-start basis for the other. This is the key of the
    /// service's warm-start index: a probability *drift* keeps the structural
    /// digest (and feeds a warm solve) while any job/machine/edge change or a
    /// zero-crossing probability changes it (and solves cold).
    #[must_use]
    pub fn structural_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&(self.num_jobs as u64).to_le_bytes());
        eat(&(self.num_machines as u64).to_le_bytes());
        for &p in &self.probs {
            eat(&[u8::from(p > 0.0)]);
        }
        for (u, v) in self.precedence.edges() {
            eat(&(u as u64).to_le_bytes());
            eat(&(v as u64).to_le_bytes());
        }
        h
    }

    /// A crude upper bound on the optimal expected makespan, used to size
    /// doubling searches: serialising the jobs and assigning every machine to
    /// one job at a time finishes each job in expected `1 / P_j ≤ 1 / p_best`
    /// steps, so `Σ_j 1 / P_j` bounds the total, where `P_j` is the success
    /// probability when all machines work on `j`.
    #[must_use]
    pub fn serial_makespan_upper_bound(&self) -> f64 {
        self.jobs()
            .map(|j| {
                let probs: Vec<f64> = self.machines().map(|i| self.prob(i, j)).collect();
                let p = crate::prob::combined_success_probability(&probs);
                1.0 / p.max(f64::MIN_POSITIVE)
            })
            .sum()
    }
}

/// Incremental builder for [`SuuInstance`].
///
/// Probabilities default to zero; the precedence graph defaults to independent
/// jobs.
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    num_jobs: usize,
    num_machines: usize,
    probs: Vec<f64>,
    precedence: Dag,
}

impl InstanceBuilder {
    /// Starts building an instance with `num_jobs` jobs and `num_machines`
    /// machines, all probabilities zero and no precedence constraints.
    #[must_use]
    pub fn new(num_jobs: usize, num_machines: usize) -> Self {
        Self {
            num_jobs,
            num_machines,
            probs: vec![0.0; num_jobs * num_machines],
            precedence: Dag::independent(num_jobs),
        }
    }

    /// Sets `p_ij` for one machine–job pair.
    #[must_use]
    pub fn probability(mut self, machine: MachineId, job: JobId, p: f64) -> Self {
        self.probs[machine.0 * self.num_jobs + job.0] = p;
        self
    }

    /// Sets the same probability for every machine–job pair (uniform machines).
    #[must_use]
    pub fn uniform_probability(mut self, p: f64) -> Self {
        self.probs.iter_mut().for_each(|x| *x = p);
        self
    }

    /// Sets the whole probability matrix (row-major `machines × jobs`).
    #[must_use]
    pub fn probability_matrix(mut self, probs: Vec<f64>) -> Self {
        self.probs = probs;
        self
    }

    /// Sets the precedence DAG.
    #[must_use]
    pub fn precedence(mut self, dag: Dag) -> Self {
        self.precedence = dag;
        self
    }

    /// Adds precedence chains (each inner vector is a chain of job indices in
    /// order), replacing the current precedence graph.
    ///
    /// # Panics
    ///
    /// Panics if the chain node ids are invalid (out of range or repeated in a
    /// way that creates a cycle).
    #[must_use]
    pub fn chains(mut self, chains: &[Vec<usize>]) -> Self {
        self.precedence =
            Dag::from_chains(self.num_jobs, chains).expect("invalid chain specification");
        self
    }

    /// Finalises and validates the instance.
    ///
    /// # Errors
    ///
    /// See [`SuuInstance::new`].
    pub fn build(self) -> Result<SuuInstance, InstanceError> {
        SuuInstance::new(
            self.num_jobs,
            self.num_machines,
            self.probs,
            self.precedence,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance() -> SuuInstance {
        InstanceBuilder::new(3, 2)
            .probability(MachineId(0), JobId(0), 0.9)
            .probability(MachineId(0), JobId(1), 0.5)
            .probability(MachineId(1), JobId(1), 0.7)
            .probability(MachineId(1), JobId(2), 0.2)
            .probability(MachineId(0), JobId(2), 0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_instance() {
        let inst = small_instance();
        assert_eq!(inst.num_jobs(), 3);
        assert_eq!(inst.num_machines(), 2);
        assert_eq!(inst.prob(MachineId(0), JobId(0)), 0.9);
        assert_eq!(inst.prob(MachineId(1), JobId(0)), 0.0);
        assert!(inst.is_independent());
    }

    #[test]
    fn rejects_empty_instance() {
        assert_eq!(
            InstanceBuilder::new(0, 3).build().unwrap_err(),
            InstanceError::Empty
        );
        assert_eq!(
            InstanceBuilder::new(3, 0).build().unwrap_err(),
            InstanceError::Empty
        );
    }

    #[test]
    fn rejects_unschedulable_job() {
        let err = InstanceBuilder::new(2, 1)
            .probability(MachineId(0), JobId(0), 0.4)
            .build()
            .unwrap_err();
        assert_eq!(err, InstanceError::UnschedulableJob { job: JobId(1) });
    }

    #[test]
    fn rejects_invalid_probability() {
        let err = InstanceBuilder::new(1, 1)
            .probability(MachineId(0), JobId(0), 1.7)
            .build()
            .unwrap_err();
        assert!(matches!(err, InstanceError::InvalidProbability { .. }));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let err = SuuInstance::new(2, 2, vec![0.1; 3], Dag::independent(2)).unwrap_err();
        assert_eq!(
            err,
            InstanceError::DimensionMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn rejects_precedence_size_mismatch() {
        let err = SuuInstance::new(2, 1, vec![0.5, 0.5], Dag::independent(3)).unwrap_err();
        assert_eq!(
            err,
            InstanceError::PrecedenceSizeMismatch { jobs: 2, nodes: 3 }
        );
    }

    #[test]
    fn best_machine_and_totals() {
        let inst = small_instance();
        assert_eq!(inst.best_machine(JobId(1)), (MachineId(1), 0.7));
        assert!((inst.total_prob(JobId(1)) - 1.2).abs() < 1e-12);
        assert!((inst.min_positive_prob() - 0.1).abs() < 1e-12);
        assert!((inst.max_prob() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn positive_probs_are_sorted_descending() {
        let inst = small_instance();
        let entries = inst.positive_entries_sorted();
        assert_eq!(entries.len(), 5);
        for pair in entries.windows(2) {
            assert!(pair[0].2 >= pair[1].2);
        }
        assert_eq!(entries[0], (MachineId(0), JobId(0), 0.9));
        assert_eq!(inst.num_positive(), 5);
    }

    #[test]
    fn sparse_iterators_match_dense_scans() {
        let inst = small_instance();
        for j in inst.jobs() {
            let via_index: Vec<(MachineId, f64)> = inst.positive_probs(j).collect();
            let via_scan: Vec<(MachineId, f64)> = inst
                .machines()
                .map(|i| (i, inst.prob(i, j)))
                .filter(|&(_, p)| p > 0.0)
                .collect();
            assert_eq!(via_index, via_scan, "job {j}");
        }
        for i in inst.machines() {
            let via_index: Vec<(JobId, f64)> = inst.positive_jobs(i).collect();
            let via_scan: Vec<(JobId, f64)> = inst
                .jobs()
                .map(|j| (j, inst.prob(i, j)))
                .filter(|&(_, p)| p > 0.0)
                .collect();
            assert_eq!(via_index, via_scan, "machine {i}");
        }
    }

    #[test]
    fn index_state_does_not_affect_equality_or_clones() {
        let warm = small_instance();
        let _ = warm.positive_probs(JobId(0)).count(); // build the index
        let cold = small_instance();
        assert_eq!(warm, cold);
        let cloned = warm.clone();
        assert_eq!(cloned, warm);
        assert_eq!(
            cloned.positive_entries_sorted(),
            warm.positive_entries_sorted()
        );
    }

    #[test]
    fn eligible_jobs_respect_precedence() {
        let dag = Dag::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let inst = InstanceBuilder::new(3, 1)
            .uniform_probability(0.5)
            .precedence(dag)
            .build()
            .unwrap();
        assert_eq!(inst.eligible_jobs(&[false, false, false]), vec![JobId(0)]);
        assert_eq!(inst.eligible_jobs(&[true, false, false]), vec![JobId(1)]);
        assert_eq!(inst.eligible_jobs(&[true, true, true]), Vec::<JobId>::new());
    }

    #[test]
    fn chains_builder_sets_precedence() {
        let inst = InstanceBuilder::new(4, 1)
            .uniform_probability(0.3)
            .chains(&[vec![0, 1], vec![2, 3]])
            .build()
            .unwrap();
        assert!(!inst.is_independent());
        assert!(inst.precedence().has_edge(0, 1));
        assert!(inst.precedence().has_edge(2, 3));
    }

    #[test]
    fn restrict_to_jobs_keeps_induced_structure() {
        let dag = Dag::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let inst = InstanceBuilder::new(4, 2)
            .uniform_probability(0.4)
            .precedence(dag)
            .build()
            .unwrap();
        let (sub, mapping) = inst.restrict_to_jobs(&[JobId(1), JobId(2)]);
        assert_eq!(sub.num_jobs(), 2);
        assert_eq!(sub.num_machines(), 2);
        assert!(sub.precedence().has_edge(0, 1));
        assert_eq!(mapping, vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn serial_bound_is_finite_and_positive() {
        let inst = small_instance();
        let bound = inst.serial_makespan_upper_bound();
        assert!(bound.is_finite());
        assert!(bound >= 3.0 / 1.0 - 1e-9); // at least one step per job in expectation
    }

    #[test]
    fn serde_roundtrip() {
        let inst = small_instance();
        let json = serde_json::to_string(&inst).unwrap();
        let back: SuuInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn validate_rejects_deserialized_invalid_instance() {
        // Out-of-range probability and an unschedulable job, smuggled past the
        // constructor by deserialising raw fields.
        let json = r#"{"num_jobs":2,"num_machines":1,"probs":[1.5,0.0],
                       "precedence":{"num_nodes":2,"succ":[[],[]],"pred":[[],[]]}}"#;
        if let Ok(inst) = serde_json::from_str::<SuuInstance>(json) {
            assert!(inst.validate().is_err());
        }
    }

    #[test]
    fn canonical_digest_is_stable_and_content_sensitive() {
        let a = small_instance();
        let b = small_instance();
        assert_eq!(a.canonical_digest(), b.canonical_digest());

        // Any probability change flips the digest.
        let c = InstanceBuilder::new(3, 2)
            .probability(MachineId(0), JobId(0), 0.9001)
            .probability(MachineId(0), JobId(1), 0.5)
            .probability(MachineId(1), JobId(1), 0.7)
            .probability(MachineId(1), JobId(2), 0.2)
            .probability(MachineId(0), JobId(2), 0.1)
            .build()
            .unwrap();
        assert_ne!(a.canonical_digest(), c.canonical_digest());

        // Precedence edges participate too.
        let dag = Dag::from_edges(3, [(0, 1)]).unwrap();
        let d = InstanceBuilder::new(3, 1)
            .uniform_probability(0.5)
            .precedence(dag)
            .build()
            .unwrap();
        let e = InstanceBuilder::new(3, 1)
            .uniform_probability(0.5)
            .build()
            .unwrap();
        assert_ne!(d.canonical_digest(), e.canonical_digest());
    }

    #[test]
    fn canonical_digest_normalises_negative_zero() {
        // -0.0 passes validation (it is within [0, 1]) and compares equal to
        // 0.0, so the digests must also agree.
        let with_neg = SuuInstance::new(2, 1, vec![0.5, -0.0], Dag::independent(2));
        let with_neg = match with_neg {
            Ok(inst) => inst,
            Err(_) => return, // validation tightened: nothing to check
        };
        let with_pos = SuuInstance::new(2, 1, vec![0.5, 0.0], Dag::independent(2)).unwrap();
        assert_eq!(with_neg, with_pos);
        assert_eq!(with_neg.canonical_digest(), with_pos.canonical_digest());
    }

    #[test]
    fn canonical_digest_survives_serde_roundtrip() {
        let inst = small_instance();
        let json = serde_json::to_string(&inst).unwrap();
        let back: SuuInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst.canonical_digest(), back.canonical_digest());
    }
}
