//! Error types for instance construction.

use std::fmt;

use crate::ids::{JobId, MachineId};

/// Errors raised while building or validating a [`SuuInstance`](crate::SuuInstance).
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// The instance must have at least one job and one machine.
    Empty,
    /// A probability was outside `[0, 1]` or NaN.
    InvalidProbability {
        /// Machine of the offending entry.
        machine: MachineId,
        /// Job of the offending entry.
        job: JobId,
        /// The offending value.
        value: f64,
    },
    /// Job `job` has `p_ij = 0` for every machine `i`, so it can never finish
    /// and the expected makespan is infinite. The paper assumes this away
    /// (w.l.o.g. every job has some machine with positive probability).
    UnschedulableJob {
        /// The job no machine can complete.
        job: JobId,
    },
    /// The probability matrix dimensions disagree with the declared number of
    /// jobs and machines.
    DimensionMismatch {
        /// Expected number of entries (`machines × jobs`).
        expected: usize,
        /// Number of entries provided.
        actual: usize,
    },
    /// The precedence graph has a different number of nodes than there are
    /// jobs.
    PrecedenceSizeMismatch {
        /// Number of jobs in the instance.
        jobs: usize,
        /// Number of nodes in the supplied DAG.
        nodes: usize,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "instance needs at least one job and one machine"),
            Self::InvalidProbability {
                machine,
                job,
                value,
            } => write!(f, "p[{machine},{job}] = {value} is not a probability"),
            Self::UnschedulableJob { job } => {
                write!(f, "{job} has zero success probability on every machine")
            }
            Self::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "probability matrix has {actual} entries, expected {expected}"
                )
            }
            Self::PrecedenceSizeMismatch { jobs, nodes } => write!(
                f,
                "precedence graph has {nodes} nodes but the instance has {jobs} jobs"
            ),
        }
    }
}

impl std::error::Error for InstanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_context() {
        let e = InstanceError::InvalidProbability {
            machine: MachineId(1),
            job: JobId(2),
            value: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("machine1"));
        assert!(msg.contains("job2"));
        assert!(msg.contains("1.5"));

        assert!(InstanceError::Empty.to_string().contains("at least one"));
        assert!(InstanceError::UnschedulableJob { job: JobId(7) }
            .to_string()
            .contains("job7"));
        assert!(InstanceError::DimensionMismatch {
            expected: 6,
            actual: 4
        }
        .to_string()
        .contains("expected 6"));
        assert!(InstanceError::PrecedenceSizeMismatch { jobs: 3, nodes: 5 }
            .to_string()
            .contains("5 nodes"));
    }
}
