//! Strongly-typed job and machine identifiers.
//!
//! Jobs and machines are both dense `0..n` / `0..m` index spaces; newtypes
//! keep them from being confused with each other (the probability matrix is
//! indexed `(machine, job)` and swapping the two is a classic bug).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a job: index in `0..num_jobs`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct JobId(pub usize);

/// Identifier of a machine: index in `0..num_machines`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct MachineId(pub usize);

impl JobId {
    /// The underlying index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl MachineId {
    /// The underlying index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine{}", self.0)
    }
}

impl From<usize> for JobId {
    fn from(value: usize) -> Self {
        Self(value)
    }
}

impl From<usize> for MachineId {
    fn from(value: usize) -> Self {
        Self(value)
    }
}

/// Iterator over all job ids `0..n`.
pub fn all_jobs(num_jobs: usize) -> impl Iterator<Item = JobId> {
    (0..num_jobs).map(JobId)
}

/// Iterator over all machine ids `0..m`.
pub fn all_machines(num_machines: usize) -> impl Iterator<Item = MachineId> {
    (0..num_machines).map(MachineId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_expose_their_index() {
        assert_eq!(JobId(3).index(), 3);
        assert_eq!(MachineId(5).index(), 5);
    }

    #[test]
    fn ids_display_with_kind_prefix() {
        assert_eq!(JobId(2).to_string(), "job2");
        assert_eq!(MachineId(0).to_string(), "machine0");
    }

    #[test]
    fn ids_convert_from_usize() {
        let j: JobId = 7.into();
        let m: MachineId = 9.into();
        assert_eq!(j, JobId(7));
        assert_eq!(m, MachineId(9));
    }

    #[test]
    fn iterators_cover_the_range() {
        let jobs: Vec<JobId> = all_jobs(3).collect();
        assert_eq!(jobs, vec![JobId(0), JobId(1), JobId(2)]);
        assert_eq!(all_machines(0).count(), 0);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(JobId(1) < JobId(2));
        assert!(MachineId(0) < MachineId(1));
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&JobId(4)).unwrap();
        assert_eq!(json, "4");
        let back: JobId = serde_json::from_str("4").unwrap();
        assert_eq!(back, JobId(4));
    }
}
