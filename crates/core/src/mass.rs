//! The *mass* of a job under a schedule (Definition 2.4).
//!
//! The mass of job `j` at the end of step `t` of an oblivious schedule is
//!
//! ```text
//! min { Σ_{τ ≤ t} Σ_{i : f_τ(i) = j} p_ij ,  1 }
//! ```
//!
//! i.e. the accumulated sum of success probabilities over every machine-step
//! spent on the job, capped at one. Mass is the linear surrogate the paper
//! uses in place of the true success probability: by Proposition 2.1 a job
//! with mass `μ ≤ 1` has completed with probability between `μ/e` and `μ`.
//! All the algorithms target "accumulate constant mass for every job", and
//! the analyses convert that into constant completion probability.

use crate::assignment::{Assignment, MultiAssignment};
use crate::ids::JobId;
use crate::instance::SuuInstance;
use crate::schedule::{ObliviousSchedule, PseudoSchedule};

/// Per-job mass values, indexed by job id.
#[derive(Debug, Clone, PartialEq)]
pub struct MassVector {
    values: Vec<f64>,
}

impl MassVector {
    /// The all-zero mass vector for `num_jobs` jobs.
    #[must_use]
    pub fn zero(num_jobs: usize) -> Self {
        Self {
            values: vec![0.0; num_jobs],
        }
    }

    /// Creates a mass vector from raw values.
    #[must_use]
    pub fn from_values(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// Mass of `job`.
    #[must_use]
    pub fn get(&self, job: JobId) -> f64 {
        self.values[job.0]
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Adds `amount` to the mass of `job`, capping at `cap`.
    pub fn add_capped(&mut self, job: JobId, amount: f64, cap: f64) {
        self.values[job.0] = (self.values[job.0] + amount).min(cap);
    }

    /// Sum of all masses.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The smallest mass over all jobs (0 for an empty vector).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Number of jobs whose mass is at least `threshold`.
    #[must_use]
    pub fn count_at_least(&self, threshold: f64) -> usize {
        self.values.iter().filter(|&&v| v >= threshold).count()
    }

    /// Jobs whose mass is at least `threshold`.
    #[must_use]
    pub fn jobs_at_least(&self, threshold: f64) -> Vec<JobId> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(j, &v)| (v >= threshold).then_some(JobId(j)))
            .collect()
    }

    /// Raw values slice.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Mass contributed to every job by a single feasible assignment
/// (uncapped; a single step's contribution is at most `Σ_i p_ij` anyway).
#[must_use]
pub fn mass_of_assignment(instance: &SuuInstance, assignment: &Assignment) -> MassVector {
    let mut mass = MassVector::zero(instance.num_jobs());
    for (machine, job) in assignment.busy_pairs() {
        mass.add_capped(job, instance.prob(machine, job), f64::INFINITY);
    }
    mass
}

/// Mass contributed to every job by a single multi-assignment (uncapped).
#[must_use]
pub fn mass_of_multi_assignment(instance: &SuuInstance, step: &MultiAssignment) -> MassVector {
    let mut mass = MassVector::zero(instance.num_jobs());
    for (machine, job) in step.pairs() {
        mass.add_capped(job, instance.prob(machine, job), f64::INFINITY);
    }
    mass
}

/// Mass accumulated by every job over the first `prefix_len` steps of an
/// oblivious schedule, capped at 1 per Definition 2.4.
///
/// # Panics
///
/// Panics if `prefix_len` exceeds the schedule length.
#[must_use]
pub fn mass_of_oblivious_prefix(
    instance: &SuuInstance,
    schedule: &ObliviousSchedule,
    prefix_len: usize,
) -> MassVector {
    assert!(
        prefix_len <= schedule.len(),
        "prefix exceeds schedule length"
    );
    let mut mass = MassVector::zero(instance.num_jobs());
    for t in 0..prefix_len {
        for (machine, job) in schedule.step(t).busy_pairs() {
            mass.add_capped(job, instance.prob(machine, job), 1.0);
        }
    }
    mass
}

/// Mass accumulated by every job over a whole oblivious schedule (capped at 1).
#[must_use]
pub fn mass_of_oblivious(instance: &SuuInstance, schedule: &ObliviousSchedule) -> MassVector {
    mass_of_oblivious_prefix(instance, schedule, schedule.len())
}

/// Mass accumulated by every job over a whole pseudo-schedule (capped at 1).
#[must_use]
pub fn mass_of_pseudo(instance: &SuuInstance, schedule: &PseudoSchedule) -> MassVector {
    let mut mass = MassVector::zero(instance.num_jobs());
    for t in 0..schedule.len() {
        for (machine, job) in schedule.step(t).pairs() {
            mass.add_capped(job, instance.prob(machine, job), 1.0);
        }
    }
    mass
}

/// The first step index (1-based count of steps) by which `job` has
/// accumulated mass at least `threshold` in the given oblivious schedule, or
/// `None` if it never does within the schedule's length.
#[must_use]
pub fn first_step_reaching_mass(
    instance: &SuuInstance,
    schedule: &ObliviousSchedule,
    job: JobId,
    threshold: f64,
) -> Option<usize> {
    let mut acc = 0.0;
    for t in 0..schedule.len() {
        for machine in schedule.step(t).machines_on(job) {
            acc += instance.prob(machine, job);
        }
        if acc.min(1.0) >= threshold {
            return Some(t + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MachineId;
    use crate::instance::InstanceBuilder;

    fn instance() -> SuuInstance {
        // 2 machines × 2 jobs: p[0][0]=0.6, p[0][1]=0.3, p[1][0]=0.4, p[1][1]=0.8
        InstanceBuilder::new(2, 2)
            .probability(MachineId(0), JobId(0), 0.6)
            .probability(MachineId(0), JobId(1), 0.3)
            .probability(MachineId(1), JobId(0), 0.4)
            .probability(MachineId(1), JobId(1), 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn mass_vector_basic_operations() {
        let mut m = MassVector::zero(3);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        m.add_capped(JobId(1), 0.7, 1.0);
        m.add_capped(JobId(1), 0.6, 1.0);
        assert!((m.get(JobId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(m.count_at_least(0.5), 1);
        assert_eq!(m.jobs_at_least(0.5), vec![JobId(1)]);
        assert!((m.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mass_of_single_assignment() {
        let inst = instance();
        let mut a = Assignment::idle(2);
        a.assign(MachineId(0), JobId(0));
        a.assign(MachineId(1), JobId(0));
        let m = mass_of_assignment(&inst, &a);
        assert!((m.get(JobId(0)) - 1.0).abs() < 1e-12);
        assert_eq!(m.get(JobId(1)), 0.0);
    }

    #[test]
    fn mass_of_oblivious_schedule_caps_at_one() {
        let inst = instance();
        // Both machines on job 1 for two steps: raw mass 2.2, capped at 1.
        let mut a = Assignment::idle(2);
        a.assign(MachineId(0), JobId(1));
        a.assign(MachineId(1), JobId(1));
        let sched = ObliviousSchedule::from_steps(2, vec![a.clone(), a]);
        let m = mass_of_oblivious(&inst, &sched);
        assert!((m.get(JobId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(m.get(JobId(0)), 0.0);
    }

    #[test]
    fn mass_prefix_is_monotone() {
        let inst = instance();
        let mut a = Assignment::idle(2);
        a.assign(MachineId(0), JobId(0));
        let mut b = Assignment::idle(2);
        b.assign(MachineId(1), JobId(0));
        let sched = ObliviousSchedule::from_steps(2, vec![a, b]);
        let m1 = mass_of_oblivious_prefix(&inst, &sched, 1);
        let m2 = mass_of_oblivious_prefix(&inst, &sched, 2);
        assert!((m1.get(JobId(0)) - 0.6).abs() < 1e-12);
        assert!((m2.get(JobId(0)) - 1.0).abs() < 1e-12);
        assert!(m2.get(JobId(0)) >= m1.get(JobId(0)));
    }

    #[test]
    fn mass_of_pseudo_counts_multi_assignments() {
        let inst = instance();
        let mut ps = PseudoSchedule::new(2);
        ps.assign_interval(MachineId(0), JobId(0), 0, 1);
        ps.assign_interval(MachineId(0), JobId(1), 0, 1); // same machine, same step
        let m = mass_of_pseudo(&inst, &ps);
        assert!((m.get(JobId(0)) - 0.6).abs() < 1e-12);
        assert!((m.get(JobId(1)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn first_step_reaching_mass_finds_threshold() {
        let inst = instance();
        let mut a = Assignment::idle(2);
        a.assign(MachineId(0), JobId(0)); // 0.6 per step
        let sched = ObliviousSchedule::from_steps(2, vec![a.clone(), a]);
        assert_eq!(
            first_step_reaching_mass(&inst, &sched, JobId(0), 0.5),
            Some(1)
        );
        assert_eq!(
            first_step_reaching_mass(&inst, &sched, JobId(0), 1.0),
            Some(2)
        );
        assert_eq!(first_step_reaching_mass(&inst, &sched, JobId(1), 0.1), None);
    }

    #[test]
    #[should_panic(expected = "prefix exceeds")]
    fn prefix_longer_than_schedule_panics() {
        let inst = instance();
        let sched = ObliviousSchedule::new(2);
        let _ = mass_of_oblivious_prefix(&inst, &sched, 1);
    }
}
