//! Single-step machine-to-job assignments.
//!
//! A schedule assigns machines to jobs step by step. Within one step a
//! *feasible* assignment gives every machine at most one job
//! ([`Assignment`]); the pseudo-schedules of Definition 4.1 relax this and let
//! a machine be assigned to a *set* of jobs simultaneously
//! ([`MultiAssignment`]), which the random-delay step later flattens back into
//! feasible assignments.

use serde::{Deserialize, Serialize};

use crate::ids::{JobId, MachineId};

/// A feasible single-step assignment: each machine works on at most one job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// `targets[i]` is the job machine `i` works on this step, if any.
    targets: Vec<Option<JobId>>,
}

impl Assignment {
    /// An assignment in which every one of `num_machines` machines idles.
    #[must_use]
    pub fn idle(num_machines: usize) -> Self {
        Self {
            targets: vec![None; num_machines],
        }
    }

    /// Builds an assignment from an explicit target vector.
    #[must_use]
    pub fn from_targets(targets: Vec<Option<JobId>>) -> Self {
        Self { targets }
    }

    /// An assignment sending *every* machine to the same job.
    #[must_use]
    pub fn all_on(num_machines: usize, job: JobId) -> Self {
        Self {
            targets: vec![Some(job); num_machines],
        }
    }

    /// Number of machines.
    #[must_use]
    pub fn num_machines(&self) -> usize {
        self.targets.len()
    }

    /// The job machine `machine` works on, if any.
    #[must_use]
    pub fn target(&self, machine: MachineId) -> Option<JobId> {
        self.targets[machine.0]
    }

    /// Assigns `machine` to `job` (replacing any previous target).
    pub fn assign(&mut self, machine: MachineId, job: JobId) {
        self.targets[machine.0] = Some(job);
    }

    /// Makes `machine` idle.
    pub fn unassign(&mut self, machine: MachineId) {
        self.targets[machine.0] = None;
    }

    /// Iterates over `(machine, job)` pairs of busy machines.
    pub fn busy_pairs(&self) -> impl Iterator<Item = (MachineId, JobId)> + '_ {
        self.targets
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|j| (MachineId(i), j)))
    }

    /// Machines assigned to `job` in this step.
    #[must_use]
    pub fn machines_on(&self, job: JobId) -> Vec<MachineId> {
        self.busy_pairs()
            .filter(|&(_, j)| j == job)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of idle machines.
    #[must_use]
    pub fn num_idle(&self) -> usize {
        self.targets.iter().filter(|t| t.is_none()).count()
    }

    /// Removes assignments to any job for which `keep` returns `false`
    /// (used when executing an oblivious schedule: machines assigned to
    /// already-finished or not-yet-eligible jobs idle instead).
    #[must_use]
    pub fn filtered(&self, mut keep: impl FnMut(JobId) -> bool) -> Self {
        Self {
            targets: self
                .targets
                .iter()
                .map(|t| t.filter(|&j| keep(j)))
                .collect(),
        }
    }
}

/// A single step of a pseudo-schedule: each machine is assigned to a *set* of
/// jobs (Definition 4.1). Not directly executable; see
/// `suu-algorithms::delay` for the flattening into feasible assignments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MultiAssignment {
    /// `targets[i]` lists the jobs machine `i` is assigned to this step.
    targets: Vec<Vec<JobId>>,
}

impl MultiAssignment {
    /// A multi-assignment with every machine idle.
    #[must_use]
    pub fn idle(num_machines: usize) -> Self {
        Self {
            targets: vec![Vec::new(); num_machines],
        }
    }

    /// Number of machines.
    #[must_use]
    pub fn num_machines(&self) -> usize {
        self.targets.len()
    }

    /// Adds `job` to the set of jobs machine `machine` is assigned to.
    /// Duplicate additions are ignored.
    pub fn add(&mut self, machine: MachineId, job: JobId) {
        let list = &mut self.targets[machine.0];
        if !list.contains(&job) {
            list.push(job);
        }
    }

    /// Jobs assigned to `machine` this step.
    #[must_use]
    pub fn jobs_of(&self, machine: MachineId) -> &[JobId] {
        &self.targets[machine.0]
    }

    /// Number of jobs assigned to `machine` this step (its congestion).
    #[must_use]
    pub fn congestion(&self, machine: MachineId) -> usize {
        self.targets[machine.0].len()
    }

    /// The maximum congestion over all machines.
    #[must_use]
    pub fn max_congestion(&self) -> usize {
        self.targets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether every machine has at most one job (i.e. the step is already a
    /// feasible assignment).
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.max_congestion() <= 1
    }

    /// Converts to a feasible [`Assignment`] if possible.
    #[must_use]
    pub fn to_assignment(&self) -> Option<Assignment> {
        if !self.is_feasible() {
            return None;
        }
        Some(Assignment::from_targets(
            self.targets
                .iter()
                .map(|jobs| jobs.first().copied())
                .collect(),
        ))
    }

    /// Merges another multi-assignment into this one (union of job sets per
    /// machine).
    ///
    /// # Panics
    ///
    /// Panics if the machine counts differ.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(
            self.targets.len(),
            other.targets.len(),
            "machine counts must match"
        );
        for (i, jobs) in other.targets.iter().enumerate() {
            for &j in jobs {
                self.add(MachineId(i), j);
            }
        }
    }

    /// Iterates over `(machine, job)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (MachineId, JobId)> + '_ {
        self.targets
            .iter()
            .enumerate()
            .flat_map(|(i, jobs)| jobs.iter().map(move |&j| (MachineId(i), j)))
    }
}

impl From<Assignment> for MultiAssignment {
    fn from(a: Assignment) -> Self {
        let mut out = Self::idle(a.num_machines());
        for (i, j) in a.busy_pairs() {
            out.add(i, j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_assignment_has_no_busy_machines() {
        let a = Assignment::idle(3);
        assert_eq!(a.num_machines(), 3);
        assert_eq!(a.num_idle(), 3);
        assert_eq!(a.busy_pairs().count(), 0);
    }

    #[test]
    fn assign_and_unassign() {
        let mut a = Assignment::idle(2);
        a.assign(MachineId(0), JobId(5));
        assert_eq!(a.target(MachineId(0)), Some(JobId(5)));
        assert_eq!(a.num_idle(), 1);
        a.unassign(MachineId(0));
        assert_eq!(a.target(MachineId(0)), None);
    }

    #[test]
    fn all_on_assigns_every_machine() {
        let a = Assignment::all_on(4, JobId(2));
        assert_eq!(a.machines_on(JobId(2)).len(), 4);
        assert_eq!(a.num_idle(), 0);
    }

    #[test]
    fn machines_on_filters_by_job() {
        let mut a = Assignment::idle(3);
        a.assign(MachineId(0), JobId(1));
        a.assign(MachineId(2), JobId(1));
        a.assign(MachineId(1), JobId(0));
        assert_eq!(a.machines_on(JobId(1)), vec![MachineId(0), MachineId(2)]);
        assert_eq!(a.machines_on(JobId(7)), Vec::<MachineId>::new());
    }

    #[test]
    fn filtered_drops_unwanted_jobs() {
        let mut a = Assignment::idle(3);
        a.assign(MachineId(0), JobId(0));
        a.assign(MachineId(1), JobId(1));
        a.assign(MachineId(2), JobId(2));
        let f = a.filtered(|j| j.0 != 1);
        assert_eq!(f.target(MachineId(0)), Some(JobId(0)));
        assert_eq!(f.target(MachineId(1)), None);
        assert_eq!(f.target(MachineId(2)), Some(JobId(2)));
    }

    #[test]
    fn multi_assignment_tracks_congestion() {
        let mut m = MultiAssignment::idle(2);
        m.add(MachineId(0), JobId(0));
        m.add(MachineId(0), JobId(1));
        m.add(MachineId(0), JobId(1)); // duplicate ignored
        m.add(MachineId(1), JobId(2));
        assert_eq!(m.congestion(MachineId(0)), 2);
        assert_eq!(m.congestion(MachineId(1)), 1);
        assert_eq!(m.max_congestion(), 2);
        assert!(!m.is_feasible());
        assert!(m.to_assignment().is_none());
    }

    #[test]
    fn feasible_multi_assignment_converts() {
        let mut m = MultiAssignment::idle(2);
        m.add(MachineId(1), JobId(3));
        assert!(m.is_feasible());
        let a = m.to_assignment().unwrap();
        assert_eq!(a.target(MachineId(1)), Some(JobId(3)));
        assert_eq!(a.target(MachineId(0)), None);
    }

    #[test]
    fn union_merges_job_sets() {
        let mut a = MultiAssignment::idle(2);
        a.add(MachineId(0), JobId(0));
        let mut b = MultiAssignment::idle(2);
        b.add(MachineId(0), JobId(1));
        b.add(MachineId(1), JobId(0));
        a.union_with(&b);
        assert_eq!(a.congestion(MachineId(0)), 2);
        assert_eq!(a.congestion(MachineId(1)), 1);
        assert_eq!(a.pairs().count(), 3);
    }

    #[test]
    #[should_panic(expected = "machine counts")]
    fn union_with_mismatched_sizes_panics() {
        let mut a = MultiAssignment::idle(2);
        let b = MultiAssignment::idle(3);
        a.union_with(&b);
    }

    #[test]
    fn assignment_serde_roundtrip() {
        let mut a = Assignment::idle(3);
        a.assign(MachineId(0), JobId(2));
        a.assign(MachineId(2), JobId(0));
        let json = serde_json::to_string(&a).unwrap();
        let back: Assignment = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
        // Idle machines serialise as JSON null.
        assert!(json.contains("null"));
    }

    #[test]
    fn multi_assignment_serde_roundtrip() {
        let mut m = MultiAssignment::idle(2);
        m.add(MachineId(0), JobId(0));
        m.add(MachineId(0), JobId(1));
        m.add(MachineId(1), JobId(2));
        let json = serde_json::to_string(&m).unwrap();
        let back: MultiAssignment = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn assignment_converts_to_multi() {
        let mut a = Assignment::idle(3);
        a.assign(MachineId(2), JobId(1));
        let m: MultiAssignment = a.into();
        assert_eq!(m.jobs_of(MachineId(2)), &[JobId(1)]);
        assert_eq!(m.max_congestion(), 1);
    }
}
