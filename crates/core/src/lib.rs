//! Core problem model for *multiprocessor scheduling under uncertainty* (SUU).
//!
//! The SUU problem (Lin & Rajaraman, SPAA 2007; introduced by Malewicz) is
//! given by
//!
//! * a set of `n` unit-time **jobs** and `m` **machines**,
//! * a directed acyclic **precedence graph** over the jobs, and
//! * for every machine `i` and job `j` a probability `p_ij` that one step of
//!   machine `i` working on job `j` completes the job, independently of
//!   everything else.
//!
//! Several machines may work on the same job in the same step; a job completes
//! in that step with probability `1 − Π_i (1 − p_ij)` over the machines `i`
//! assigned to it. The objective is to minimise the **expected makespan** —
//! the expected number of steps until every job has completed.
//!
//! This crate defines the data model shared by the simulator, the
//! approximation algorithms and the baselines:
//!
//! * [`instance::SuuInstance`] — a validated instance (probability matrix +
//!   precedence DAG) with a builder.
//! * [`prob`] — probability arithmetic and the mass/probability bounds of
//!   Proposition 2.1.
//! * [`assignment`] — single-step machine→job assignments, both feasible
//!   (each machine works on at most one job) and multi-assignments as used by
//!   pseudo-schedules (Definition 4.1).
//! * [`schedule`] — oblivious schedules (Definition 2.3), pseudo-schedules
//!   (Definition 4.1) and the [`schedule::SchedulingPolicy`] trait that
//!   adaptive algorithms and regimens implement (Definition 2.2).
//! * [`mass`] — the mass of a job under a schedule (Definition 2.4).

pub mod assignment;
pub mod delta;
pub mod error;
pub mod ids;
pub mod instance;
pub mod mass;
pub mod prob;
pub mod schedule;

pub use assignment::{Assignment, MultiAssignment};
pub use delta::{DeltaError, InstanceDelta};
pub use error::InstanceError;
pub use ids::{JobId, MachineId};
pub use instance::{InstanceBuilder, SuuInstance};
pub use mass::{mass_of_assignment, MassVector};
pub use prob::{combined_success_probability, Probability};
pub use schedule::{JobSet, ObliviousSchedule, PseudoSchedule, SchedulingPolicy};
