//! Probability arithmetic and the bounds of Proposition 2.1.
//!
//! When a set `S` of machines works on job `j` in one step, the job completes
//! with probability `1 − Π_{i∈S} (1 − p_ij)`. The paper's algorithms never
//! manipulate this non-linear expression directly; instead they work with the
//! *mass* `Σ_{i∈S} p_ij` and rely on Proposition 2.1:
//!
//! * `1 − Π(1 − x_i) ≤ Σ x_i` always, and
//! * `1 − Π(1 − x_i) ≥ (Σ x_i)/e` whenever `Σ x_i ≤ 1`.
//!
//! [`combined_success_probability`], [`mass_upper_bound`] and
//! [`mass_lower_bound`] expose the three quantities, and the test-suite (and
//! experiment E1) verifies the sandwich numerically.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A success probability in `[0, 1]`.
///
/// The wrapper validates the range once at construction so the rest of the
/// workspace can use plain arithmetic without re-checking.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Probability(f64);

impl Probability {
    /// A probability of exactly zero.
    pub const ZERO: Self = Self(0.0);
    /// A probability of exactly one.
    pub const ONE: Self = Self(1.0);

    /// Creates a probability, returning `None` if `value` is not in `[0, 1]`
    /// or is NaN.
    #[must_use]
    pub fn new(value: f64) -> Option<Self> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Some(Self(value))
        } else {
            None
        }
    }

    /// Creates a probability, clamping `value` into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[must_use]
    pub fn clamped(value: f64) -> Self {
        assert!(!value.is_nan(), "probability cannot be NaN");
        Self(value.clamp(0.0, 1.0))
    }

    /// The raw value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The complement `1 − p`.
    #[must_use]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }

    /// Whether the probability is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

/// Probability that a job completes in one step when machines with the given
/// per-machine success probabilities all work on it: `1 − Π (1 − p_i)`.
#[must_use]
pub fn combined_success_probability(probs: &[f64]) -> f64 {
    let survive: f64 = probs.iter().map(|p| 1.0 - p.clamp(0.0, 1.0)).product();
    1.0 - survive
}

/// The upper bound of Proposition 2.1: the success probability is at most the
/// mass `Σ p_i` (capped at 1, since it is a probability).
#[must_use]
pub fn mass_upper_bound(probs: &[f64]) -> f64 {
    probs.iter().sum::<f64>().min(1.0)
}

/// The lower bound of Proposition 2.1: if the mass `Σ p_i` is at most 1, the
/// success probability is at least `mass / e`. For masses above 1 the bound
/// `1/e` (obtained by restricting to a sub-collection of mass ≥ 1 ... ≤ 1) is
/// not established by the proposition itself, so this function conservatively
/// evaluates `min(Σ p_i, 1) / e`, which is the form the paper's analyses use.
#[must_use]
pub fn mass_lower_bound(probs: &[f64]) -> f64 {
    mass_upper_bound(probs) / std::f64::consts::E
}

/// Probability that a job with per-step success probability `p` completes
/// within `steps` steps: `1 − (1 − p)^steps`.
#[must_use]
pub fn success_within(p: f64, steps: u64) -> f64 {
    1.0 - (1.0 - p.clamp(0.0, 1.0))
        .powi(i32::try_from(steps.min(i32::MAX as u64)).unwrap_or(i32::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn probability_validates_range() {
        assert!(Probability::new(0.5).is_some());
        assert!(Probability::new(0.0).is_some());
        assert!(Probability::new(1.0).is_some());
        assert!(Probability::new(-0.1).is_none());
        assert!(Probability::new(1.1).is_none());
        assert!(Probability::new(f64::NAN).is_none());
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Probability::clamped(2.0).value(), 1.0);
        assert_eq!(Probability::clamped(-1.0).value(), 0.0);
        assert_eq!(Probability::clamped(0.25).value(), 0.25);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamped_rejects_nan() {
        let _ = Probability::clamped(f64::NAN);
    }

    #[test]
    fn complement_and_zero() {
        assert_eq!(Probability::clamped(0.25).complement().value(), 0.75);
        assert!(Probability::ZERO.is_zero());
        assert!(!Probability::ONE.is_zero());
    }

    #[test]
    fn combined_probability_of_single_machine_is_its_probability() {
        assert!((combined_success_probability(&[0.3]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn combined_probability_of_two_machines() {
        // 1 − (0.5)(0.75) = 0.625
        assert!((combined_success_probability(&[0.5, 0.25]) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn combined_probability_with_certain_machine_is_one() {
        assert!((combined_success_probability(&[0.2, 1.0, 0.1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_machine_set_never_succeeds() {
        assert_eq!(combined_success_probability(&[]), 0.0);
        assert_eq!(mass_upper_bound(&[]), 0.0);
    }

    #[test]
    fn success_within_accumulates_over_steps() {
        let p = success_within(0.5, 2);
        assert!((p - 0.75).abs() < 1e-12);
        assert_eq!(success_within(0.0, 100), 0.0);
        assert!((success_within(1.0, 1) - 1.0).abs() < 1e-12);
    }

    proptest! {
        /// Proposition 2.1 upper bound: success probability ≤ mass.
        #[test]
        fn proposition_2_1_upper_bound(probs in proptest::collection::vec(0.0f64..=1.0, 0..16)) {
            let p = combined_success_probability(&probs);
            let mass: f64 = probs.iter().sum();
            prop_assert!(p <= mass + 1e-12);
        }

        /// Proposition 2.1 lower bound: if mass ≤ 1 then success ≥ mass / e.
        #[test]
        fn proposition_2_1_lower_bound(probs in proptest::collection::vec(0.0f64..=0.2, 0..5)) {
            let mass: f64 = probs.iter().sum();
            prop_assume!(mass <= 1.0);
            let p = combined_success_probability(&probs);
            prop_assert!(p >= mass / std::f64::consts::E - 1e-12);
        }

        /// The helper bounds sandwich the true probability when mass ≤ 1.
        #[test]
        fn bounds_sandwich(probs in proptest::collection::vec(0.0f64..=0.3, 1..4)) {
            let mass: f64 = probs.iter().sum();
            prop_assume!(mass <= 1.0);
            let p = combined_success_probability(&probs);
            prop_assert!(mass_lower_bound(&probs) <= p + 1e-12);
            prop_assert!(p <= mass_upper_bound(&probs) + 1e-12);
        }
    }
}
