//! Property battery for [`SuuInstance::apply_delta`], the service's
//! protocol-v2 delta application.
//!
//! Three families of properties:
//!
//! * **Digest parity with hand-built mutation** — applying a delta and then
//!   hashing must equal hashing an instance built from scratch with the edit
//!   already in place, for every edit kind. The delta path and the build
//!   path must be indistinguishable to the cache.
//! * **Commutation** — edits that touch disjoint state (distinct `set_prob`
//!   cells, a probability edit and an edge addition) produce the same
//!   instance in either application order, and batching them into one delta
//!   equals applying them sequentially.
//! * **Totality** — arbitrary malformed deltas are rejected with structured
//!   [`DeltaError`]s, never a panic, and an accepted delta always yields a
//!   fully valid instance.

use proptest::prelude::*;
use suu_core::{DeltaError, InstanceDelta, JobId, MachineId, SuuInstance};
use suu_graph::Dag;

/// Deterministic pseudo-random probability for cell `(i, j)`, strictly
/// positive so every job is schedulable on every machine.
fn prob_for(seed: u64, i: usize, j: usize) -> f64 {
    let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (j as u64) << 17;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    0.05 + 0.95 * ((x % 10_000) as f64 / 10_001.0)
}

/// Deterministic forward edge list over `n` jobs (u < v, so always a DAG).
fn edges_for(seed: u64, n: usize) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let mut x = seed ^ ((u * 131 + v) as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            x ^= x >> 33;
            if x.is_multiple_of(4) {
                edges.push((u, v));
            }
        }
    }
    edges
}

fn probs_for(seed: u64, n: usize, m: usize) -> Vec<f64> {
    let mut probs = vec![0.0; n * m];
    for i in 0..m {
        for j in 0..n {
            probs[i * n + j] = prob_for(seed, i, j);
        }
    }
    probs
}

fn build_instance(n: usize, m: usize, seed: u64) -> SuuInstance {
    let dag = Dag::from_edges(n, edges_for(seed, n)).unwrap();
    SuuInstance::new(n, m, probs_for(seed, n, m), dag).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn set_prob_digest_matches_hand_built(
        n in 2usize..8,
        m in 2usize..5,
        seed in 0u64..1_000_000,
        cell in 0usize..40,
        p_raw in 1u32..1000,
    ) {
        let base = build_instance(n, m, seed);
        let (i, j) = (cell % m, (cell / m) % n);
        let p = f64::from(p_raw) / 1000.0; // in (0, 1]: keeps the job schedulable
        let delta = InstanceDelta { set_prob: vec![(i, j, p)], ..Default::default() };
        let child = base.apply_delta(&delta).unwrap();

        let mut probs = probs_for(seed, n, m);
        probs[i * n + j] = p;
        let hand = SuuInstance::new(n, m, probs, Dag::from_edges(n, edges_for(seed, n)).unwrap()).unwrap();
        prop_assert_eq!(&child, &hand);
        prop_assert_eq!(child.canonical_digest(), hand.canonical_digest());
        // A positive-to-positive overwrite keeps the sparsity pattern, which
        // is exactly what the warm-start index keys on.
        prop_assert_eq!(child.structural_digest(), base.structural_digest());
        prop_assert!(child.canonical_digest() != base.canonical_digest());
    }

    #[test]
    fn add_job_digest_matches_hand_built(
        n in 2usize..7,
        m in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let base = build_instance(n, m, seed);
        let col: Vec<f64> = (0..m).map(|i| prob_for(seed ^ 0xA11, i, n)).collect();
        let delta = InstanceDelta { add_job: Some(col.clone()), ..Default::default() };
        let child = base.apply_delta(&delta).unwrap();

        let mut probs = Vec::with_capacity(m * (n + 1));
        for i in 0..m {
            for j in 0..n {
                probs.push(prob_for(seed, i, j));
            }
            probs.push(col[i]);
        }
        let hand = SuuInstance::new(n + 1, m, probs, Dag::from_edges(n + 1, edges_for(seed, n)).unwrap()).unwrap();
        prop_assert_eq!(&child, &hand);
        prop_assert_eq!(child.canonical_digest(), hand.canonical_digest());
    }

    #[test]
    fn remove_job_digest_matches_hand_built(
        n in 3usize..8,
        m in 1usize..5,
        seed in 0u64..1_000_000,
        victim_raw in 0usize..8,
    ) {
        let base = build_instance(n, m, seed);
        let victim = victim_raw % n;
        let delta = InstanceDelta { remove_job: Some(victim), ..Default::default() };
        let child = base.apply_delta(&delta).unwrap();

        let mut probs = Vec::with_capacity(m * (n - 1));
        for i in 0..m {
            for j in 0..n {
                if j != victim {
                    probs.push(prob_for(seed, i, j));
                }
            }
        }
        let shift = |x: usize| if x > victim { x - 1 } else { x };
        let edges: Vec<(usize, usize)> = edges_for(seed, n)
            .into_iter()
            .filter(|&(u, v)| u != victim && v != victim)
            .map(|(u, v)| (shift(u), shift(v)))
            .collect();
        let hand = SuuInstance::new(n - 1, m, probs, Dag::from_edges(n - 1, edges).unwrap()).unwrap();
        prop_assert_eq!(&child, &hand);
        prop_assert_eq!(child.canonical_digest(), hand.canonical_digest());
    }

    #[test]
    fn drain_machine_digest_matches_hand_built(
        n in 2usize..8,
        m in 2usize..5,
        seed in 0u64..1_000_000,
        victim_raw in 0usize..8,
    ) {
        let base = build_instance(n, m, seed);
        let victim = victim_raw % m;
        let delta = InstanceDelta { drain_machine: Some(victim), ..Default::default() };
        let child = base.apply_delta(&delta).unwrap();

        let mut probs = Vec::with_capacity((m - 1) * n);
        for i in (0..m).filter(|&i| i != victim) {
            for j in 0..n {
                probs.push(prob_for(seed, i, j));
            }
        }
        let hand = SuuInstance::new(n, m - 1, probs, Dag::from_edges(n, edges_for(seed, n)).unwrap()).unwrap();
        prop_assert_eq!(&child, &hand);
        prop_assert_eq!(child.canonical_digest(), hand.canonical_digest());
    }

    #[test]
    fn empty_delta_is_identity(
        n in 2usize..8,
        m in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let base = build_instance(n, m, seed);
        let child = base.apply_delta(&InstanceDelta::default()).unwrap();
        prop_assert_eq!(&child, &base);
        prop_assert_eq!(child.canonical_digest(), base.canonical_digest());
    }

    #[test]
    fn disjoint_set_prob_edits_commute(
        n in 2usize..8,
        m in 2usize..5,
        seed in 0u64..1_000_000,
        cell_a in 0usize..40,
        cell_b in 0usize..40,
        pa_raw in 1u32..1000,
        pb_raw in 1u32..1000,
    ) {
        let (ia, ja) = (cell_a % m, (cell_a / m) % n);
        let (ib, jb) = (cell_b % m, (cell_b / m) % n);
        prop_assume!((ia, ja) != (ib, jb));
        let pa = f64::from(pa_raw) / 1000.0;
        let pb = f64::from(pb_raw) / 1000.0;
        let base = build_instance(n, m, seed);
        let da = InstanceDelta { set_prob: vec![(ia, ja, pa)], ..Default::default() };
        let db = InstanceDelta { set_prob: vec![(ib, jb, pb)], ..Default::default() };

        let ab = base.apply_delta(&da).unwrap().apply_delta(&db).unwrap();
        let ba = base.apply_delta(&db).unwrap().apply_delta(&da).unwrap();
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.canonical_digest(), ba.canonical_digest());

        // Batching the two commuting edits into one delta is the same edit.
        let batched = base.apply_delta(&InstanceDelta {
            set_prob: vec![(ia, ja, pa), (ib, jb, pb)],
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(batched.canonical_digest(), ab.canonical_digest());
    }

    #[test]
    fn set_prob_and_add_edge_commute(
        n in 3usize..8,
        m in 1usize..5,
        seed in 0u64..1_000_000,
        cell in 0usize..40,
        p_raw in 1u32..1000,
        u_raw in 0usize..8,
    ) {
        let base = build_instance(n, m, seed);
        let (i, j) = (cell % m, (cell / m) % n);
        let u = u_raw % (n - 1);
        let v = u + 1; // forward edge: never creates a cycle alongside edges_for
        prop_assume!(!base.precedence().has_edge(u, v));
        let dp = InstanceDelta { set_prob: vec![(i, j, f64::from(p_raw) / 1000.0)], ..Default::default() };
        let de = InstanceDelta { add_edge: vec![(u, v)], ..Default::default() };
        let pe = base.apply_delta(&dp).unwrap().apply_delta(&de).unwrap();
        let ep = base.apply_delta(&de).unwrap().apply_delta(&dp).unwrap();
        prop_assert_eq!(&pe, &ep);
        prop_assert_eq!(pe.canonical_digest(), ep.canonical_digest());
    }

    #[test]
    fn arbitrary_deltas_never_panic(
        n in 2usize..6,
        m in 1usize..4,
        seed in 0u64..1_000_000,
        set_prob in collection::vec((0usize..8, 0usize..8, -0.5f64..1.5), 0..4),
        // The vendored proptest has no Option strategy: a flag bitmask picks
        // which optional edits are present.
        present in 0u32..16,
        add_job_row in collection::vec(0.0f64..1.0, 0..6),
        remove_job_idx in 0usize..8,
        drain_machine_idx in 0usize..6,
        add_machine_row in collection::vec(0.0f64..1.0, 0..8),
        add_edge in collection::vec((0usize..8, 0usize..8), 0..4),
    ) {
        let base = build_instance(n, m, seed);
        let delta = InstanceDelta {
            set_prob,
            add_job: (present & 1 != 0).then_some(add_job_row),
            remove_job: (present & 2 != 0).then_some(remove_job_idx),
            drain_machine: (present & 4 != 0).then_some(drain_machine_idx),
            add_machine: (present & 8 != 0).then_some(add_machine_row),
            add_edge,
        };
        // Totality: Ok with a fully valid instance, or a structured error.
        match base.apply_delta(&delta) {
            Ok(child) => {
                prop_assert!(child.num_jobs() >= 1);
                prop_assert!(child.num_machines() >= 1);
                // Revalidation through `SuuInstance::new` means a rebuild of
                // the child from its own parts must succeed and agree.
                let rebuilt = SuuInstance::new(
                    child.num_jobs(),
                    child.num_machines(),
                    (0..child.num_machines() * child.num_jobs()).map(|k| {
                        child.prob(MachineId(k / child.num_jobs()), JobId(k % child.num_jobs()))
                    }).collect(),
                    child.precedence().clone(),
                ).unwrap();
                prop_assert_eq!(rebuilt.canonical_digest(), child.canonical_digest());
            }
            Err(err) => {
                // Structured, displayable, and classified.
                let text = err.to_string();
                prop_assert!(!text.is_empty());
            }
        }
    }

    #[test]
    fn out_of_range_indices_are_named_in_the_error(
        n in 2usize..6,
        m in 1usize..4,
        seed in 0u64..1_000_000,
        excess in 0usize..5,
    ) {
        let base = build_instance(n, m, seed);
        let bad_job = n + excess;
        let bad_machine = m + excess;
        prop_assert_eq!(
            base.apply_delta(&InstanceDelta { remove_job: Some(bad_job), ..Default::default() }),
            Err(DeltaError::UnknownJob { job: bad_job, num_jobs: n })
        );
        prop_assert_eq!(
            base.apply_delta(&InstanceDelta { drain_machine: Some(bad_machine), ..Default::default() }),
            Err(DeltaError::UnknownMachine { machine: bad_machine, num_machines: m })
        );
        prop_assert_eq!(
            base.apply_delta(&InstanceDelta { set_prob: vec![(0, 0, 2.0)], ..Default::default() }),
            Err(DeltaError::InvalidProbability { machine: 0, job: 0, value: 2.0 })
        );
    }
}
