//! Property tests for [`SuuInstance::canonical_digest`], the key of the
//! service's schedule cache and single-flight table.
//!
//! The digest must be a pure function of the instance's *logical contents*:
//!
//! * invariant under every representation detail — the order probability
//!   entries are supplied to the builder, the order edges are supplied to
//!   the DAG constructor, a serde round-trip, cloning, lazy-index state;
//! * sensitive to every logical change — any single probability, any
//!   precedence edge, the dimensions.
//!
//! Relabelling jobs or machines produces a *different* instance (the matrix
//! moves), and the digest intentionally distinguishes it: serving machine
//! 0's schedule row to machine 1 would be wrong, so a relabel must never
//! alias a cache entry.

use proptest::prelude::*;
use suu_core::{InstanceBuilder, JobId, MachineId, SuuInstance};
use suu_graph::Dag;

/// Deterministic pseudo-random probability for cell `(i, j)`.
fn prob_for(seed: u64, i: usize, j: usize) -> f64 {
    let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (j as u64) << 17;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    // In (0.05, 1.0): strictly positive so every job is schedulable.
    0.05 + 0.95 * ((x % 10_000) as f64 / 10_001.0)
}

/// Deterministic forward edge list over `n` jobs (u < v, so always a DAG).
fn edges_for(seed: u64, n: usize) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let mut x = seed ^ ((u * 131 + v) as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            x ^= x >> 33;
            if x.is_multiple_of(4) {
                edges.push((u, v));
            }
        }
    }
    edges
}

fn build_instance(n: usize, m: usize, seed: u64) -> SuuInstance {
    let mut probs = vec![0.0; n * m];
    for i in 0..m {
        for j in 0..n {
            probs[i * n + j] = prob_for(seed, i, j);
        }
    }
    let dag = Dag::from_edges(n, edges_for(seed, n)).unwrap();
    SuuInstance::new(n, m, probs, dag).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn digest_is_invariant_under_entry_insertion_order(
        n in 2usize..8,
        m in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let reference = build_instance(n, m, seed);
        // Same matrix, entries inserted one by one in *reverse* cell order.
        let mut builder = InstanceBuilder::new(n, m);
        for i in (0..m).rev() {
            for j in (0..n).rev() {
                builder = builder.probability(MachineId(i), JobId(j), prob_for(seed, i, j));
            }
        }
        let dag = Dag::from_edges(n, edges_for(seed, n)).unwrap();
        let reordered = builder.precedence(dag).build().unwrap();
        prop_assert_eq!(&reference, &reordered);
        prop_assert_eq!(reference.canonical_digest(), reordered.canonical_digest());
    }

    #[test]
    fn digest_is_invariant_under_edge_permutation(
        n in 3usize..10,
        seed in 0u64..1_000_000,
    ) {
        let edges = edges_for(seed, n);
        prop_assume!(!edges.is_empty());
        // Reversed and rotated permutations of the same edge set.
        let mut reversed = edges.clone();
        reversed.reverse();
        let mut rotated = edges.clone();
        rotated.rotate_left(edges.len() / 2);
        let digest_of = |edge_list: &[(usize, usize)]| {
            let dag = Dag::from_edges(n, edge_list.iter().copied()).unwrap();
            SuuInstance::new(n, 2, (0..2 * n).map(|k| prob_for(seed, k / n, k % n)).collect(), dag)
                .unwrap()
                .canonical_digest()
        };
        prop_assert_eq!(digest_of(&edges), digest_of(&reversed));
        prop_assert_eq!(digest_of(&edges), digest_of(&rotated));
    }

    #[test]
    fn digest_survives_serde_roundtrip_and_clone(
        n in 2usize..8,
        m in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let instance = build_instance(n, m, seed);
        let json = serde_json::to_string(&instance).unwrap();
        let back: SuuInstance = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&instance, &back);
        prop_assert_eq!(instance.canonical_digest(), back.canonical_digest());
        // Building the lazy sparse index must not perturb the digest.
        let warmed = instance.clone();
        let _ = warmed.positive_entries_sorted();
        prop_assert_eq!(instance.canonical_digest(), warmed.canonical_digest());
    }

    #[test]
    fn digest_is_sensitive_to_any_probability_change(
        n in 2usize..8,
        m in 1usize..5,
        seed in 0u64..1_000_000,
        cell in 0usize..1000,
        delta in 1usize..50,
    ) {
        let instance = build_instance(n, m, seed);
        let (i, j) = ((cell / n) % m, cell % n);
        let old = prob_for(seed, i, j);
        // A strictly different value still inside (0, 1].
        let perturbed = if old > 0.5 {
            old - delta as f64 / 1000.0
        } else {
            old + delta as f64 / 1000.0
        };
        prop_assume!(perturbed != old);
        let mut probs: Vec<f64> = (0..m * n).map(|k| prob_for(seed, k / n, k % n)).collect();
        probs[i * n + j] = perturbed;
        let dag = Dag::from_edges(n, edges_for(seed, n)).unwrap();
        let changed = SuuInstance::new(n, m, probs, dag).unwrap();
        prop_assert!(instance.canonical_digest() != changed.canonical_digest());
    }

    #[test]
    fn digest_is_sensitive_to_any_edge_change(
        n in 3usize..10,
        seed in 0u64..1_000_000,
        pick in 0usize..1000,
    ) {
        let edges = edges_for(seed, n);
        let probs: Vec<f64> = (0..2 * n).map(|k| prob_for(seed, k / n, k % n)).collect();
        let base = SuuInstance::new(
            n,
            2,
            probs.clone(),
            Dag::from_edges(n, edges.iter().copied()).unwrap(),
        )
        .unwrap();

        // Removing any one present edge flips the digest.
        if !edges.is_empty() {
            let drop_at = pick % edges.len();
            let fewer: Vec<_> = edges
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != drop_at)
                .map(|(_, &e)| e)
                .collect();
            let smaller = SuuInstance::new(
                n,
                2,
                probs.clone(),
                Dag::from_edges(n, fewer).unwrap(),
            )
            .unwrap();
            prop_assert!(base.canonical_digest() != smaller.canonical_digest());
        }

        // Adding any one absent forward edge flips the digest.
        let absent: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .filter(|e| !edges.contains(e))
            .collect();
        if !absent.is_empty() {
            let mut more = edges.clone();
            more.push(absent[pick % absent.len()]);
            let bigger = SuuInstance::new(
                n,
                2,
                probs,
                Dag::from_edges(n, more).unwrap(),
            )
            .unwrap();
            prop_assert!(base.canonical_digest() != bigger.canonical_digest());
        }
    }

    #[test]
    fn digest_is_sensitive_to_dimensions(
        n in 2usize..8,
        m in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let instance = build_instance(n, m, seed);
        let taller = build_instance(n, m + 1, seed);
        let wider = build_instance(n + 1, m, seed);
        prop_assert!(instance.canonical_digest() != taller.canonical_digest());
        prop_assert!(instance.canonical_digest() != wider.canonical_digest());
    }

    #[test]
    fn digest_distinguishes_machine_relabelling(
        n in 2usize..8,
        m in 2usize..5,
        seed in 0u64..1_000_000,
    ) {
        // Swapping two machines' rows is a *different* instance (the wire
        // matrix moved); the cache must never serve one for the other, so
        // the digest must distinguish them whenever the rows differ.
        let instance = build_instance(n, m, seed);
        let mut probs: Vec<f64> = (0..m * n).map(|k| prob_for(seed, k / n, k % n)).collect();
        let row0: Vec<f64> = probs[0..n].to_vec();
        let row1: Vec<f64> = probs[n..2 * n].to_vec();
        prop_assume!(row0 != row1);
        probs[0..n].copy_from_slice(&row1);
        probs[n..2 * n].copy_from_slice(&row0);
        let swapped = SuuInstance::new(
            n,
            m,
            probs,
            Dag::from_edges(n, edges_for(seed, n)).unwrap(),
        )
        .unwrap();
        prop_assert!(instance != swapped);
        prop_assert!(instance.canonical_digest() != swapped.canonical_digest());
    }
}
