//! End-to-end battery for protocol-v2 delta solving: a client that holds a
//! solved base's digest submits small edits instead of full payloads, the
//! service applies them to the cached parent and warm-starts the re-solve
//! from the parent's LP basis.
//!
//! Covers the full client lifecycle over a real TCP connection:
//!
//! * a delta against a warm cache solves the edited instance and reports
//!   `warm: true` in the trace,
//! * an unknown base yields the structured `unknown_base` error and the
//!   client falls back to a full cold resubmission **on the same
//!   connection**,
//! * malformed digests and out-of-range edits yield `invalid_delta`,
//! * the coalescing/cache key of a delta request is the *post-application*
//!   digest: a delta and the equivalent full payload share one cache entry.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use suu_core::{InstanceBuilder, InstanceDelta, SuuInstance};
use suu_service::{
    digest_to_wire, error_kind, spawn_tcp, EngineChoice, Request, Response, SchedulerService,
    ServiceConfig, ServiceHandle, SolveOptions, TcpServerConfig,
};
use suu_workloads::uniform_matrix;

fn start_service() -> ServiceHandle {
    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    spawn_tcp(
        service,
        &TcpServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..TcpServerConfig::default()
        },
    )
    .expect("ephemeral bind succeeds")
}

/// A chains-structured tenant base: routed to the chains solver, whose LP
/// captures (and consumes) warm-start bases under the revised engine.
fn tenant_base(seed: u64) -> SuuInstance {
    let (n, m) = (8, 3);
    InstanceBuilder::new(n, m)
        .probability_matrix(uniform_matrix(n, m, 0.3, 0.9, seed))
        .chains(&[vec![0, 1, 2, 3], vec![4, 5], vec![6, 7]])
        .build()
        .unwrap()
}

/// Per-request options every request in this battery carries: the revised
/// engine (the only one that captures/consumes bases) plus tracing, so the
/// responses say whether the solve warm-started.
fn traced_revised() -> SolveOptions {
    SolveOptions {
        engine: Some(EngineChoice::Revised),
        trace: true,
        ..SolveOptions::default()
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(handle: &ServiceHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream),
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Response {
        let line = serde_json::to_string(request).unwrap();
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        assert!(!response.is_empty(), "connection must survive");
        serde_json::from_str(response.trim_end()).unwrap()
    }
}

#[test]
fn delta_against_a_warm_cache_solves_the_child_and_traces_warm() {
    let handle = start_service();
    let mut client = Client::connect(&handle);

    let base = tenant_base(41);
    let mut prime = Request::from_instance(1, &base);
    prime.options = Some(traced_revised());
    let primed = client.roundtrip(&prime);
    assert!(primed.ok, "priming solve failed: {:?}", primed.error);
    assert!(
        !primed.trace.as_ref().unwrap().warm,
        "the first solve of a structural class is cold"
    );

    // One-cell drift: same structural class, different canonical digest.
    let delta = InstanceDelta {
        set_prob: vec![(1, 2, 0.66)],
        ..InstanceDelta::default()
    };
    let mut drifted = Request::from_delta(2, base.canonical_digest(), delta.clone());
    drifted.options = Some(traced_revised());
    let resp = client.roundtrip(&drifted);
    assert!(resp.ok, "delta solve failed: {:?}", resp.error);
    assert!(!resp.cache_hit, "a drifted instance is a fresh solve");
    assert!(
        resp.trace.as_ref().unwrap().warm,
        "the drifted re-solve starts from the parent's basis"
    );

    // The delta solved exactly the edited instance: resubmitting it in full
    // (a) hits the cache entry the delta created and (b) reports the same
    // objective.
    let edited = base.apply_delta(&delta).unwrap();
    let mut full = Request::from_instance(3, &edited);
    full.options = Some(traced_revised());
    let full_resp = client.roundtrip(&full);
    assert!(full_resp.ok);
    assert!(
        full_resp.cache_hit,
        "the coalescing key is the post-application digest"
    );
    assert_eq!(full_resp.lp_value, resp.lp_value);
    assert_eq!(full_resp.schedule, resp.schedule);

    handle.shutdown();
}

#[test]
fn unknown_base_falls_back_to_a_cold_resubmission_on_the_same_connection() {
    let handle = start_service();
    let mut client = Client::connect(&handle);

    let base = tenant_base(42);
    let delta = InstanceDelta {
        set_prob: vec![(0, 0, 0.5)],
        ..InstanceDelta::default()
    };

    // Nothing has been solved: the base digest is real but not cached.
    let mut premature = Request::from_delta(1, base.canonical_digest(), delta.clone());
    premature.options = Some(traced_revised());
    let rejected = client.roundtrip(&premature);
    assert!(!rejected.ok);
    assert_eq!(
        rejected.error_kind.as_deref(),
        Some(error_kind::UNKNOWN_BASE)
    );
    let message = rejected.error.as_deref().unwrap_or_default();
    assert!(
        message.contains(&digest_to_wire(base.canonical_digest())),
        "the error names the unknown digest: {message}"
    );

    // The client-side fallback protocol: resubmit the edited instance in
    // full on the SAME connection (the structured error must not have torn
    // it down), then go back to deltas.
    let edited = base.apply_delta(&delta).unwrap();
    let mut fallback = Request::from_instance(2, &edited);
    fallback.options = Some(traced_revised());
    let solved = client.roundtrip(&fallback);
    assert!(solved.ok, "cold fallback failed: {:?}", solved.error);

    // The fallback primed the cache under the edited digest, so a delta
    // against *it* now succeeds.
    let mut next = Request::from_delta(
        3,
        edited.canonical_digest(),
        InstanceDelta {
            set_prob: vec![(2, 5, 0.7)],
            ..InstanceDelta::default()
        },
    );
    next.options = Some(traced_revised());
    let resp = client.roundtrip(&next);
    assert!(resp.ok, "post-fallback delta failed: {:?}", resp.error);
    assert!(resp.trace.as_ref().unwrap().warm);

    handle.shutdown();
}

#[test]
fn malformed_digests_and_bad_edits_are_invalid_delta() {
    let handle = start_service();
    let mut client = Client::connect(&handle);

    let base = tenant_base(43);
    assert!(client.roundtrip(&Request::from_instance(1, &base)).ok);

    // Uppercase hex is not wire form.
    let mut malformed = Request::from_delta(2, base.canonical_digest(), InstanceDelta::default());
    malformed.base_digest = Some("DEADBEEFDEADBEEF".to_string());
    let resp = client.roundtrip(&malformed);
    assert!(!resp.ok);
    assert_eq!(resp.error_kind.as_deref(), Some(error_kind::INVALID_DELTA));

    // A structurally valid digest with an out-of-range edit.
    let bad_edit = Request::from_delta(
        3,
        base.canonical_digest(),
        InstanceDelta {
            set_prob: vec![(0, 99, 0.5)],
            ..InstanceDelta::default()
        },
    );
    let resp = client.roundtrip(&bad_edit);
    assert!(!resp.ok);
    assert_eq!(resp.error_kind.as_deref(), Some(error_kind::INVALID_DELTA));
    assert!(
        resp.error.as_deref().unwrap_or_default().contains("job 99"),
        "the error names the offending edit: {:?}",
        resp.error
    );

    // A delta that would close a precedence cycle (the base has 0 → 1) is
    // rejected, not solved.
    let cyclic = Request::from_delta(
        4,
        base.canonical_digest(),
        InstanceDelta {
            add_edge: vec![(1, 0)],
            ..InstanceDelta::default()
        },
    );
    let resp = client.roundtrip(&cyclic);
    assert!(!resp.ok);
    assert_eq!(resp.error_kind.as_deref(), Some(error_kind::INVALID_DELTA));

    // The connection took four structured errors and still answers.
    let final_ok = client.roundtrip(&Request::from_instance(5, &base));
    assert!(final_ok.ok);
    assert!(final_ok.cache_hit);

    handle.shutdown();
}

#[test]
fn delta_and_full_payload_coalesce_in_both_directions() {
    let handle = start_service();
    let mut client = Client::connect(&handle);

    let base = tenant_base(44);
    assert!(client.roundtrip(&Request::from_instance(1, &base)).ok);

    // Direction 1: full payload first, delta second → the delta is a hit.
    let delta = InstanceDelta {
        set_prob: vec![(1, 1, 0.42)],
        ..InstanceDelta::default()
    };
    let edited = base.apply_delta(&delta).unwrap();
    let full_first = client.roundtrip(&Request::from_instance(2, &edited));
    assert!(full_first.ok && !full_first.cache_hit);
    let via_delta = client.roundtrip(&Request::from_delta(3, base.canonical_digest(), delta));
    assert!(via_delta.ok);
    assert!(
        via_delta.cache_hit,
        "a delta resolving to an already-solved digest is a cache hit"
    );
    assert_eq!(via_delta.lp_value, full_first.lp_value);

    // Direction 2: delta first (fresh), full payload second → hit. Covered
    // end to end in `delta_against_a_warm_cache_solves_the_child_and_traces_warm`;
    // here the reverse uses a *different* edit so both orders run fresh once.
    let delta2 = InstanceDelta {
        set_prob: vec![(2, 3, 0.37)],
        ..InstanceDelta::default()
    };
    let edited2 = base.apply_delta(&delta2).unwrap();
    let via_delta2 = client.roundtrip(&Request::from_delta(4, base.canonical_digest(), delta2));
    assert!(via_delta2.ok && !via_delta2.cache_hit);
    let full_second = client.roundtrip(&Request::from_instance(5, &edited2));
    assert!(full_second.ok);
    assert!(full_second.cache_hit);
    assert_eq!(full_second.lp_value, via_delta2.lp_value);

    handle.shutdown();
}
