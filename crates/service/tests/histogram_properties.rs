//! Property tests for the log-bucketed [`AtomicHistogram`]: quantile
//! monotonicity, bucket-bound bracketing, exactness of count/sum, and
//! merge/serde round-trips, over arbitrary recorded value sets.
//!
//! The quantile contract under test is the one documented on
//! [`HistogramSnapshot::quantile`]: nearest rank over the bucket counts,
//! reported as the containing bucket's inclusive upper bound. Against an
//! exact sorted reference that means the report always lands in *the same
//! bucket* as the true order statistic — conservative (≥ the true value),
//! never off by more than one half-octave.

use proptest::collection::vec;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use suu_service::obs::{bucket_index, bucket_lower_bound, bucket_upper_bound};
use suu_service::{AtomicHistogram, HistogramSnapshot};

/// Values stay below the overflow bucket's nominal `2^32 − 1` upper bound so
/// every recorded value is bracketed by its bucket, and well below the range
/// where the exact `sum` counter could wrap.
const MAX_VALUE: u64 = (1u64 << 32) - 1;

/// The quantile points the service reports on the wire.
const QUANTILES: [f64; 4] = [0.50, 0.90, 0.99, 0.999];

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let histogram = AtomicHistogram::new();
    for &value in values {
        histogram.record(value);
    }
    histogram.snapshot()
}

/// Exact nearest-rank order statistic: the reference the bucketed quantile
/// is compared against.
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = (q * n as f64).ceil().max(1.0).min(n as f64) as usize;
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_value_is_bracketed_by_its_bucket(value in 0..=MAX_VALUE) {
        let index = bucket_index(value);
        prop_assert!(bucket_lower_bound(index) <= value);
        prop_assert!(value <= bucket_upper_bound(index));
    }

    #[test]
    fn count_and_sum_are_exact(values in vec(0..=MAX_VALUE, 0..200)) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(values in vec(0..=MAX_VALUE, 1..200)) {
        let snap = snapshot_of(&values);
        prop_assert!(snap.p50() <= snap.p90());
        prop_assert!(snap.p90() <= snap.p99());
        prop_assert!(snap.p99() <= snap.p999());
        prop_assert!(snap.p999() <= snap.max_bound());
        // max_bound dominates every recorded value (it is the top non-empty
        // bucket's inclusive upper bound).
        let max_recorded = *values.iter().max().expect("non-empty");
        prop_assert!(max_recorded <= snap.max_bound());
    }

    #[test]
    fn quantile_lands_in_the_exact_order_statistic_bucket(
        values in vec(0..=MAX_VALUE, 1..200),
    ) {
        let snap = snapshot_of(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in QUANTILES {
            let exact = exact_nearest_rank(&sorted, q);
            let reported = snap.quantile(q);
            // Same bucket as the true order statistic, reported as that
            // bucket's upper bound — so conservative but tightly so.
            prop_assert_eq!(reported, bucket_upper_bound(bucket_index(exact)));
            prop_assert!(reported >= exact);
        }
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        left in vec(0..=MAX_VALUE, 0..100),
        right in vec(0..=MAX_VALUE, 0..100),
    ) {
        let mut merged = snapshot_of(&left);
        merged.merge(&snapshot_of(&right));

        let mut concatenated = left;
        concatenated.extend_from_slice(&right);
        prop_assert_eq!(merged, snapshot_of(&concatenated));
    }

    #[test]
    fn atomic_merge_equals_snapshot_merge(
        left in vec(0..=MAX_VALUE, 0..100),
        right in vec(0..=MAX_VALUE, 0..100),
    ) {
        let histogram = AtomicHistogram::new();
        for &value in &left {
            histogram.record(value);
        }
        histogram.merge(&snapshot_of(&right));

        let mut expected = snapshot_of(&left);
        expected.merge(&snapshot_of(&right));
        prop_assert_eq!(histogram.snapshot(), expected);
    }

    #[test]
    fn serde_round_trip_preserves_the_snapshot(values in vec(0..=MAX_VALUE, 0..100)) {
        let snap = snapshot_of(&values);
        let wire = snap.to_value();
        let back = HistogramSnapshot::from_value(&wire).expect("snapshot deserialises");
        prop_assert_eq!(back, snap);
    }
}
