//! The protocol v1 back-compat gate: a golden corpus of v1 request lines
//! whose responses are pinned byte for byte.
//!
//! The corpus (`tests/golden/v1_requests.jsonl`) exercises every structural
//! class, forced solvers, estimates, cache hits and every error path a v1
//! client can trigger. Each line's response is pinned in a golden file per
//! execution mode (`v1_responses_serial.jsonl`, `v1_responses_pipelined.jsonl`
//! — the two modes legitimately render the same response with different field
//! order), and the test replays the corpus through all four transport ×
//! execution-mode combos, asserting the bytes match modulo the two wall-clock
//! fields (`service_micros`, `lp_micros`), which are normalised on both
//! sides before comparison.
//!
//! Any change to the service that alters what a v1 client receives — a new
//! always-emitted field, a reordered envelope, different error phrasing —
//! fails this test. Run with `GOLDEN_UPDATE=1` to regenerate the golden
//! files after an *intentional* protocol change.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use suu_service::{
    spawn_tcp, ExecutionMode, PipelineConfig, SchedulerService, ServiceConfig, SolverPool,
    TcpServerConfig,
};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn corpus() -> Vec<String> {
    let raw = std::fs::read_to_string(golden_dir().join("v1_requests.jsonl"))
        .expect("v1 request corpus present");
    raw.lines().map(str::to_string).collect()
}

/// Pipelined execution sized for determinism: a single solver thread drains
/// the queue in FIFO order, so responses come back in submission order and
/// cache/coalescing behaviour is identical to the serial loop.
fn deterministic_pipeline() -> PipelineConfig {
    PipelineConfig {
        solver_threads: 1,
        queue_capacity: 1024,
    }
}

/// Replaces the digits following every occurrence of `key` with `_`, so two
/// runs differing only in wall-clock agree byte for byte.
fn mask_field(line: &str, key: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(at) = rest.find(key) {
        let value_start = at + key.len();
        out.push_str(&rest[..value_start]);
        let tail = &rest[value_start..];
        let digits = tail.bytes().take_while(u8::is_ascii_digit).count();
        if digits > 0 {
            out.push('_');
        }
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

fn normalise(line: &str) -> String {
    let line = mask_field(line, "\"service_micros\":");
    mask_field(&line, "\"lp_micros\":")
}

/// A `Write` into a shared buffer (the pipelined transport takes ownership
/// of its writer, so a plain `&mut Vec<u8>` cannot be used there).
#[derive(Clone, Default)]
struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Serves the corpus over the in-process stdin transport.
fn run_stdin(mode: &ExecutionMode) -> Vec<String> {
    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let input = corpus().join("\n") + "\n";
    let output = SharedBuf::default();
    match mode {
        ExecutionMode::Serial => {
            service
                .serve_lines(input.as_bytes(), output.clone())
                .unwrap();
        }
        ExecutionMode::Pipelined(config) => {
            let pool = SolverPool::spawn(Arc::clone(&service), config);
            service
                .serve_lines_pipelined(input.as_bytes(), output.clone(), &pool.handle())
                .unwrap();
            pool.shutdown();
        }
    }
    let bytes = output.0.lock().unwrap().clone();
    String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

/// Serves the corpus over a real TCP connection.
fn run_tcp(mode: ExecutionMode) -> Vec<String> {
    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let handle = spawn_tcp(
        service,
        &TcpServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            mode,
        },
    )
    .unwrap();
    let lines = corpus();
    let expected = lines.iter().filter(|l| !l.trim().is_empty()).count();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    for line in &lines {
        writeln!(writer, "{line}").unwrap();
    }
    writer.flush().unwrap();
    let mut responses = Vec::new();
    for _ in 0..expected {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection closed"
        );
        responses.push(line.trim_end().to_string());
    }
    drop(writer);
    drop(reader);
    handle.shutdown();
    responses
}

fn check_against_golden(golden_file: &str, got: &[String], transport: &str) {
    let path = golden_dir().join(golden_file);
    let normalised: Vec<String> = got.iter().map(|l| normalise(l)).collect();
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::write(&path, normalised.join("\n") + "\n").expect("golden file writable");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("golden file {golden_file} missing; run with GOLDEN_UPDATE=1"));
    let want: Vec<&str> = want.lines().collect();
    assert_eq!(
        want.len(),
        normalised.len(),
        "{transport}: response count changed ({} golden vs {} got)",
        want.len(),
        normalised.len()
    );
    for (k, (want_line, got_line)) in want.iter().zip(normalised.iter()).enumerate() {
        assert_eq!(
            want_line, got_line,
            "{transport}: response {k} diverged from the v1 golden corpus"
        );
    }
}

#[test]
fn v1_corpus_is_byte_stable_over_stdin_serial() {
    check_against_golden(
        "v1_responses_serial.jsonl",
        &run_stdin(&ExecutionMode::Serial),
        "stdin/serial",
    );
}

#[test]
fn v1_corpus_is_byte_stable_over_stdin_pipelined() {
    check_against_golden(
        "v1_responses_pipelined.jsonl",
        &run_stdin(&ExecutionMode::Pipelined(deterministic_pipeline())),
        "stdin/pipelined",
    );
}

#[test]
fn v1_corpus_is_byte_stable_over_tcp_serial() {
    check_against_golden(
        "v1_responses_serial.jsonl",
        &run_tcp(ExecutionMode::Serial),
        "tcp/serial",
    );
}

#[test]
fn v1_corpus_is_byte_stable_over_tcp_pipelined() {
    check_against_golden(
        "v1_responses_pipelined.jsonl",
        &run_tcp(ExecutionMode::Pipelined(deterministic_pipeline())),
        "tcp/pipelined",
    );
}

/// The corpus itself is pinned: every line is either intentionally malformed
/// (annotated below by being unparseable) or a valid v1 request. This guards
/// against accidental edits to the fixture.
#[test]
fn corpus_covers_the_v1_surface() {
    let lines = corpus();
    assert!(lines.len() >= 10, "corpus shrank to {} lines", lines.len());
    let parseable = lines
        .iter()
        .filter(|l| serde_json::from_str::<suu_service::Request>(l).is_ok())
        .count();
    assert!(parseable >= 8, "only {parseable} parseable corpus lines");
    assert!(
        parseable < lines.len(),
        "corpus must keep at least one malformed line"
    );
}
