//! Parity gate for the adaptive-session execution core.
//!
//! The adaptive-vs-oblivious comparison in `exp_adaptive` is only a clean
//! measurement of *feedback* if the two arms share execution semantics
//! exactly. This test pins that contract from both ends:
//!
//! * a **silent** session (no completion reports, no scripted disruptions)
//!   realizes the same makespan, bit-for-bit per seed, as both the
//!   oblivious arm and the plain simulator ([`suu_sim::simulate_once`]) —
//!   the three code paths share [`suu_sim::execute_step`]'s RNG draw order;
//! * under the machine-failure script with paired seeds, the adaptive arm
//!   (which re-plans around the dead machine) never loses to the oblivious
//!   arm (which keeps assigning to it).

use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Value};
use suu_core::ObliviousSchedule;
use suu_service::{
    drive_session, execute_oblivious, open_session_line, DriveConfig, SchedulerService,
    ServiceConfig,
};
use suu_sim::simulate_once;
use suu_workloads::machine_failure_scenario;

const MAX_STEPS: usize = 10_000;

/// Opens a session for `instance` and returns the revision-0 schedule the
/// server handed out.
fn revision0(service: &SchedulerService, instance: &suu_core::SuuInstance) -> ObliviousSchedule {
    let open = service.handle_line(&open_session_line(1, instance));
    let value = serde_json::parse(&open).expect("open response parses");
    assert_eq!(
        value.get("ok"),
        Some(&Value::Bool(true)),
        "open_session failed: {open}"
    );
    ObliviousSchedule::from_value(value.get("schedule").expect("schedule present"))
        .expect("schedule parses")
}

#[test]
fn silent_session_matches_oblivious_and_simulator() {
    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let scenario = machine_failure_scenario(13);
    let schedule = revision0(&service, &scenario.instance);

    for seed in [1u64, 7, 42, 0xDEAD, 0x5eed_5eed] {
        let cfg = DriveConfig {
            seed,
            max_steps: MAX_STEPS,
            report_completions: false,
            failures: Vec::new(),
            drifts: Vec::new(),
        };
        let oblivious = execute_oblivious(&scenario.instance, &schedule, &cfg);
        let sim = simulate_once(
            &scenario.instance,
            &mut schedule.clone(),
            &mut ChaCha8Rng::seed_from_u64(seed),
            MAX_STEPS,
        )
        .map(|steps| steps as u64);
        assert_eq!(
            oblivious, sim,
            "seed {seed}: oblivious arm diverged from the simulator"
        );

        let report = drive_session(&scenario.instance, &cfg, |line| {
            Some(service.handle_line(line))
        })
        .expect("silent session drives");
        assert_eq!(
            report.steps, oblivious,
            "seed {seed}: silent session diverged from the oblivious arm"
        );
        assert_eq!(report.revisions, 0, "a silent session must not revise");
        assert_eq!(report.unknown_session_errors, 0);
    }
}

#[test]
fn adaptive_never_loses_under_machine_failure() {
    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let scenario = machine_failure_scenario(13);

    let schedule = revision0(&service, &scenario.instance);
    let mut oblivious_sum = 0u64;
    let mut adaptive_sum = 0u64;
    for t in 0..10u64 {
        let cfg = DriveConfig {
            seed: 0xFA11 ^ t.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            max_steps: MAX_STEPS,
            report_completions: true,
            failures: scenario.failures.clone(),
            drifts: scenario.drifts.clone(),
        };
        oblivious_sum +=
            execute_oblivious(&scenario.instance, &schedule, &cfg).unwrap_or(MAX_STEPS as u64);
        let report = drive_session(&scenario.instance, &cfg, |line| {
            Some(service.handle_line(line))
        })
        .expect("adaptive session drives");
        assert_eq!(report.unknown_session_errors, 0);
        assert!(report.revisions > 0, "the failure must force a revision");
        adaptive_sum += report.steps.unwrap_or(MAX_STEPS as u64);
    }
    assert!(
        adaptive_sum <= oblivious_sum,
        "adaptive ({adaptive_sum} total steps) lost to oblivious ({oblivious_sum}) \
         under a machine failure"
    );
}
