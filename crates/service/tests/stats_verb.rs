//! Integration gate for the observability surface: the `stats` verb and the
//! opt-in per-response `trace` object, over all four transport × execution
//! mode combos (stdin/TCP × serial/pipelined).
//!
//! The contract under test:
//!
//! * requests sent with `options: {trace: true}` echo a `trace` object with
//!   the four stage latencies, a cache verdict and the LP pivot count;
//!   untraced requests omit the key entirely (v1 byte-compat);
//! * a `{"id": N, "verb": "stats"}` line answers with the full metrics
//!   snapshot on every transport, and neither it nor protocol noise counts
//!   towards the `requests` counter;
//! * the per-stage histogram counts are *consistent*: every handled request
//!   records the parse, solve and render stages exactly once, so their
//!   counts equal `requests` (the acceptance invariant the loadgen's
//!   `stats_consistency=` line greps for);
//! * unknown verbs get a structured `bad_request`, not a hung connection.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use serde::Value;
use suu_service::{
    build_request_pool, spawn_tcp, ExecutionMode, PipelineConfig, SchedulerService, ServiceConfig,
    SolveOptions, SolverPool, TcpServerConfig,
};

/// Scheduling requests per run; the first [`TRACED`] opt into tracing.
const SOLVES: usize = 6;
const TRACED: usize = 3;
const STATS_ID: u64 = 99;

/// The request corpus: `SOLVES` mixed-scenario solves (ids 1..=SOLVES, the
/// first `TRACED` with `options.trace`), then a `stats` verb and an unknown
/// verb.
fn corpus() -> Vec<String> {
    let mut pool = build_request_pool("mixed", SOLVES, 7).expect("scenario exists");
    for request in pool.iter_mut().take(TRACED) {
        request.options = Some(SolveOptions {
            trace: true,
            ..SolveOptions::default()
        });
    }
    let mut lines: Vec<String> = pool
        .iter()
        .map(|r| serde_json::to_string(r).expect("requests serialise"))
        .collect();
    lines.push(format!("{{\"id\":{STATS_ID},\"verb\":\"stats\"}}"));
    lines.push(format!("{{\"id\":{},\"verb\":\"flurb\"}}", STATS_ID + 1));
    lines
}

/// A single solver thread drains the queue in FIFO order, so the `stats`
/// line (submitted last) observes every solve's counters settled.
fn deterministic_pipeline() -> PipelineConfig {
    PipelineConfig {
        solver_threads: 1,
        queue_capacity: 1024,
    }
}

/// A `Write` into a shared buffer (the pipelined transport takes ownership
/// of its writer).
#[derive(Clone, Default)]
struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_stdin(mode: &ExecutionMode) -> Vec<String> {
    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let input = corpus().join("\n") + "\n";
    let output = SharedBuf::default();
    match mode {
        ExecutionMode::Serial => {
            service
                .serve_lines(input.as_bytes(), output.clone())
                .unwrap();
        }
        ExecutionMode::Pipelined(config) => {
            let pool = SolverPool::spawn(Arc::clone(&service), config);
            service
                .serve_lines_pipelined(input.as_bytes(), output.clone(), &pool.handle())
                .unwrap();
            pool.shutdown();
        }
    }
    let bytes = output.0.lock().unwrap().clone();
    String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

fn run_tcp(mode: ExecutionMode) -> Vec<String> {
    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let handle = spawn_tcp(
        service,
        &TcpServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            mode,
        },
    )
    .unwrap();
    let lines = corpus();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    for line in &lines {
        writeln!(writer, "{line}").unwrap();
    }
    writer.flush().unwrap();
    let mut responses = Vec::new();
    for _ in 0..lines.len() {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection closed"
        );
        responses.push(line.trim_end().to_string());
    }
    drop(writer);
    drop(reader);
    handle.shutdown();
    responses
}

/// Walks `path` into `value` and returns the number found there.
fn number(value: &Value, path: &[&str]) -> f64 {
    let mut cursor = value;
    for key in path {
        cursor = cursor
            .get(key)
            .unwrap_or_else(|| panic!("missing key `{key}` on path {path:?}"));
    }
    match cursor {
        Value::Number(n) => *n,
        other => panic!("{path:?} is not a number: {other:?}"),
    }
}

fn response_by_id(lines: &[String]) -> std::collections::HashMap<u64, Value> {
    lines
        .iter()
        .map(|line| {
            let value = serde_json::parse(line).expect("responses parse as JSON");
            let id = number(&value, &["id"]) as u64;
            (id, value)
        })
        .collect()
}

#[allow(clippy::cast_precision_loss)]
fn check(lines: &[String], pipelined: bool, transport: &str) {
    assert_eq!(lines.len(), SOLVES + 2, "{transport}: response count");
    let by_id = response_by_id(lines);

    // Traced requests echo the trace object; untraced requests omit the key.
    for id in 1..=SOLVES as u64 {
        let resp = &by_id[&id];
        assert_eq!(
            resp.get("ok"),
            Some(&Value::Bool(true)),
            "{transport}: response {id} failed"
        );
        if id <= TRACED as u64 {
            let trace = resp
                .get("trace")
                .unwrap_or_else(|| panic!("{transport}: response {id} missing trace"));
            for field in ["queue_us", "solve_us", "render_us", "flush_us", "lp_pivots"] {
                number(trace, &[field]);
            }
            match trace.get("cache") {
                Some(Value::String(verdict)) => assert!(
                    ["hit", "miss", "coalesced"].contains(&verdict.as_str()),
                    "{transport}: bad cache verdict `{verdict}`"
                ),
                other => panic!("{transport}: trace.cache not a string: {other:?}"),
            }
        } else {
            assert!(
                resp.get("trace").is_none(),
                "{transport}: response {id} must omit trace"
            );
        }
    }

    // Unknown verbs answer with a structured bad request.
    let unknown = &by_id[&(STATS_ID + 1)];
    assert_eq!(unknown.get("ok"), Some(&Value::Bool(false)), "{transport}");
    match unknown.get("error") {
        Some(Value::String(msg)) => assert!(msg.contains("flurb"), "{transport}: {msg}"),
        other => panic!("{transport}: unknown-verb error not a string: {other:?}"),
    }

    // The stats snapshot: counted requests exclude the verbs, and the
    // per-stage counts agree with the request counter.
    let stats_resp = &by_id[&STATS_ID];
    assert_eq!(
        stats_resp.get("ok"),
        Some(&Value::Bool(true)),
        "{transport}: stats verb failed"
    );
    let stats = stats_resp
        .get("stats")
        .unwrap_or_else(|| panic!("{transport}: stats object missing"));
    let requests = number(stats, &["requests"]) as u64;
    assert_eq!(
        requests, SOLVES as u64,
        "{transport}: verbs must not count as requests"
    );
    assert_eq!(number(stats, &["errors"]) as u64, 0, "{transport}");
    assert_eq!(
        number(stats, &["latency_us", "count"]) as u64,
        SOLVES as u64,
        "{transport}"
    );
    for stage in ["parse", "solve", "render"] {
        assert_eq!(
            number(stats, &["stages", stage, "count"]) as u64,
            SOLVES as u64,
            "{transport}: stage `{stage}` count must equal handled requests"
        );
    }
    let queue_count = number(stats, &["stages", "queue", "count"]) as u64;
    if pipelined {
        // Every job (including the stats line itself, dequeued before it
        // snapshots) records time in the queue.
        assert!(queue_count >= SOLVES as u64, "{transport}: {queue_count}");
        assert!(
            number(stats, &["queue", "capacity"]) as u64 > 0,
            "{transport}: pipelined mode advertises its queue capacity"
        );
    } else {
        assert_eq!(queue_count, 0, "{transport}: serial path has no queue");
    }

    // LP effort flowed through: mixed traffic always has LP-backed solves.
    assert!(number(stats, &["lp", "pivots"]) > 0.0, "{transport}");
    assert!(number(stats, &["lp", "solves"]) > 0.0, "{transport}");

    // Per-solver counts sum to the request count.
    match stats.get("per_solver") {
        Some(Value::Object(per_solver)) => {
            let total: f64 = per_solver
                .iter()
                .map(|(_, count)| match count {
                    Value::Number(n) => *n,
                    other => panic!("{transport}: solver count not a number: {other:?}"),
                })
                .sum();
            assert_eq!(total as u64, SOLVES as u64, "{transport}");
        }
        other => panic!("{transport}: per_solver not an object: {other:?}"),
    }

    // Cache counters: every solve consulted the cache, and the snapshot
    // carries the per-shard breakdown.
    let hits = number(stats, &["cache", "hits"]) as u64;
    let misses = number(stats, &["cache", "misses"]) as u64;
    assert!(hits + misses >= SOLVES as u64, "{transport}");
    match stats.get("cache").and_then(|c| c.get("shards")) {
        Some(Value::Array(shards)) => assert!(!shards.is_empty(), "{transport}"),
        other => panic!("{transport}: cache.shards not an array: {other:?}"),
    }

    assert_eq!(
        number(stats, &["flight_in_flight"]) as u64,
        0,
        "{transport}: no solve can be in flight after the run"
    );
    assert!(number(stats, &["uptime_us"]) > 0.0, "{transport}");
}

#[test]
fn stats_and_trace_over_stdin_serial() {
    check(&run_stdin(&ExecutionMode::Serial), false, "stdin/serial");
}

#[test]
fn stats_and_trace_over_stdin_pipelined() {
    check(
        &run_stdin(&ExecutionMode::Pipelined(deterministic_pipeline())),
        true,
        "stdin/pipelined",
    );
}

#[test]
fn stats_and_trace_over_tcp_serial() {
    check(&run_tcp(ExecutionMode::Serial), false, "tcp/serial");
}

#[test]
fn stats_and_trace_over_tcp_pipelined() {
    check(
        &run_tcp(ExecutionMode::Pipelined(deterministic_pipeline())),
        true,
        "tcp/pipelined",
    );
}
