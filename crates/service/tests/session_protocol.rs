//! Integration gate for the adaptive-session subsystem: the `open_session` /
//! `session_event` / `close_session` verbs over both execution modes and
//! both transports (stdin × serial/pipelined, TCP × serial/pipelined).
//!
//! The contract under test:
//!
//! * `open_session` answers with a session id, revision 0 and the full
//!   schedule; every `session_event` that edits the suffix answers with a
//!   strictly incremented revision whose schedule is widened back to the
//!   client's original coordinate space (drained machines stay as idle
//!   rows);
//! * events for unknown sessions — never opened, already closed, or evicted
//!   — answer `ok:false` with `error_kind:"unknown_session"` and leave no
//!   state behind;
//! * `close_session` returns the final summary (revisions, warm hits,
//!   events, realized steps, completed/unfinished split) and frees the id;
//! * two sessions on distinct connections make progress concurrently
//!   (pipelined fan-out) while each session's own revisions stay ordered;
//! * lifecycle hygiene: dropping a TCP connection evicts its sessions, an
//!   expired idle TTL evicts on the next session verb, and a full table
//!   answers `busy` instead of evicting someone else;
//! * the `stats` verb reports the session counters and revision-latency
//!   histogram the loadgen and CI grep for.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Value;
use suu_service::{
    drive_session, open_session_line, spawn_tcp, DriveConfig, ExecutionMode, PipelineConfig,
    SchedulerService, ServiceConfig, SolverPool, TcpServerConfig,
};
use suu_workloads::machine_failure_scenario;

/// A `Write` into a shared buffer (the pipelined transport takes ownership
/// of its writer).
#[derive(Clone, Default)]
struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Walks `path` into `value` and returns the number found there.
fn number(value: &Value, path: &[&str]) -> f64 {
    let mut cursor = value;
    for key in path {
        cursor = cursor
            .get(key)
            .unwrap_or_else(|| panic!("missing key `{key}` on path {path:?} in {value:?}"));
    }
    match cursor {
        Value::Number(n) => *n,
        other => panic!("{path:?} is not a number: {other:?}"),
    }
}

fn parse_lines(raw: &str) -> Vec<Value> {
    raw.lines()
        .map(|line| serde_json::parse(line).expect("responses parse as JSON"))
        .collect()
}

fn by_id(responses: &[Value]) -> std::collections::HashMap<u64, &Value> {
    responses
        .iter()
        .map(|v| (number(v, &["id"]) as u64, v))
        .collect()
}

fn assert_unknown_session(resp: &Value, context: &str) {
    assert_eq!(
        resp.get("ok"),
        Some(&Value::Bool(false)),
        "{context}: expected failure: {resp:?}"
    );
    assert_eq!(
        resp.get("error_kind"),
        Some(&Value::String("unknown_session".to_string())),
        "{context}: expected unknown_session: {resp:?}"
    );
}

/// The single-connection lifecycle corpus: open (16 jobs × 4 machines),
/// three suffix-editing events, one event for a bogus session, a stats
/// scrape, close, and one event after close. Session ids are deterministic
/// per service (the first open gets id 1), so the corpus is a fixed batch.
fn lifecycle_corpus() -> Vec<String> {
    let scenario = machine_failure_scenario(7);
    vec![
        open_session_line(1, &scenario.instance),
        r#"{"id":2,"verb":"session_event","session":1,"step":3,"completed":[0,1]}"#.to_string(),
        r#"{"id":3,"verb":"session_event","session":1,"step":5,"completed":[2],"failed_machine":0}"#
            .to_string(),
        r#"{"id":4,"verb":"session_event","session":1,"step":6,"drift":{"machine":1,"job":5,"p":0.9}}"#
            .to_string(),
        r#"{"id":5,"verb":"session_event","session":77,"step":1}"#.to_string(),
        r#"{"id":6,"verb":"stats"}"#.to_string(),
        r#"{"id":7,"verb":"close_session","session":1}"#.to_string(),
        r#"{"id":8,"verb":"session_event","session":1,"step":9}"#.to_string(),
    ]
}

#[allow(clippy::float_cmp)] // counters are exact small integers
fn check_lifecycle(responses: &[Value], transport: &str) {
    assert_eq!(responses.len(), 8, "{transport}: response count");
    let by_id = by_id(responses);

    // Revision 0: full schedule, everything unfinished.
    let open = by_id[&1];
    assert_eq!(open.get("ok"), Some(&Value::Bool(true)), "{transport}");
    assert_eq!(number(open, &["session"]), 1.0, "{transport}");
    assert_eq!(number(open, &["revision"]), 0.0, "{transport}");
    assert_eq!(number(open, &["unfinished"]), 16.0, "{transport}");
    assert_eq!(
        open.get("solver"),
        Some(&Value::String("suu-c".to_string())),
        "{transport}"
    );
    assert_eq!(number(open, &["schedule", "num_machines"]), 4.0);

    // Each event bumps the revision exactly once and shrinks the suffix.
    for (id, revision, unfinished, completed) in [
        (2u64, 1.0, 14.0, 2.0),
        (3, 2.0, 13.0, 3.0),
        (4, 3.0, 13.0, 3.0),
    ] {
        let resp = by_id[&id];
        assert_eq!(
            resp.get("ok"),
            Some(&Value::Bool(true)),
            "{transport}: event {id} failed: {resp:?}"
        );
        assert_eq!(number(resp, &["revision"]), revision, "{transport}: {id}");
        assert_eq!(
            number(resp, &["unfinished"]),
            unfinished,
            "{transport}: {id}"
        );
        assert_eq!(number(resp, &["completed"]), completed, "{transport}: {id}");
        // Revisions are widened back to the original 4-machine space even
        // after machine 0 is drained (event 3).
        assert_eq!(number(resp, &["schedule", "num_machines"]), 4.0);
        assert!(
            matches!(resp.get("warm"), Some(Value::Bool(_))),
            "{transport}: event {id} must report its warm verdict"
        );
    }

    assert_unknown_session(by_id[&5], &format!("{transport}: bogus session"));

    // The stats scrape (sent before close) sees the session still open and
    // all three revisions recorded.
    let stats = by_id[&6];
    assert_eq!(number(stats, &["stats", "sessions", "open"]), 1.0);
    assert_eq!(number(stats, &["stats", "sessions", "opened"]), 1.0);
    // The service-wide revision counter includes the revision-0 open solve
    // (three events + one open = four session solves).
    assert_eq!(number(stats, &["stats", "sessions", "revisions"]), 4.0);
    assert_eq!(number(stats, &["stats", "sessions", "unknown"]), 1.0);
    // Every revision (plus the open solve) recorded a latency sample.
    assert!(
        number(
            stats,
            &["stats", "sessions", "revision_latency_us", "count"]
        ) >= 4.0,
        "{transport}: revision latency histogram is empty: {stats:?}"
    );

    // Close summary reflects the whole session.
    let close = by_id[&7];
    assert_eq!(close.get("ok"), Some(&Value::Bool(true)), "{transport}");
    assert_eq!(number(close, &["summary", "revisions"]), 3.0);
    assert_eq!(number(close, &["summary", "events"]), 3.0);
    assert_eq!(number(close, &["summary", "realized_steps"]), 6.0);
    assert_eq!(number(close, &["summary", "completed"]), 3.0);
    assert_eq!(number(close, &["summary", "unfinished"]), 13.0);

    assert_unknown_session(by_id[&8], &format!("{transport}: event after close"));
}

fn run_stdin(mode: &ExecutionMode) -> Vec<Value> {
    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let input = lifecycle_corpus().join("\n") + "\n";
    let output = SharedBuf::default();
    match mode {
        ExecutionMode::Serial => {
            service
                .serve_lines(input.as_bytes(), output.clone())
                .unwrap();
        }
        ExecutionMode::Pipelined(config) => {
            let pool = SolverPool::spawn(Arc::clone(&service), config);
            service
                .serve_lines_pipelined(input.as_bytes(), output.clone(), &pool.handle())
                .unwrap();
            pool.shutdown();
        }
    }
    let bytes = output.0.lock().unwrap().clone();
    parse_lines(&String::from_utf8(bytes).unwrap())
}

#[test]
fn lifecycle_over_serial_stdin() {
    let responses = run_stdin(&ExecutionMode::Serial);
    check_lifecycle(&responses, "stdin/serial");
}

#[test]
fn lifecycle_over_pipelined_stdin() {
    // One solver thread keeps the response order deterministic; the session
    // gate is still exercised (every line of session 1 carries the token).
    let responses = run_stdin(&ExecutionMode::Pipelined(PipelineConfig {
        solver_threads: 1,
        queue_capacity: 1024,
    }));
    check_lifecycle(&responses, "stdin/pipelined");
}

fn spawn(mode: ExecutionMode) -> suu_service::ServiceHandle {
    spawn_tcp(
        Arc::new(SchedulerService::new(ServiceConfig::default())),
        &TcpServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            mode,
        },
    )
    .unwrap()
}

fn run_tcp_lifecycle(mode: ExecutionMode, transport: &str) {
    let handle = spawn(mode);
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let lines = lifecycle_corpus();
    let mut responses = Vec::new();
    // Lock-step request/response: revisions must arrive in submission order
    // within the session no matter the execution mode.
    for line in &lines {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        assert!(reader.read_line(&mut reply).unwrap() > 0, "closed early");
        responses.push(serde_json::parse(reply.trim_end()).expect("response parses"));
    }
    drop(writer);
    drop(reader);
    check_lifecycle(&responses, transport);
    handle.shutdown();
}

#[test]
fn lifecycle_over_tcp_serial() {
    run_tcp_lifecycle(ExecutionMode::Serial, "tcp/serial");
}

#[test]
fn lifecycle_over_tcp_pipelined() {
    run_tcp_lifecycle(
        ExecutionMode::Pipelined(PipelineConfig::default()),
        "tcp/pipelined",
    );
}

/// Two sessions on distinct TCP connections drive full adaptive executions
/// concurrently; both finish, neither sees an unknown-session error, and
/// the server ends with zero open sessions (both closed cleanly).
#[test]
fn concurrent_sessions_fan_out_over_tcp() {
    let handle = spawn(ExecutionMode::Pipelined(PipelineConfig::default()));
    let addr = handle.addr();
    let workers: Vec<_> = (0..2u64)
        .map(|k| {
            std::thread::spawn(move || {
                let scenario = machine_failure_scenario(11 + k);
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                let cfg = DriveConfig {
                    seed: 0xBEEF ^ k,
                    max_steps: 2_000,
                    report_completions: true,
                    failures: scenario.failures.clone(),
                    drifts: scenario.drifts.clone(),
                };
                drive_session(&scenario.instance, &cfg, |line| {
                    writeln!(writer, "{line}").ok()?;
                    writer.flush().ok()?;
                    let mut reply = String::new();
                    (reader.read_line(&mut reply).ok()? > 0).then_some(reply)
                })
                .expect("session drives to completion")
            })
        })
        .collect();
    let reports: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let mut sessions = std::collections::HashSet::new();
    for report in &reports {
        assert!(report.steps.is_some(), "execution censored: {report:?}");
        assert!(report.revisions > 0, "no revisions: {report:?}");
        assert_eq!(report.unknown_session_errors, 0, "{report:?}");
        sessions.insert(report.session);
    }
    assert_eq!(sessions.len(), 2, "sessions must get distinct ids");
    let snapshot = handle.service().metrics().snapshot();
    assert_eq!(snapshot.sessions_opened, 2);
    assert_eq!(snapshot.sessions_closed, 2);
    assert!(
        handle.service().sessions().is_empty(),
        "all sessions closed"
    );
    handle.shutdown();
}

/// Dropping the TCP connection without `close_session` evicts the
/// connection's sessions (both execution modes own an eviction path).
#[test]
fn disconnect_evicts_sessions_on_both_modes() {
    for (mode, name) in [
        (ExecutionMode::Serial, "serial"),
        (
            ExecutionMode::Pipelined(PipelineConfig::default()),
            "pipelined",
        ),
    ] {
        let handle = spawn(mode);
        let scenario = machine_failure_scenario(3);
        {
            let stream = TcpStream::connect(handle.addr()).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            writeln!(writer, "{}", open_session_line(1, &scenario.instance)).unwrap();
            writer.flush().unwrap();
            let mut reply = String::new();
            assert!(reader.read_line(&mut reply).unwrap() > 0);
            let open = serde_json::parse(reply.trim_end()).unwrap();
            assert_eq!(open.get("ok"), Some(&Value::Bool(true)), "{name}");
            assert_eq!(handle.service().sessions().len(), 1, "{name}");
        } // connection drops here, without close_session

        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.service().metrics().snapshot().sessions_evicted == 0 {
            assert!(
                Instant::now() < deadline,
                "{name}: disconnect never evicted the session"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(handle.service().sessions().is_empty(), "{name}");
        handle.shutdown();
    }
}

/// An expired idle TTL evicts on the next session verb: the follow-up event
/// answers `unknown_session` and the stats counters record the eviction.
#[test]
fn idle_ttl_evicts_quiet_sessions() {
    let service = SchedulerService::new(ServiceConfig {
        session_idle_ttl_ms: 1,
        ..ServiceConfig::default()
    });
    let scenario = machine_failure_scenario(5);
    let open =
        serde_json::parse(&service.handle_line(&open_session_line(1, &scenario.instance))).unwrap();
    assert_eq!(open.get("ok"), Some(&Value::Bool(true)));
    std::thread::sleep(Duration::from_millis(20));
    let reply = serde_json::parse(
        &service.handle_line(r#"{"id":2,"verb":"session_event","session":1,"step":1}"#),
    )
    .unwrap();
    assert_unknown_session(&reply, "ttl-expired session");
    let snapshot = service.metrics().snapshot();
    assert_eq!(snapshot.sessions_evicted, 1);
    assert_eq!(snapshot.unknown_session, 1);
    assert!(service.sessions().is_empty());
}

/// A full session table answers `busy` without evicting a live session.
#[test]
fn full_table_answers_busy() {
    let service = SchedulerService::new(ServiceConfig {
        max_sessions: 1,
        ..ServiceConfig::default()
    });
    let scenario = machine_failure_scenario(9);
    let first =
        serde_json::parse(&service.handle_line(&open_session_line(1, &scenario.instance))).unwrap();
    assert_eq!(first.get("ok"), Some(&Value::Bool(true)));
    let second =
        serde_json::parse(&service.handle_line(&open_session_line(2, &scenario.instance))).unwrap();
    assert_eq!(second.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        second.get("error_kind"),
        Some(&Value::String("busy".to_string()))
    );
    assert_eq!(service.sessions().len(), 1, "the live session survives");
}
