//! Protocol fuzz battery: malformed NDJSON lines must produce exactly one
//! structured error response per line — never a dropped line, a killed
//! connection, or a dead worker — on every transport (stdin-style serial,
//! stdin-style pipelined, TCP serial, TCP pipelined).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use suu_core::InstanceBuilder;
use suu_service::{
    error_kind, spawn_tcp, ExecutionMode, PipelineConfig, Request, Response, SchedulerService,
    ServiceConfig, SolverPool, TcpServerConfig,
};
use suu_workloads::uniform_matrix;

fn valid_request_line(id: u64) -> String {
    let inst = InstanceBuilder::new(3, 2)
        .probability_matrix(uniform_matrix(3, 2, 0.3, 0.9, id))
        .build()
        .unwrap();
    serde_json::to_string(&Request::from_instance(id, &inst)).unwrap()
}

/// The malformed corpus: every entry must elicit `ok:false` with a
/// machine-readable `error_kind`, and must not take the connection down.
fn malformed_lines() -> Vec<String> {
    let valid = valid_request_line(1);
    let mut lines = vec![
        // Truncations of a valid request at various depths.
        valid[..valid.len() / 4].to_string(),
        valid[..valid.len() / 2].to_string(),
        valid[..valid.len() - 1].to_string(),
        // Wrong types in otherwise well-formed JSON.
        r#"{"id":"one","num_jobs":2,"num_machines":1,"probs":[0.5,0.5]}"#.to_string(),
        r#"{"id":1,"num_jobs":"two","num_machines":1,"probs":[0.5,0.5]}"#.to_string(),
        r#"{"id":1,"num_jobs":2,"num_machines":1,"probs":"half"}"#.to_string(),
        r#"{"id":1,"num_jobs":2,"num_machines":1,"probs":[0.5,true]}"#.to_string(),
        r#"{"id":1,"num_jobs":2,"num_machines":1,"probs":[0.5,0.5],"edges":{"a":1}}"#.to_string(),
        // Huge / negative / fractional ids (numbers are f64 on the wire).
        r#"{"id":99999999999999999999999999,"num_jobs":2,"num_machines":1,"probs":[0.5,0.5]}"#
            .to_string(),
        r#"{"id":-7,"num_jobs":2,"num_machines":1,"probs":[0.5,0.5]}"#.to_string(),
        r#"{"id":1.5,"num_jobs":2,"num_machines":1,"probs":[0.5,0.5]}"#.to_string(),
        // Structurally valid JSON that is not a request.
        "null".to_string(),
        "true".to_string(),
        "[]".to_string(),
        "{}".to_string(),
        "\"just a string\"".to_string(),
        "42".to_string(),
        // Raw garbage, mismatched brackets, control characters, non-UTF8-ish.
        "this is not json".to_string(),
        "}{".to_string(),
        "{\"id\":1".to_string(),
        "\u{1}\u{2}garbage\u{3}".to_string(),
        "{\"id\": 1, \"num_jobs\": }".to_string(),
        // Semantically invalid requests (parse fine, fail validation).
        r#"{"id":3,"num_jobs":2,"num_machines":1,"probs":[0.5,1.7]}"#.to_string(),
        r#"{"id":4,"num_jobs":2,"num_machines":1,"probs":[0.5,0.0]}"#.to_string(),
        r#"{"id":5,"num_jobs":2,"num_machines":1,"probs":[0.5,0.5],"edges":[[0,1],[1,0]]}"#
            .to_string(),
        r#"{"id":6,"num_jobs":2,"num_machines":1,"probs":[0.5,0.5],"solver":"warp-drive"}"#
            .to_string(),
    ];
    // A couple of degenerate envelope shapes around the canonical prefix,
    // aimed squarely at the interned-line fast path.
    lines.push("{\"id\":".to_string());
    lines.push("{\"id\":12}".to_string());
    lines.push("{\"id\":12,,}".to_string());
    lines
}

/// Interleaves each malformed line with a valid request, expecting exactly
/// one response per non-empty line and the valid requests to still succeed.
fn interleaved_battery() -> (String, usize, usize) {
    let malformed = malformed_lines();
    let mut input = String::new();
    let mut valid_count = 0;
    for (k, bad) in malformed.iter().enumerate() {
        input.push_str(bad);
        input.push('\n');
        input.push_str(&valid_request_line(1000 + k as u64));
        input.push('\n');
        valid_count += 1;
    }
    (input, malformed.len(), valid_count)
}

fn assert_battery_outcome(output: &str, expect_bad: usize, expect_ok: usize) {
    let responses: Vec<Response> = output
        .lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("unparseable `{l}`: {e}")))
        .collect();
    assert_eq!(
        responses.len(),
        expect_bad + expect_ok,
        "exactly one response per line"
    );
    let ok = responses.iter().filter(|r| r.ok).count();
    let bad = responses.iter().filter(|r| !r.ok).count();
    assert_eq!(ok, expect_ok, "every valid request must succeed");
    assert_eq!(bad, expect_bad, "every malformed line must error");
    for resp in &responses {
        if resp.ok {
            assert!(resp.schedule.is_some());
            assert!(resp.error.is_none() && resp.error_kind.is_none());
        } else {
            assert!(resp.error.is_some(), "errors carry a message");
            let kind = resp.error_kind.as_deref().expect("errors carry a kind");
            assert!(
                [
                    error_kind::BAD_REQUEST,
                    error_kind::INVALID_REQUEST,
                    error_kind::SOLVER_ERROR
                ]
                .contains(&kind),
                "unexpected error_kind {kind}"
            );
        }
    }
}

#[test]
fn stdin_serial_survives_the_malformed_corpus() {
    let svc = SchedulerService::new(ServiceConfig::default());
    let (input, expect_bad, expect_ok) = interleaved_battery();
    let mut output = Vec::new();
    svc.serve_lines(input.as_bytes(), &mut output).unwrap();
    assert_battery_outcome(&String::from_utf8(output).unwrap(), expect_bad, expect_ok);
    // Lines that parse as requests but fail validation are counted as
    // errors; pure protocol noise is answered without entering the metrics.
    let snap = svc.metrics().snapshot();
    assert!(snap.errors >= 1 && (snap.errors as usize) <= expect_bad);
    assert_eq!(snap.requests - snap.errors, expect_ok as u64);
}

#[test]
fn stdin_pipelined_survives_the_malformed_corpus() {
    // Shared buffer because serve_lines_pipelined takes the writer by value.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let svc = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let pool = SolverPool::spawn(
        Arc::clone(&svc),
        &PipelineConfig {
            solver_threads: 2,
            queue_capacity: 256,
        },
    );
    let (input, expect_bad, expect_ok) = interleaved_battery();
    let buf = SharedBuf::default();
    svc.serve_lines_pipelined(input.as_bytes(), buf.clone(), &pool.handle())
        .unwrap();
    pool.shutdown();
    let output = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert_battery_outcome(&output, expect_bad, expect_ok);

    // The workers survived: a fresh request still gets served.
    let after = svc.handle_request(&serde_json::from_str(&valid_request_line(9_999)).unwrap());
    assert!(after.ok, "service must keep serving after the fuzz corpus");
}

fn tcp_battery(mode: ExecutionMode) {
    let svc = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let handle = spawn_tcp(
        Arc::clone(&svc),
        &TcpServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            mode,
        },
    )
    .unwrap();

    let (input, expect_bad, expect_ok) = interleaved_battery();
    let total = expect_bad + expect_ok;
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    writer.write_all(input.as_bytes()).unwrap();
    writer.flush().unwrap();
    let mut output = String::new();
    for _ in 0..total {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection died mid-battery"
        );
        output.push_str(&line);
    }
    assert_battery_outcome(&output, expect_bad, expect_ok);

    // The same connection still serves a valid request afterwards.
    writeln!(writer, "{}", valid_request_line(31_337)).unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    assert!(reader.read_line(&mut line).unwrap() > 0);
    let resp: Response = serde_json::from_str(&line).unwrap();
    assert!(
        resp.ok,
        "connection must survive the corpus: {:?}",
        resp.error
    );
    assert_eq!(resp.id, 31_337);
    handle.shutdown();
}

#[test]
fn tcp_serial_survives_the_malformed_corpus() {
    tcp_battery(ExecutionMode::Serial);
}

#[test]
fn tcp_pipelined_survives_the_malformed_corpus() {
    tcp_battery(ExecutionMode::Pipelined(PipelineConfig {
        solver_threads: 2,
        queue_capacity: 256,
    }));
}

#[test]
fn oversized_lines_error_without_killing_the_pipelined_connection() {
    let svc = Arc::new(SchedulerService::new(ServiceConfig {
        max_line_bytes: 512,
        ..ServiceConfig::default()
    }));
    let pool = SolverPool::spawn(Arc::clone(&svc), &PipelineConfig::default());
    let good = valid_request_line(77);
    assert!(good.len() <= 512, "test request must fit the limit");
    let huge = "x".repeat(10_000);
    let input = format!("{huge}\n{good}\n{huge}{huge}");
    let mut sink = Vec::new();
    {
        #[derive(Clone)]
        struct SharedVec(Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for SharedVec {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let shared = SharedVec(Arc::new(std::sync::Mutex::new(Vec::new())));
        svc.serve_lines_pipelined(input.as_bytes(), shared.clone(), &pool.handle())
            .unwrap();
        sink.extend_from_slice(&shared.0.lock().unwrap());
    }
    pool.shutdown();
    let output = String::from_utf8(sink).unwrap();
    let responses: Vec<Response> = output
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(responses.len(), 3);
    let bad = responses
        .iter()
        .filter(|r| !r.ok && r.error_kind.as_deref() == Some(error_kind::BAD_REQUEST))
        .count();
    assert_eq!(bad, 2, "both oversized lines get structured errors");
    assert_eq!(responses.iter().filter(|r| r.ok).count(), 1);
}
