//! End-to-end acceptance test for the scheduling service.
//!
//! Starts the service on an ephemeral TCP port, submits independent, chain
//! and forest instances concurrently from four client threads, and verifies
//! that (a) every response's schedule respects the instance's precedence
//! constraints when executed, (b) repeated instances are served from the
//! cache (observable via the `cache_hit` response field), and (c) the load
//! generator sustains ≥ 100 req/s on mixed small instances, recording the
//! throughput in `BENCH_service_throughput.json`.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use suu_core::{InstanceBuilder, JobId, SuuInstance};
use suu_graph::Dag;
use suu_service::{
    run_loadgen, spawn_tcp, ExecutionMode, LoadgenConfig, PipelineConfig, Request, Response,
    SchedulerService, ServiceConfig, ServiceHandle, TcpServerConfig,
};
use suu_workloads::uniform_matrix;

fn start_service(workers: usize) -> ServiceHandle {
    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    spawn_tcp(
        service,
        &TcpServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            ..TcpServerConfig::default()
        },
    )
    .expect("ephemeral bind succeeds")
}

/// One instance of each structural class the registry dispatches on.
fn test_instances() -> Vec<SuuInstance> {
    let independent = InstanceBuilder::new(5, 3)
        .probability_matrix(uniform_matrix(5, 3, 0.3, 0.9, 101))
        .build()
        .unwrap();
    let chains = InstanceBuilder::new(6, 3)
        .probability_matrix(uniform_matrix(6, 3, 0.3, 0.9, 102))
        .chains(&[vec![0, 1, 2], vec![3, 4], vec![5]])
        .build()
        .unwrap();
    let forest = InstanceBuilder::new(6, 3)
        .probability_matrix(uniform_matrix(6, 3, 0.3, 0.9, 103))
        .precedence(Dag::from_edges(6, [(0, 1), (0, 2), (3, 4), (3, 5)]).unwrap())
        .build()
        .unwrap();
    vec![independent, chains, forest]
}

/// Executes the response's schedule against the instance and checks that
/// every job finishes and no job ever completes before a predecessor.
fn assert_schedule_respects_precedence(instance: &SuuInstance, response: &Response) {
    assert!(response.ok, "response error: {:?}", response.error);
    let schedule = response
        .schedule
        .clone()
        .expect("ok responses carry a schedule");
    assert_eq!(schedule.num_machines(), instance.num_machines());
    assert_eq!(response.schedule_len, schedule.len());
    for step in schedule.steps() {
        for (_, job) in step.busy_pairs() {
            assert!(job.0 < instance.num_jobs(), "job id out of range");
        }
    }
    // The executor enforces eligibility (Definition 2.1); a finished trace
    // whose completion order matches the DAG certifies that the schedule
    // keeps every job reachable and the constraints hold.
    for trial in 0..3 {
        let mut policy = schedule.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(0xE2E ^ trial);
        let (steps, trace) =
            suu_sim::executor::simulate_traced(instance, &mut policy, &mut rng, 1_000_000);
        assert!(steps.is_some(), "schedule must finish every job");
        for (u, v) in instance.precedence().edges() {
            let cu = trace.completion_step(JobId(u)).expect("job u completes");
            let cv = trace.completion_step(JobId(v)).expect("job v completes");
            // Strict: v only becomes eligible the step after u completes, so
            // completing in the same step would itself be a violation.
            assert!(
                cu < cv,
                "job {u} (done at {cu}) must strictly precede job {v} (done at {cv})"
            );
        }
    }
}

fn roundtrip_on(reader: &mut impl BufRead, writer: &mut impl Write, request: &Request) -> Response {
    let line = serde_json::to_string(request).unwrap();
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    serde_json::from_str(&response).unwrap()
}

#[test]
fn concurrent_clients_get_valid_schedules_and_cache_hits() {
    let handle = start_service(4);
    let addr = handle.addr();
    let instances = Arc::new(test_instances());

    // Phase 1: four client threads hammer the service concurrently, each
    // cycling through all three structural classes.
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let instances = Arc::clone(&instances);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                let mut responses = Vec::new();
                for round in 0..6 {
                    let which = (t + round) % instances.len();
                    let request =
                        Request::from_instance((t * 100 + round) as u64, &instances[which]);
                    let response = roundtrip_on(&mut reader, &mut writer, &request);
                    responses.push((which, response));
                }
                responses
            })
        })
        .collect();

    let mut all: Vec<(usize, Response)> = Vec::new();
    for thread in threads {
        all.extend(thread.join().expect("client thread panicked"));
    }
    assert_eq!(all.len(), 24);

    // (a) every response validates against its instance's precedence DAG.
    let expected_solvers = ["suu-i-obl", "suu-c", "suu-forest"];
    for (which, response) in &all {
        assert_schedule_respects_precedence(&instances[*which], response);
        assert_eq!(response.solver.as_deref(), Some(expected_solvers[*which]));
    }

    // (b) repeats are served from the cache. The default (pipelined) server
    // coalesces concurrent duplicates, so each instance typically misses
    // exactly once; the bound stays <= 4 to also tolerate a serial-mode
    // server, where first submissions may race before the first insert.
    // (The racing-duplicate semantics of the serial path are pinned in
    // crates/service/tests/pipeline_stress.rs.)
    for which in 0..instances.len() {
        let misses = all
            .iter()
            .filter(|(w, r)| *w == which && !r.cache_hit)
            .count();
        assert!(
            (1..=4).contains(&misses),
            "instance {which}: {misses} misses"
        );
        let hits = all
            .iter()
            .filter(|(w, r)| *w == which && r.cache_hit)
            .count();
        assert!(hits >= 4, "instance {which}: only {hits} cache hits");
    }
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let repeat = roundtrip_on(
        &mut reader,
        &mut writer,
        &Request::from_instance(999, &instances[1]),
    );
    assert!(repeat.ok);
    assert!(repeat.cache_hit, "repeated instance must hit the cache");

    let snapshot = handle.service().metrics().snapshot();
    assert_eq!(snapshot.requests, 25);
    assert_eq!(snapshot.errors, 0);
    assert!(handle.service().cache().hits() >= 13);
    handle.shutdown();
}

#[test]
fn loadgen_sustains_100_rps_and_pipelining_beats_serial() {
    // Part 1: the absolute floor — closed-loop mixed traffic against the
    // default (pipelined) service must sustain >= 100 req/s.
    let handle = start_service(4);
    let report = run_loadgen(&LoadgenConfig {
        addr: handle.addr().to_string(),
        scenario: "mixed".to_string(),
        connections: 4,
        total_requests: 300,
        target_rps: None,
        max_in_flight: 1,
        collect_payloads: false,
        deadline_ms: None,
        detail: None,
        trace: false,
        session: false,
        seed: 0xACCE,
    })
    .expect("load generation succeeds");
    handle.shutdown();

    assert_eq!(report.sent, 300);
    assert_eq!(report.errors, 0, "all mixed requests must succeed");
    assert!(
        report.cache_hits > 0,
        "bursty mixed traffic must exercise the cache"
    );
    assert!(
        report.achieved_rps >= 100.0,
        "throughput {:.1} req/s below the 100 req/s floor",
        report.achieved_rps
    );
    assert!(report.p99_micros >= report.p50_micros);

    // Part 2: pipelined-vs-serial on the bursty multi-tenant scenario. The
    // same pool is replayed against the serial per-connection baseline
    // (closed-loop client) and the pipelined executor (open-loop client);
    // payloads must match modulo ordering and the pipelined mode must be at
    // least 2x faster (it coalesces the duplicate solves that racing serial
    // connections each pay, and batches its transport syscalls).
    let run_bursty = |mode: ExecutionMode, max_in_flight: usize, collect_payloads: bool| {
        let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
        let handle = spawn_tcp(
            Arc::clone(&service),
            &TcpServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 4,
                mode,
            },
        )
        .expect("ephemeral bind succeeds");
        let report = run_loadgen(&LoadgenConfig {
            addr: handle.addr().to_string(),
            scenario: "bursty".to_string(),
            connections: 4,
            total_requests: 600,
            target_rps: None,
            max_in_flight,
            collect_payloads,
            deadline_ms: None,
            detail: None,
            trace: false,
            session: false,
            seed: 0xACCE,
        })
        .expect("load generation succeeds");
        let snapshot = handle.service().metrics().snapshot();
        handle.shutdown();
        (report, snapshot)
    };
    // Correctness pass first: both modes replay the pool with payload
    // collection on (full response parses client-side) and must agree.
    let (serial_checked, serial_metrics) = run_bursty(ExecutionMode::Serial, 1, true);
    let (pipelined_checked, pipelined_metrics) = run_bursty(
        ExecutionMode::Pipelined(PipelineConfig::default()),
        64,
        true,
    );
    for (label, rep) in [
        ("serial", &serial_checked),
        ("pipelined", &pipelined_checked),
    ] {
        assert_eq!(rep.sent, 600, "{label}");
        assert_eq!(rep.errors, 0, "{label} run produced errors");
        assert_eq!(rep.busy, 0, "{label} run hit admission control");
    }
    assert_eq!(
        serial_checked.payloads, pipelined_checked.payloads,
        "modes must return identical response payloads modulo ordering"
    );
    assert!(
        pipelined_metrics.fresh_solves <= serial_metrics.fresh_solves,
        "coalescing must not increase fresh solves ({} vs {})",
        pipelined_metrics.fresh_solves,
        serial_metrics.fresh_solves
    );

    // Timed pass: payload collection off (the loadgen fast-scans response
    // envelopes, as both modes' numbers should measure the service, not the
    // client's JSON parser). Best of three attempts — a single-core host
    // schedules ~10 threads here and the occasional unlucky slice would
    // otherwise fail a real >= 2x improvement.
    let mut serial = None;
    let mut pipelined = None;
    let mut speedup = 0.0;
    for _ in 0..3 {
        let (s, _) = run_bursty(ExecutionMode::Serial, 1, false);
        let (p, _) = run_bursty(
            ExecutionMode::Pipelined(PipelineConfig::default()),
            64,
            false,
        );
        for (label, rep) in [("serial", &s), ("pipelined", &p)] {
            assert_eq!(rep.errors, 0, "{label} timed run produced errors");
            assert_eq!(rep.busy, 0, "{label} timed run hit admission control");
        }
        let ratio = p.achieved_rps / s.achieved_rps;
        if ratio > speedup {
            speedup = ratio;
            serial = Some(s);
            pipelined = Some(p);
        }
        if speedup >= 2.2 {
            break;
        }
    }
    let serial = serial.expect("at least one timed attempt ran");
    let pipelined = pipelined.expect("at least one timed attempt ran");
    assert!(
        speedup >= 2.0,
        "pipelined mode must be >= 2x the serial baseline, got {speedup:.2}x \
         ({:.1} vs {:.1} req/s)",
        pipelined.achieved_rps,
        serial.achieved_rps
    );

    // Record the comparison where the perf trajectory is tracked, in the
    // same BenchRecord schema suu-bench's `exp_service_throughput` writes
    // (the two writers share the file, so they must share the shape; the
    // local structs mirror suu_bench::report::{BenchRecord, Table}, which
    // this crate cannot depend on without a cycle).
    #[derive(serde::Serialize)]
    struct TableRec {
        title: String,
        headers: Vec<String>,
        rows: Vec<Vec<String>>,
        notes: Vec<String>,
    }
    #[derive(serde::Serialize)]
    struct BenchRec {
        experiment: String,
        wall_clock_secs: f64,
        tables: Vec<TableRec>,
    }
    let mode_row = |label: &str,
                    rep: &suu_service::LoadReport,
                    snap: &suu_service::MetricsSnapshot,
                    speedup_cell: String| {
        vec![
            label.to_string(),
            rep.sent.to_string(),
            format!("{:.2}", rep.achieved_rps),
            format!("{:.2}", rep.p50_micros),
            format!("{:.2}", rep.p99_micros),
            snap.fresh_solves.to_string(),
            snap.coalesced.to_string(),
            speedup_cell,
        ]
    };
    let record = BenchRec {
        experiment: "service_throughput".to_string(),
        wall_clock_secs: report.wall_secs + serial.wall_secs + pipelined.wall_secs,
        tables: vec![
            TableRec {
                title: "S1: service throughput (integration test, 4 connections)".to_string(),
                headers: [
                    "scenario",
                    "requests",
                    "cache_hits",
                    "req/s",
                    "p50 us",
                    "p99 us",
                ]
                .map(String::from)
                .to_vec(),
                rows: vec![vec![
                    report.scenario.clone(),
                    report.sent.to_string(),
                    report.cache_hits.to_string(),
                    format!("{:.2}", report.achieved_rps),
                    format!("{:.2}", report.p50_micros),
                    format!("{:.2}", report.p99_micros),
                ]],
                notes: vec!["acceptance floor: >= 100 req/s on mixed small instances".to_string()],
            },
            TableRec {
                title: "S1b: pipelined vs serial execution (bursty multi-tenant, 4 connections)"
                    .to_string(),
                headers: [
                    "mode",
                    "requests",
                    "req/s",
                    "p50 us",
                    "p99 us",
                    "fresh_solves",
                    "coalesced",
                    "speedup",
                ]
                .map(String::from)
                .to_vec(),
                rows: vec![
                    mode_row(
                        "serial (baseline)",
                        &serial,
                        &serial_metrics,
                        "1.00".to_string(),
                    ),
                    mode_row(
                        "pipelined",
                        &pipelined,
                        &pipelined_metrics,
                        format!("{speedup:.2}"),
                    ),
                ],
                notes: vec![
                    format!(
                        "pipelined speedup over the serial per-connection baseline: \
                         {speedup:.2}x (target >= 2x)"
                    ),
                    "payloads verified identical modulo ordering".to_string(),
                ],
            },
        ],
    };
    let out_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-reports");
    std::fs::create_dir_all(&out_dir).unwrap();
    std::fs::write(
        out_dir.join("BENCH_service_throughput.json"),
        serde_json::to_string_pretty(&record).unwrap(),
    )
    .unwrap();
}
