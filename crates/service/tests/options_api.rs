//! End-to-end battery for the v2 solve-options API: budgets, deadlines,
//! cache policies, response projection and their cache/single-flight key
//! semantics.

use std::sync::{Arc, Barrier, Mutex};

use suu_core::InstanceBuilder;
use suu_service::pipeline::{Job, PipelineConfig, SolverPool};
use suu_service::{
    error_kind, CachePolicy, Detail, EngineChoice, Request, Response, SchedulerService,
    ServiceConfig, SolveOptions,
};
use suu_workloads::{random_directed_forest, uniform_matrix};

fn service() -> SchedulerService {
    SchedulerService::new(ServiceConfig::default())
}

/// A forest instance big enough that its (LP1) pipeline needs many pivots.
fn large_forest_request(id: u64) -> Request {
    let n = 24;
    let m = 4;
    let inst = InstanceBuilder::new(n, m)
        .probability_matrix(uniform_matrix(n, m, 0.1, 0.9, 7))
        .precedence(random_directed_forest(n, 8, 7))
        .build()
        .unwrap();
    Request::from_instance(id, &inst)
}

fn chain_request(id: u64) -> Request {
    let inst = InstanceBuilder::new(4, 2)
        .probability_matrix(uniform_matrix(4, 2, 0.3, 0.9, 21))
        .chains(&[vec![0, 1], vec![2, 3]])
        .build()
        .unwrap();
    Request::from_instance(id, &inst)
}

fn with_options(mut request: Request, options: SolveOptions) -> Request {
    request.options = Some(options);
    request
}

#[test]
fn one_pivot_budget_on_a_large_forest_degrades_instead_of_hanging() {
    // The acceptance-criteria scenario: a 1-pivot budget on a large forest
    // instance. Auto-dispatched, the service answers with the degraded
    // serial-baseline fallback (bounded latency) rather than hanging or
    // erroring.
    let svc = service();
    let req = with_options(
        large_forest_request(1),
        SolveOptions {
            max_pivots: Some(1),
            ..SolveOptions::default()
        },
    );
    let resp = svc.handle_request(&req);
    assert!(resp.ok, "degraded fallback still serves: {:?}", resp.error);
    assert!(resp.degraded);
    assert_eq!(resp.solver.as_deref(), Some("serial-baseline"));
    let budget = resp
        .budget
        .expect("degraded responses carry the post-mortem");
    assert_eq!(budget.exhausted, "pivots");
    assert!(budget.spent_pivots >= 1);
    assert!(resp.schedule.is_some());
}

#[test]
fn forced_solver_with_exhausted_budget_errors_with_budget_exhausted() {
    // Forcing the solver opts out of the degraded fallback: the client asked
    // for that algorithm specifically, so it gets the structured error.
    let svc = service();
    let mut req = with_options(
        large_forest_request(2),
        SolveOptions {
            max_pivots: Some(1),
            ..SolveOptions::default()
        },
    );
    req.solver = Some("suu-forest".to_string());
    let resp = svc.handle_request(&req);
    assert!(!resp.ok);
    assert_eq!(
        resp.error_kind.as_deref(),
        Some(error_kind::BUDGET_EXHAUSTED)
    );
    assert_eq!(resp.budget.unwrap().exhausted, "pivots");
    assert!(!resp.degraded);
}

#[test]
fn generous_budget_reproduces_the_unbudgeted_response() {
    let svc = service();
    let free = svc.handle_request(&large_forest_request(3));
    assert!(free.ok);
    let svc2 = service();
    let budgeted = svc2.handle_request(&with_options(
        large_forest_request(3),
        SolveOptions {
            max_pivots: Some(10_000_000),
            time_budget_ms: Some(600_000),
            ..SolveOptions::default()
        },
    ));
    assert!(budgeted.ok);
    assert!(!budgeted.degraded);
    assert_eq!(budgeted.schedule, free.schedule);
    assert_eq!(budgeted.lp_pivots, free.lp_pivots);
}

#[test]
fn zero_time_budget_is_deadline_exceeded_without_solving() {
    let svc = service();
    let resp = svc.handle_request(&with_options(
        chain_request(4),
        SolveOptions {
            time_budget_ms: Some(0),
            ..SolveOptions::default()
        },
    ));
    assert!(!resp.ok);
    assert_eq!(
        resp.error_kind.as_deref(),
        Some(error_kind::DEADLINE_EXCEEDED)
    );
    assert_eq!(svc.metrics().fresh_solves(), 0, "no solver ran");
}

#[test]
fn projection_does_not_fork_the_cache_key() {
    // A full-detail solve warms the cache; a no_schedule request for the
    // same instance must hit that entry (and vice versa) — projection is
    // presentation only.
    let svc = service();
    let first = svc.handle_request(&chain_request(1));
    assert!(first.ok && !first.cache_hit);

    let trimmed = svc.handle_request(&with_options(
        chain_request(2),
        SolveOptions {
            detail: Some(Detail::NoSchedule),
            ..SolveOptions::default()
        },
    ));
    assert!(trimmed.ok);
    assert!(trimmed.cache_hit, "projection must not fork the cache key");
    assert!(trimmed.schedule.is_none());
    assert_eq!(trimmed.schedule_len, first.schedule_len);
    assert_eq!(trimmed.lp_pivots, first.lp_pivots);

    let estimate_only = svc.handle_request(&with_options(
        chain_request(3),
        SolveOptions {
            detail: Some(Detail::EstimateOnly),
            ..SolveOptions::default()
        },
    ));
    assert!(estimate_only.ok && estimate_only.cache_hit);
    assert!(estimate_only.schedule.is_none());
    assert!(estimate_only.lp_pivots.is_none());
    assert_eq!(svc.metrics().fresh_solves(), 1, "exactly one solve total");
}

#[test]
fn projection_does_not_fork_the_single_flight_key() {
    // Concurrent identical instances differing only in projection (and
    // budgets) coalesce onto exactly one fresh solve.
    let svc = Arc::new(service());
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|k| {
            let svc = Arc::clone(&svc);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let options = SolveOptions {
                    detail: Some(if k % 2 == 0 {
                        Detail::Full
                    } else {
                        Detail::NoSchedule
                    }),
                    max_pivots: Some(1_000_000 + k),
                    ..SolveOptions::default()
                };
                let req = with_options(chain_request(k), options);
                barrier.wait();
                let resp = svc.handle_request_coalesced(&req);
                assert!(resp.ok, "error: {:?}", resp.error);
                resp
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(
        svc.metrics().fresh_solves(),
        1,
        "identical instances modulo projection/budget must coalesce"
    );
}

#[test]
fn forced_engines_fork_the_cache_key_but_auto_does_not() {
    let svc = service();
    let auto = svc.handle_request(&chain_request(1));
    assert!(auto.ok && !auto.cache_hit);

    // Explicit auto is the same artifact as absent options.
    let explicit_auto = svc.handle_request(&with_options(
        chain_request(2),
        SolveOptions {
            engine: Some(EngineChoice::Auto),
            ..SolveOptions::default()
        },
    ));
    assert!(explicit_auto.cache_hit, "auto shares the default variant");

    // Forced engines solve (and cache) separately.
    let dense = svc.handle_request(&with_options(
        chain_request(3),
        SolveOptions {
            engine: Some(EngineChoice::Dense),
            ..SolveOptions::default()
        },
    ));
    assert!(
        dense.ok && !dense.cache_hit,
        "dense variant is its own entry"
    );
    let dense_again = svc.handle_request(&with_options(
        chain_request(4),
        SolveOptions {
            engine: Some(EngineChoice::Dense),
            ..SolveOptions::default()
        },
    ));
    assert!(dense_again.cache_hit);
    let revised = svc.handle_request(&with_options(
        chain_request(5),
        SolveOptions {
            engine: Some(EngineChoice::Revised),
            ..SolveOptions::default()
        },
    ));
    assert!(revised.ok && !revised.cache_hit);
    // Same LP, so both engines land on the same optimum.
    assert_eq!(dense.lp_value, revised.lp_value);
}

#[test]
fn cache_policies_bypass_and_refresh() {
    let svc = service();
    let warm = svc.handle_request(&chain_request(1));
    assert!(warm.ok && !warm.cache_hit);
    assert_eq!(svc.cache().len(), 1);

    // Bypass: fresh solve, no cache interaction.
    let bypass = svc.handle_request(&with_options(
        chain_request(2),
        SolveOptions {
            cache: Some(CachePolicy::Bypass),
            ..SolveOptions::default()
        },
    ));
    assert!(bypass.ok && !bypass.cache_hit);
    assert_eq!(svc.cache().len(), 1, "bypass must not grow the cache");
    assert_eq!(svc.metrics().fresh_solves(), 2);

    // Refresh: fresh solve, result replaces the entry.
    let refresh = svc.handle_request(&with_options(
        chain_request(3),
        SolveOptions {
            cache: Some(CachePolicy::Refresh),
            ..SolveOptions::default()
        },
    ));
    assert!(refresh.ok && !refresh.cache_hit);
    assert_eq!(svc.cache().len(), 1);
    assert_eq!(svc.metrics().fresh_solves(), 3);

    // A later default request hits the refreshed entry.
    let hit = svc.handle_request(&chain_request(4));
    assert!(hit.cache_hit);
    assert_eq!(svc.metrics().fresh_solves(), 3);
}

#[test]
fn estimate_only_with_trials_keeps_just_the_estimate() {
    let svc = service();
    let mut req = with_options(
        chain_request(1),
        SolveOptions {
            detail: Some(Detail::EstimateOnly),
            ..SolveOptions::default()
        },
    );
    req.estimate_trials = Some(15);
    let resp = svc.handle_request(&req);
    assert!(resp.ok);
    assert!(resp.schedule.is_none());
    assert!(resp.lp_value.is_none());
    let est = resp.estimated_makespan.expect("estimate requested");
    assert!(est.is_finite() && est >= 1.0);
}

/// Shared buffer for driving the pipelined executor directly.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn responses(&self) -> Vec<Response> {
        String::from_utf8(self.0.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect()
    }
}

#[test]
fn expired_jobs_are_dropped_at_dequeue_without_solver_work() {
    use suu_service::ResponseSink;

    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let pool = SolverPool::spawn(
        Arc::clone(&service),
        &PipelineConfig {
            solver_threads: 1,
            queue_capacity: 64,
        },
    );
    let buf = SharedBuf::default();
    let sink = ResponseSink::new(buf.clone());
    let handle = pool.handle();

    // A zero time budget expires the moment the job is accepted: by the
    // time the solver thread dequeues it, it must be dropped unsolved. One
    // submitted as a parsed request, one as a raw line (scanned deadline).
    let expired_request = with_options(
        large_forest_request(31),
        SolveOptions {
            time_budget_ms: Some(0),
            ..SolveOptions::default()
        },
    );
    handle
        .try_submit(Job::new(expired_request.clone(), &sink))
        .unwrap_or_else(|_| panic!("queue has room"));
    let raw = serde_json::to_string(&expired_request)
        .unwrap()
        .replace("\"id\":31", "\"id\":32");
    handle
        .try_submit(Job::from_line(raw, &sink))
        .unwrap_or_else(|_| panic!("queue has room"));
    // A healthy job behind them still gets served.
    handle
        .try_submit(Job::new(chain_request(33), &sink))
        .unwrap_or_else(|_| panic!("queue has room"));
    sink.wait_drained();
    pool.shutdown();

    let mut responses = buf.responses();
    responses.sort_by_key(|r| r.id);
    assert_eq!(responses.len(), 3);
    for resp in &responses[..2] {
        assert!(!resp.ok);
        assert_eq!(
            resp.error_kind.as_deref(),
            Some(error_kind::DEADLINE_EXCEEDED),
            "id {}: {:?}",
            resp.id,
            resp.error
        );
    }
    assert!(responses[2].ok);
    assert_eq!(service.metrics().expired_dropped(), 2);
    assert_eq!(
        service.metrics().fresh_solves(),
        1,
        "expired jobs burn zero solver time"
    );
}

#[test]
fn bad_request_echoes_a_scannable_id() {
    let svc = service();
    // Broken JSON, but the id field is intact: the client can match the
    // error to its request instead of receiving id 0.
    let out = svc.handle_line(r#"{"id":77,"num_jobs":"two"}"#);
    let resp: Response = serde_json::from_str(&out).unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.error_kind.as_deref(), Some(error_kind::BAD_REQUEST));
    assert_eq!(resp.id, 77);

    // Same through the pipelined rendered path.
    let out = svc.handle_line_coalesced_rendered(r#"{"id":88,"num_jobs":"two"}"#);
    let resp: Response = serde_json::from_str(&out).unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.id, 88);

    // No scannable id still yields 0.
    let out = svc.handle_line("complete garbage");
    let resp: Response = serde_json::from_str(&out).unwrap();
    assert_eq!(resp.id, 0);
}

#[test]
fn rendered_fast_path_projects_no_schedule() {
    // The pipelined fast path splices a pre-rendered no_schedule body; the
    // result must parse to exactly the projected Response the slow path
    // builds.
    let svc = service();
    let full_line = svc.handle_request_coalesced_rendered(&chain_request(1));
    let full: Response = serde_json::from_str(&full_line).unwrap();
    assert!(full.ok && full.schedule.is_some());

    let trimmed_req = with_options(
        chain_request(2),
        SolveOptions {
            detail: Some(Detail::NoSchedule),
            ..SolveOptions::default()
        },
    );
    let trimmed_line = svc.handle_request_coalesced_rendered(&trimmed_req);
    assert!(
        trimmed_line.len() < full_line.len() / 2,
        "no_schedule line should be much smaller ({} vs {})",
        trimmed_line.len(),
        full_line.len()
    );
    let trimmed: Response = serde_json::from_str(&trimmed_line).unwrap();
    assert!(trimmed.ok);
    assert!(trimmed.cache_hit, "same cache entry as the full request");
    assert!(trimmed.schedule.is_none());
    assert_eq!(trimmed.schedule_len, full.schedule_len);
    assert_eq!(trimmed.lp_pivots, full.lp_pivots);

    let slow = svc
        .handle_request_coalesced(&trimmed_req)
        .project(Detail::NoSchedule);
    assert_eq!(trimmed.schedule_len, slow.schedule_len);
    assert_eq!(trimmed.lp_value, slow.lp_value);
}
