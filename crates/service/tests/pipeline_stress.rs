//! Concurrency stress battery for the sharded schedule cache, the
//! single-flight layer and the pipelined executor's admission control.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

use suu_core::{InstanceBuilder, SuuInstance};
use suu_service::{
    spawn_tcp, ExecutionMode, PipelineConfig, Request, Response, SchedulerService, ServiceConfig,
    TcpServerConfig,
};
use suu_workloads::uniform_matrix;

fn chain_instance(seed: u64) -> SuuInstance {
    InstanceBuilder::new(6, 3)
        .probability_matrix(uniform_matrix(6, 3, 0.3, 0.9, seed))
        .chains(&[vec![0, 1, 2], vec![3, 4, 5]])
        .build()
        .unwrap()
}

/// N threads hammering K distinct instances through the coalesced path must
/// trigger exactly K solver invocations: every concurrent duplicate either
/// waits on the leader's flight or hits the cache, never re-solves.
#[test]
fn n_threads_on_k_instances_trigger_exactly_k_fresh_solves() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 6;
    const K: usize = 6;

    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let instances: Arc<Vec<SuuInstance>> =
        Arc::new((0..K as u64).map(|k| chain_instance(0xABC0 + k)).collect());
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let instances = Arc::clone(&instances);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut responses = Vec::new();
                for round in 0..ROUNDS {
                    // Every thread starts every round on the same instance at
                    // the same moment — the worst case for duplicate solves.
                    barrier.wait();
                    let which = round % instances.len();
                    let request =
                        Request::from_instance((t * 1000 + round) as u64, &instances[which]);
                    let response = service.handle_request_coalesced(&request);
                    responses.push((which, response));
                    // And a second pass over a *different* instance to mix
                    // cache hits into the contention window.
                    let other = (round + t) % instances.len();
                    let request =
                        Request::from_instance((t * 1000 + 500 + round) as u64, &instances[other]);
                    responses.push((other, service.handle_request_coalesced(&request)));
                }
                responses
            })
        })
        .collect();

    let mut all: Vec<(usize, Response)> = Vec::new();
    for handle in handles {
        all.extend(
            handle
                .join()
                .expect("stress thread panicked (poisoned lock?)"),
        );
    }
    assert_eq!(all.len(), THREADS * ROUNDS * 2);

    // Every response succeeded, and all responses for one instance carry the
    // identical schedule (followers got the leader's result).
    let mut schedules: Vec<Option<String>> = vec![None; K];
    for (which, response) in &all {
        assert!(response.ok, "error: {:?}", response.error);
        let rendered = serde_json::to_string(response.schedule.as_ref().unwrap()).unwrap();
        match &schedules[*which] {
            Some(seen) => assert_eq!(seen, &rendered, "instance {which} schedule diverged"),
            None => schedules[*which] = Some(rendered),
        }
    }

    // The acceptance property: exactly K fresh solves, everything else
    // served from the flight table or the cache.
    let snapshot = service.metrics().snapshot();
    assert_eq!(
        snapshot.fresh_solves, K as u64,
        "duplicate concurrent requests must coalesce onto one solve \
         (coalesced={}, requests={})",
        snapshot.coalesced, snapshot.requests
    );
    assert_eq!(snapshot.errors, 0);
    assert_eq!(snapshot.requests, (THREADS * ROUNDS * 2) as u64);
    assert_eq!(service.cache().len(), K);

    // No poisoned locks: the service still serves.
    let after = service.handle_request(&Request::from_instance(42, &instances[0]));
    assert!(after.ok && after.cache_hit);
}

/// The serial (non-coalescing) path is allowed to duplicate solves under the
/// same contention — that contrast is what the single-flight layer buys.
#[test]
fn serial_path_may_duplicate_but_stays_consistent() {
    const THREADS: usize = 8;
    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let instance = chain_instance(0xD1CE);
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let instance = instance.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service.handle_request(&Request::from_instance(t as u64, &instance))
            })
        })
        .collect();
    let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let first = serde_json::to_string(responses[0].schedule.as_ref().unwrap()).unwrap();
    for resp in &responses {
        assert!(resp.ok);
        // Deterministic solvers: even racing duplicates agree bit for bit.
        assert_eq!(
            serde_json::to_string(resp.schedule.as_ref().unwrap()).unwrap(),
            first
        );
    }
    let snapshot = service.metrics().snapshot();
    assert!(snapshot.fresh_solves >= 1);
    assert_eq!(snapshot.coalesced, 0, "serial path never coalesces");
    assert_eq!(service.cache().len(), 1, "duplicates collapse in the cache");
}

/// Flooding a tiny queue must produce structured `busy` rejections — not
/// blocked readers, not dropped lines — and the connection must keep
/// working afterwards.
#[test]
fn admission_control_rejects_with_busy_and_connection_survives() {
    const FLOOD: usize = 64;

    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let handle = spawn_tcp(
        Arc::clone(&service),
        &TcpServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            mode: ExecutionMode::Pipelined(PipelineConfig {
                solver_threads: 1,
                queue_capacity: 2,
            }),
        },
    )
    .unwrap();

    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    // Distinct instances (no coalescing shortcut) with slow-ish solves so
    // the 2-slot queue genuinely overflows while the flood is written.
    for id in 1..=FLOOD as u64 {
        let inst = chain_instance(0xF100D + id);
        let mut request = Request::from_instance(id, &inst);
        request.estimate_trials = Some(200);
        writeln!(writer, "{}", serde_json::to_string(&request).unwrap()).unwrap();
    }
    writer.flush().unwrap();

    let mut ids = Vec::new();
    let mut busy = 0;
    let mut ok = 0;
    for _ in 0..FLOOD {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "connection died");
        let resp: Response = serde_json::from_str(&line).unwrap();
        ids.push(resp.id);
        if resp.is_busy() {
            busy += 1;
        } else {
            assert!(resp.ok, "non-busy response failed: {:?}", resp.error);
            ok += 1;
        }
    }
    ids.sort_unstable();
    assert_eq!(
        ids,
        (1..=FLOOD as u64).collect::<Vec<_>>(),
        "every request got exactly one response with its own id"
    );
    assert!(busy > 0, "a 2-slot queue must reject part of a 64-burst");
    assert!(ok > 0, "accepted requests still complete");
    assert_eq!(service.metrics().busy_rejections(), busy);

    // Same connection, after the storm: normal service.
    let calm = Request::from_instance(9_000, &chain_instance(0xCA1A));
    writeln!(writer, "{}", serde_json::to_string(&calm).unwrap()).unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    assert!(reader.read_line(&mut line).unwrap() > 0);
    let resp: Response = serde_json::from_str(&line).unwrap();
    assert!(resp.ok, "connection must survive admission control");
    assert_eq!(resp.id, 9_000);
    handle.shutdown();
}
