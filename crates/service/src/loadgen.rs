//! Load generation: replay workload scenarios against a running service and
//! measure latency and throughput.
//!
//! The generator opens `connections` TCP connections, splits a pre-built
//! request pool across them, optionally paces to a target aggregate request
//! rate, and reports p50/p99 latency plus achieved requests/sec using the
//! statistics substrate from `suu-sim` ([`OnlineStats`] for moments,
//! [`SampleSet`] for order statistics).
//!
//! Two arrival modes, selected by [`LoadgenConfig::max_in_flight`]:
//!
//! * **Closed loop** (`max_in_flight == 1`): each connection sends one
//!   request, waits for its response, then sends the next — the classic
//!   serial client, and the baseline for the pipelined-vs-serial benchmark.
//! * **Open loop** (`max_in_flight > 1`): each connection keeps sending
//!   without waiting, capped at `max_in_flight` outstanding requests, and a
//!   dedicated reader thread matches responses to requests **by id** (the
//!   pipelined service may answer out of order). Structured `busy`
//!   rejections are counted separately from errors.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;
use suu_sim::{OnlineStats, SampleSet};
use suu_workloads::{
    bursty_multi_tenant_stream, deadline_burst_stream, flash_crowd_sessions,
    grid_computing_instance, project_management_instance, tenant_drift_stream, BurstConfig,
    DriftConfig, GridConfig, ProjectConfig,
};

use serde::Value;

use crate::protocol::{
    error_kind, scan_u64_field, Detail, EngineChoice, Request, Response, SolveOptions,
};
use crate::session::{drive_session, DriveConfig};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Address of a running service (`host:port`).
    pub addr: String,
    /// Scenario name: `mixed`, `grid`, `project` or `bursty`.
    pub scenario: String,
    /// Number of concurrent client connections (threads).
    pub connections: usize,
    /// Total number of requests across all connections.
    pub total_requests: usize,
    /// Aggregate target request rate; `None` sends as fast as possible.
    pub target_rps: Option<f64>,
    /// Outstanding-request cap per connection: 1 = closed loop (wait for
    /// each response), >1 = open-loop pipelining matched by response id.
    pub max_in_flight: usize,
    /// Capture a canonical fingerprint of every response payload (id, ok,
    /// solver, schedule) so two runs can be compared modulo ordering.
    pub collect_payloads: bool,
    /// Attach `options.time_budget_ms` to every request: a per-request
    /// deadline relative to service acceptance. Expired requests come back
    /// as `deadline_exceeded` / `budget_exhausted` and are counted in
    /// [`LoadReport::expired`].
    pub deadline_ms: Option<u64>,
    /// Attach `options.detail` to every request (response projection).
    pub detail: Option<Detail>,
    /// Attach `options.trace` to every request and scrape the per-response
    /// `trace` object plus, at the end of the run, the service's `stats`
    /// verb — the server-side latency attribution table in
    /// [`LoadReport::server_stages`].
    pub trace: bool,
    /// Session mode: instead of replaying a request pool, drive
    /// `total_requests` closed-loop adaptive *sessions* (the flash-crowd
    /// scenario family: structurally identical instances, scripted early
    /// machine failure) across `connections` concurrent TCP connections,
    /// measuring revision latency and realized makespans. The pool-shaped
    /// knobs (`target_rps`, `max_in_flight`, `deadline_ms`, `detail`,
    /// `trace`, `collect_payloads`) are ignored in this mode.
    pub session: bool,
    /// Seed for workload sampling.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".to_string(),
            scenario: "mixed".to_string(),
            connections: 4,
            total_requests: 400,
            target_rps: None,
            max_in_flight: 1,
            collect_payloads: false,
            deadline_ms: None,
            detail: None,
            trace: false,
            session: false,
            seed: 0x10AD,
        }
    }
}

impl LoadgenConfig {
    /// The per-request options this run attaches, `None` when the run is
    /// plain v1 traffic.
    fn request_options(&self) -> Option<SolveOptions> {
        (self.deadline_ms.is_some() || self.detail.is_some() || self.trace).then(|| SolveOptions {
            time_budget_ms: self.deadline_ms,
            detail: self.detail,
            trace: self.trace,
            ..SolveOptions::default()
        })
    }
}

/// One row of a per-stage latency attribution table: which lifecycle stage
/// (queue/parse/solve/render/flush) the time went to. Client rows are built
/// from scraped per-response `trace` objects, server rows from the `stats`
/// verb's per-stage histograms — the two views of the same run that let a
/// benchmark say *where* p99 lives, not just what it is.
#[derive(Debug, Clone, Serialize)]
pub struct StageAttribution {
    /// Stage name (`queue`, `parse`, `solve`, `render`, `flush`).
    pub stage: String,
    /// Samples recorded for this stage.
    pub count: u64,
    /// Mean stage latency in microseconds.
    pub mean_us: f64,
    /// Median stage latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile stage latency in microseconds.
    pub p99_us: f64,
}

/// Aggregated result of one load-generation run. Flat numeric fields so the
/// report serialises directly into `BENCH_service_throughput.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Scenario that was replayed.
    pub scenario: String,
    /// Client connections used.
    pub connections: usize,
    /// Outstanding-request cap per connection (1 = closed loop).
    pub max_in_flight: usize,
    /// Requests sent.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Error responses (or response parse failures), excluding `busy`.
    pub errors: u64,
    /// Structured `busy` rejections from admission control.
    pub busy: u64,
    /// Requests whose deadline or budget ran out (`deadline_exceeded` or
    /// `budget_exhausted` responses); like `busy`, counted separately from
    /// `errors`.
    pub expired: u64,
    /// Successful responses answered by the degraded serial-baseline
    /// fallback (`degraded: true`); these are also counted in `ok`.
    pub degraded: u64,
    /// Responses served from the schedule cache (including coalesced waits).
    pub cache_hits: u64,
    /// Total response-line bytes received (NDJSON lines without the
    /// terminator) — the payload-size lever the `detail` projection pulls.
    pub response_bytes: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
    /// Achieved aggregate request rate.
    pub achieved_rps: f64,
    /// Target rate, if pacing was requested.
    pub target_rps: Option<f64>,
    /// Mean end-to-end latency in microseconds.
    pub mean_micros: f64,
    /// Median end-to-end latency in microseconds.
    pub p50_micros: f64,
    /// 99th-percentile end-to-end latency in microseconds.
    pub p99_micros: f64,
    /// Worst observed latency in microseconds.
    pub max_micros: f64,
    /// Successful responses that carried a `trace` object (only requests sent
    /// with `options.trace` produce one).
    pub traced: u64,
    /// Traced successful responses whose schedule was computed from a warm
    /// start (`trace.warm == true`); cache hits repeat the original solve's
    /// value.
    pub warm_responses: u64,
    /// The service's lifetime `warm_hits` counter from the end-of-run
    /// `stats` scrape (fresh solves that started from a cached basis).
    pub server_warm_hits: Option<u64>,
    /// Client-side per-stage attribution, aggregated from the scraped
    /// per-response `trace` objects. Empty when tracing was off.
    pub client_stages: Vec<StageAttribution>,
    /// Server-side per-stage attribution from the end-of-run `stats` scrape.
    /// Empty when tracing was off or the scrape failed.
    pub server_stages: Vec<StageAttribution>,
    /// The service's lifetime `requests` counter from the end-of-run `stats`
    /// scrape; every handled request records the `solve` stage exactly once,
    /// so this must equal the server-side `solve` row's count.
    pub server_requests: Option<u64>,
    /// Canonical per-response fingerprints (sorted), when
    /// [`LoadgenConfig::collect_payloads`] was set: two runs over the same
    /// pool produced identical payloads iff these vectors are equal.
    pub payloads: Option<Vec<String>>,
    /// Session mode: adaptive sessions driven to completion (0 in pool
    /// mode). In session mode `ok` counts sessions whose execution finished
    /// within the step horizon and `errors` counts sessions that failed to
    /// open or were cut off.
    pub sessions: u64,
    /// Session mode: schedule revisions received across all sessions.
    pub revisions: u64,
    /// Session mode: revisions whose suffix solve was warm-started.
    pub revision_warm: u64,
    /// Session mode: `unknown_session` errors observed (0 in a healthy run).
    pub unknown_session: u64,
    /// Session mode: median revision round-trip latency in microseconds.
    pub revision_p50_us: f64,
    /// Session mode: 99th-percentile revision round-trip latency.
    pub revision_p99_us: f64,
    /// Session mode: mean realized makespan (steps) over completed sessions.
    pub realized_makespan_mean: f64,
}

impl LoadReport {
    /// Renders a compact human-readable summary. When tracing was on, the
    /// attribution tables and a greppable `stats_consistency=` verdict line
    /// (server `requests` counter vs the `solve` stage count) are appended.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "scenario={} connections={} max_in_flight={} sent={} ok={} errors={} busy={} \
             expired={} degraded={} cache_hits={} response_bytes={}\n\
             wall={:.2}s achieved={:.1} req/s (target {})\n\
             latency: mean={:.0}us p50={:.0}us p99={:.0}us max={:.0}us",
            self.scenario,
            self.connections,
            self.max_in_flight,
            self.sent,
            self.ok,
            self.errors,
            self.busy,
            self.expired,
            self.degraded,
            self.cache_hits,
            self.response_bytes,
            self.wall_secs,
            self.achieved_rps,
            self.target_rps
                .map_or_else(|| "unbounded".to_string(), |r| format!("{r:.1} req/s")),
            self.mean_micros,
            self.p50_micros,
            self.p99_micros,
            self.max_micros,
        );
        if self.sessions > 0 {
            out.push_str(&format!(
                "\nsessions={} revisions={} revision_warm={} unknown_session={}\n\
                 revision latency: p50={:.0}us p99={:.0}us; realized makespan mean={:.1} steps",
                self.sessions,
                self.revisions,
                self.revision_warm,
                self.unknown_session,
                self.revision_p50_us,
                self.revision_p99_us,
                self.realized_makespan_mean,
            ));
        }
        if self.traced > 0 {
            out.push_str(&format!("\ntraced={}", self.traced));
        }
        if self.warm_responses > 0 || self.server_warm_hits.is_some() {
            out.push_str(&format!(
                "\nwarm_responses={} warm_hits={}",
                self.warm_responses,
                self.server_warm_hits.unwrap_or(0)
            ));
        }
        for (label, stages) in [
            ("client", &self.client_stages),
            ("server", &self.server_stages),
        ] {
            for row in stages {
                out.push_str(&format!(
                    "\n{label} stage {}: n={} mean={:.0}us p50={:.0}us p99={:.0}us",
                    row.stage, row.count, row.mean_us, row.p50_us, row.p99_us
                ));
            }
        }
        if let Some(server_requests) = self.server_requests {
            let solve_count = self
                .server_stages
                .iter()
                .find(|row| row.stage == "solve")
                .map_or(0, |row| row.count);
            let verdict = if solve_count == server_requests {
                "ok"
            } else {
                "mismatch"
            };
            out.push_str(&format!(
                "\nstats_consistency={verdict} server_requests={server_requests} \
                 solve_stage_count={solve_count}"
            ));
        }
        out
    }
}

/// Builds the request pool for a scenario.
///
/// Instances are kept small (serving-sized): the pool repeats a bounded set
/// of distinct instances, which is exactly the shape real serving traffic
/// has and what the schedule cache exploits.
///
/// # Errors
///
/// Returns a message naming the valid scenarios when `scenario` is unknown.
pub fn build_request_pool(
    scenario: &str,
    total_requests: usize,
    seed: u64,
) -> Result<Vec<Request>, String> {
    let instances = match scenario {
        "grid" => (0..4)
            .map(|k| {
                grid_computing_instance(&GridConfig {
                    num_jobs: 8 + 2 * k,
                    num_machines: 4,
                    num_task_roots: 2,
                    seed: seed ^ k as u64,
                    ..GridConfig::default()
                })
            })
            .collect::<Vec<_>>(),
        "project" => (0..4)
            .map(|k| {
                project_management_instance(&ProjectConfig {
                    num_tasks: 8 + 2 * k,
                    num_workers: 4,
                    num_streams: 2,
                    seed: seed ^ (0x100 + k as u64),
                })
            })
            .collect::<Vec<_>>(),
        "deadline" => {
            // The deadline-burst scenario: bursts of LP-backed tenants sized
            // so a fresh solve takes real time — replayed with a tight
            // `--deadline-ms`, the tail of each burst expires in the queue
            // and exercises the dequeue-time drop path.
            let config = BurstConfig {
                num_tenants: (total_requests / 25).clamp(4, 16),
                jobs: (24, 40),
                machines: (4, 6),
                seed,
                ..BurstConfig::default()
            };
            let (tenants, stream) = deadline_burst_stream(&config);
            return Ok((0..total_requests)
                .map(|k| Request::from_instance(k as u64 + 1, &tenants[stream[k % stream.len()]]))
                .collect());
        }
        "tenant_drift" => {
            // The warm-start scenario: a few long-lived tenants prime the
            // cache with full payloads, then ~95% of the traffic is one-cell
            // `set_prob` deltas against those bases — each a *distinct*
            // instance (no cache hits) inside an unchanged structural class
            // (every solve warm-starts from the tenant's cached basis). The
            // revised engine is forced per request because only the revised
            // simplex captures and consumes bases; `Auto` would route these
            // serving-sized instances to the dense tableau and measure
            // nothing.
            let (tenants, stream) = tenant_drift_stream(&drift_config(total_requests, seed));
            return Ok(stream
                .iter()
                .enumerate()
                .map(|(k, event)| {
                    let id = k as u64 + 1;
                    let mut request = match &event.edit {
                        Some(delta) => Request::from_delta(
                            id,
                            tenants[event.tenant].canonical_digest(),
                            delta.clone(),
                        ),
                        None => Request::from_instance(id, &tenants[event.tenant]),
                    };
                    request.options = Some(SolveOptions {
                        engine: Some(EngineChoice::Revised),
                        ..SolveOptions::default()
                    });
                    request
                })
                .collect());
        }
        "bursty" | "mixed" => {
            let mut config = BurstConfig {
                seed,
                ..BurstConfig::default()
            };
            if scenario == "mixed" {
                // Mixed bursts: more tenants, so the stream interleaves all
                // three structural classes within every few requests.
                config.num_tenants = 9;
                config.jobs = (4, 8);
                config.machines = (2, 4);
            } else {
                // Bursty: scale the tenant population with the pool size so
                // longer runs keep introducing fresh tenants (and their
                // first-burst duplicate solves) instead of devolving into a
                // pure cache-hit replay after the first few dozen requests,
                // and size the tenants like real multi-tenant traffic —
                // large enough that a fresh LP solve visibly dominates a
                // cache hit, which is exactly the regime where serial
                // connections racing the same burst waste whole solves.
                config.num_tenants = (total_requests / 25).clamp(6, 32);
                config.jobs = (24, 40);
                config.machines = (4, 6);
            }
            let (tenants, stream) = bursty_multi_tenant_stream(&config);
            return Ok((0..total_requests)
                .map(|k| Request::from_instance(k as u64 + 1, &tenants[stream[k % stream.len()]]))
                .collect());
        }
        other => {
            return Err(format!(
                "unknown scenario `{other}`; expected one of: mixed, grid, project, bursty, \
                 deadline, tenant_drift"
            ))
        }
    };
    Ok((0..total_requests)
        .map(|k| Request::from_instance(k as u64 + 1, &instances[k % instances.len()]))
        .collect())
}

/// The drift-stream shape behind the `tenant_drift` scenario, shared with
/// [`tenant_drift_bases`] so priming and replay agree on the tenant set.
fn drift_config(total_requests: usize, seed: u64) -> DriftConfig {
    DriftConfig {
        num_tenants: (total_requests / 50).clamp(2, 8),
        requests: total_requests,
        seed,
        ..DriftConfig::default()
    }
}

/// The tenant base instances the `tenant_drift` scenario drifts against,
/// for the same `(total_requests, seed)` the pool is built from. A
/// benchmark primes a service's cache with these before replaying the
/// stream, so no delta ever races its parent's first solve.
#[must_use]
pub fn tenant_drift_bases(total_requests: usize, seed: u64) -> Vec<suu_core::SuuInstance> {
    tenant_drift_stream(&drift_config(total_requests, seed)).0
}

/// The stage names a per-response `trace` object attributes time to, in wire
/// order. (`parse` is a server-side-only stage: it is never echoed per
/// response, only aggregated in the `stats` histograms.)
const TRACE_STAGES: [&str; 4] = ["queue", "solve", "render", "flush"];

/// The four stage latencies scraped from one response's `trace` object, in
/// [`TRACE_STAGES`] order.
#[derive(Debug, Clone, Copy)]
struct TraceSample([u64; 4]);

#[derive(Default)]
struct ThreadOutcome {
    sent: u64,
    ok: u64,
    errors: u64,
    busy: u64,
    expired: u64,
    degraded: u64,
    cache_hits: u64,
    traced: u64,
    warm: u64,
    response_bytes: u64,
    latency: OnlineStats,
    samples: SampleSet,
    stage_latency: [OnlineStats; TRACE_STAGES.len()],
    stage_samples: [SampleSet; TRACE_STAGES.len()],
    payloads: Vec<String>,
}

impl ThreadOutcome {
    /// Records one response; `micros` is the end-to-end latency when the
    /// response could be matched to its request.
    fn record(&mut self, response: Option<&ResponseSummary>, micros: Option<f64>) {
        if let Some(micros) = micros {
            self.latency.push(micros);
            self.samples.push(micros);
        }
        match response {
            Some(resp) if resp.ok => {
                self.ok += 1;
                if resp.cache_hit {
                    self.cache_hits += 1;
                }
                if resp.degraded {
                    self.degraded += 1;
                }
                if let Some(trace) = resp.trace {
                    self.traced += 1;
                    for (i, &stage_us) in trace.0.iter().enumerate() {
                        self.stage_latency[i].push(stage_us as f64);
                        self.stage_samples[i].push(stage_us as f64);
                    }
                }
                if resp.warm {
                    self.warm += 1;
                }
            }
            Some(resp) if resp.busy => self.busy += 1,
            Some(resp) if resp.expired => self.expired += 1,
            _ => self.errors += 1,
        }
    }
}

/// The per-response facts the load generator acts on.
struct ResponseSummary {
    id: u64,
    ok: bool,
    busy: bool,
    /// `deadline_exceeded` or `budget_exhausted`.
    expired: bool,
    /// Successful response answered by the degraded fallback.
    degraded: bool,
    cache_hit: bool,
    /// The `trace` object reported a warm-started solve.
    warm: bool,
    /// Stage latencies from the `trace` object, when the request opted in.
    trace: Option<TraceSample>,
}

/// Digests one response line: a cheap field scan by default, a full parse
/// (plus payload fingerprint) when `fingerprint` is requested. A load
/// generator that deserialised every multi-kilobyte schedule would measure
/// its own JSON parser rather than the service, so — like any serious load
/// tool — the hot path only scans for the envelope fields it needs. The
/// scan is exact: inside JSON string values every `"` is escaped as `\"`,
/// so the unescaped patterns below cannot occur anywhere but the envelope.
fn digest_response_line(
    line: &str,
    fingerprint: bool,
) -> (Option<ResponseSummary>, Option<String>) {
    if fingerprint {
        match serde_json::from_str::<Response>(line) {
            Ok(resp) => {
                let kind = resp.error_kind.as_deref();
                let summary = ResponseSummary {
                    id: resp.id,
                    ok: resp.ok,
                    busy: resp.is_busy(),
                    expired: matches!(
                        kind,
                        Some(error_kind::DEADLINE_EXCEEDED | error_kind::BUDGET_EXHAUSTED)
                    ),
                    degraded: resp.degraded,
                    cache_hit: resp.cache_hit,
                    warm: resp.trace.as_ref().is_some_and(|t| t.warm),
                    trace: resp
                        .trace
                        .as_ref()
                        .map(|t| TraceSample([t.queue_us, t.solve_us, t.render_us, t.flush_us])),
                };
                let fp = payload_fingerprint(&resp);
                (Some(summary), Some(fp))
            }
            Err(_) => (None, None),
        }
    } else {
        (scan_response(line), None)
    }
}

/// Extracts id/ok/busy/cache_hit (and the `trace` object, when present) from
/// a response line without building the JSON tree. Returns `None` if the
/// line does not look like a response.
///
/// The envelope fields sit within a short prefix (`id`, `ok`, `error_kind`)
/// or suffix (`cache_hit` in the spliced rendering) of the line, so the scan
/// inspects two small windows instead of walking a multi-kilobyte schedule;
/// a long error message can push fields past the windows, in which case the
/// scan falls back to the full line. The tail window is sized so that the
/// opt-in `trace` object (spliced last, ~120 bytes) cannot push `cache_hit`
/// out of it.
fn scan_response(line: &str) -> Option<ResponseSummary> {
    // Clamp to char boundaries: error messages may echo non-ASCII input.
    let mut head_end = line.len().min(192);
    while !line.is_char_boundary(head_end) {
        head_end -= 1;
    }
    let mut tail_start = line.len().saturating_sub(320);
    while !line.is_char_boundary(tail_start) {
        tail_start += 1;
    }
    let head = &line[..head_end];
    let tail = &line[tail_start..];
    let windows_contain =
        |needle: &str| head.contains(needle) || tail.contains(needle) || line.contains(needle);
    // Locate a key in one of the windows and report whether its value starts
    // with `true` — without ever walking the full line, since every response
    // rendering keeps its envelope fields inside the windows.
    let windows_flag = |key: &str| {
        [head, tail]
            .iter()
            .find_map(|w| {
                w.find(key)
                    .map(|at| w[at + key.len()..].starts_with("true"))
            })
            .unwrap_or(false)
    };

    let id_at = head.find("\"id\":")? + 5;
    let rest = line[id_at..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    let id: u64 = digits.parse().ok()?;
    let ok = if head.contains("\"ok\":true") {
        true
    } else if head.contains("\"ok\":false") {
        false
    } else {
        return None;
    };
    // Successful responses never carry an error_kind, so the (full-line
    // fallback) busy/expired probes only ever run on short error lines.
    let busy = !ok && windows_contain("\"error_kind\":\"busy\"");
    let expired = !ok
        && (windows_contain("\"error_kind\":\"deadline_exceeded\"")
            || windows_contain("\"error_kind\":\"budget_exhausted\""));
    // `degraded` is spliced after `service_micros`, i.e. within the tail
    // window of every response rendering.
    let degraded = ok && windows_flag("\"degraded\":");
    let cache_hit = ok && windows_flag("\"cache_hit\":");
    // `warm` lives inside the trace object, which is spliced last and so
    // always sits in the tail window.
    let warm = ok && windows_flag("\"warm\":");
    // The trace object is spliced last, so it always sits in the tail window;
    // scan its four stage fields relative to the `"trace"` key so a request
    // id or pivot count elsewhere on the line cannot be misread as a stage.
    let trace = if ok {
        tail.find("\"trace\":{").and_then(|at| {
            let obj = &tail[at..];
            let mut stages = [0u64; TRACE_STAGES.len()];
            for (slot, key) in stages.iter_mut().zip([
                "\"queue_us\":",
                "\"solve_us\":",
                "\"render_us\":",
                "\"flush_us\":",
            ]) {
                *slot = scan_u64_field(obj, key)?;
            }
            Some(TraceSample(stages))
        })
    } else {
        None
    };
    Some(ResponseSummary {
        id,
        ok,
        busy,
        expired,
        degraded,
        cache_hit,
        warm,
        trace,
    })
}

/// A canonical fingerprint of the parts of a response that must not depend
/// on execution mode: id, outcome, solver and the schedule itself. Excludes
/// `cache_hit`, timings and error phrasing, which legitimately vary.
fn payload_fingerprint(resp: &Response) -> String {
    let schedule_digest = resp.schedule.as_ref().map_or(0, |schedule| {
        let rendered = serde_json::to_string(schedule).expect("schedules serialise");
        crate::fnv1a(rendered.as_bytes())
    });
    format!(
        "{}|ok={}|solver={}|len={}|sched={:016x}",
        resp.id,
        resp.ok,
        resp.solver.as_deref().unwrap_or("-"),
        resp.schedule_len,
        schedule_digest
    )
}

/// Per-connection slice of the pool: `(pacing index, request id, line)`.
type Assigned = Vec<(usize, u64, String)>;

/// The open-loop in-flight window, with hysteresis: once the writer hits the
/// cap it parks until the window has drained to half, then sends the next
/// half-burst. Without the low-water mark the steady state degenerates into
/// one wake + one flush per response (the reader frees a slot, the writer
/// sends exactly one request and blocks again), which costs more than the
/// pipelining saves; with it, flushes and wakeups are amortised over
/// `cap/2` requests.
struct InFlightGate {
    cap: usize,
    low: usize,
    count: Mutex<usize>,
    resumable: Condvar,
}

impl InFlightGate {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            low: cap / 2,
            count: Mutex::new(0),
            resumable: Condvar::new(),
        }
    }

    /// Takes a slot if the window is open; `false` means the cap is reached
    /// (the caller should flush, then [`acquire_blocking`](Self::acquire_blocking)).
    fn try_acquire(&self) -> bool {
        let mut count = self.count.lock().expect("in-flight gate poisoned");
        if *count >= self.cap {
            return false;
        }
        *count += 1;
        true
    }

    /// Parks until the window drains to the low-water mark, then takes a slot.
    fn acquire_blocking(&self) {
        let mut count = self.count.lock().expect("in-flight gate poisoned");
        while *count > self.low {
            count = self
                .resumable
                .wait(count)
                .expect("in-flight gate poisoned while waiting");
        }
        *count += 1;
    }

    /// Returns a slot; wakes the writer exactly when the window reaches the
    /// low-water mark (one wakeup per half-burst, not one per response).
    fn release(&self) {
        let mut count = self.count.lock().expect("in-flight gate poisoned");
        *count -= 1;
        if *count == self.low {
            drop(count);
            self.resumable.notify_one();
        }
    }
}

/// Runs the load generator against a running service.
///
/// # Errors
///
/// Returns connection errors, a scenario error as `InvalidInput`, or the
/// first worker I/O error.
pub fn run_loadgen(config: &LoadgenConfig) -> std::io::Result<LoadReport> {
    if config.session {
        return run_session_mode(config);
    }
    let mut pool = build_request_pool(&config.scenario, config.total_requests, config.seed)
        .map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg))?;
    if let Some(options) = config.request_options() {
        for request in &mut pool {
            // Merge rather than overwrite: scenarios may pin per-request
            // options of their own (tenant_drift forces the revised engine),
            // which a run-level deadline or trace flag must not clobber.
            let scenario = request.options.unwrap_or_default();
            request.options = Some(SolveOptions {
                engine: options.engine.or(scenario.engine),
                trace: options.trace || scenario.trace,
                ..options
            });
        }
    }
    let lines: Vec<(u64, String)> = pool
        .iter()
        .map(|r| (r.id, serde_json::to_string(r).expect("requests serialise")))
        .collect();
    let connections = config.connections.max(1);
    let max_in_flight = config.max_in_flight.max(1);
    // Interval between sends on one connection when pacing to the aggregate
    // target rate.
    let per_thread_interval = config
        .target_rps
        .filter(|&rps| rps > 0.0)
        .map(|rps| Duration::from_secs_f64(connections as f64 / rps));

    // Delta scenarios lead with full priming payloads whose solves establish
    // the bases the deltas reference. Replay that prefix serially before
    // opening the concurrent phase: a delta racing its own tenant's priming
    // solve across connections would draw a spurious `unknown_base` that no
    // real client (which submits a base, then edits it) ever sees.
    let prime_len = if pool.iter().any(|r| r.base_digest.is_some()) {
        pool.iter().take_while(|r| r.base_digest.is_none()).count()
    } else {
        0
    };

    let outcomes: Arc<Mutex<Vec<ThreadOutcome>>> = Arc::new(Mutex::new(Vec::new()));

    if prime_len > 0 {
        let assigned: Assigned = lines[..prime_len]
            .iter()
            .enumerate()
            .map(|(k, (id, line))| (k, *id, line.clone()))
            .collect();
        let outcome = run_closed_loop(
            &config.addr,
            &assigned,
            per_thread_interval,
            config.collect_payloads,
        )?;
        outcomes.lock().expect("outcomes poisoned").push(outcome);
    }

    // The throughput clock starts after priming: the serial prefix is
    // warm-up traffic that establishes state, not part of the steady-state
    // workload whose rate the report measures.
    let start = Instant::now();

    let mut handles = Vec::new();
    for worker in 0..connections {
        // Round-robin partition of the (post-priming) pool across
        // connections.
        let assigned: Assigned = lines[prime_len..]
            .iter()
            .enumerate()
            .filter(|(k, _)| k % connections == worker)
            .map(|(k, (id, line))| (k / connections, *id, line.clone()))
            .collect();
        let outcomes = Arc::clone(&outcomes);
        let addr = config.addr.clone();
        let fingerprint = config.collect_payloads;
        handles.push(std::thread::spawn(move || -> std::io::Result<()> {
            let outcome = if max_in_flight <= 1 {
                run_closed_loop(&addr, &assigned, per_thread_interval, fingerprint)?
            } else {
                run_open_loop(
                    &addr,
                    &assigned,
                    per_thread_interval,
                    max_in_flight,
                    fingerprint,
                )?
            };
            outcomes.lock().expect("outcomes poisoned").push(outcome);
            Ok(())
        }));
    }

    let mut first_error: Option<std::io::Error> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(err)) => first_error = first_error.or(Some(err)),
            Err(_) => {
                first_error = first_error
                    .or_else(|| Some(std::io::Error::other("load generator worker panicked")));
            }
        }
    }
    if let Some(err) = first_error {
        return Err(err);
    }

    let wall_secs = start.elapsed().as_secs_f64();
    let mut latency = OnlineStats::new();
    let mut samples = SampleSet::new();
    let mut payloads = Vec::new();
    let mut stage_latency: [OnlineStats; TRACE_STAGES.len()] = Default::default();
    let mut stage_samples: [SampleSet; TRACE_STAGES.len()] = Default::default();
    let (mut sent, mut ok, mut errors, mut busy) = (0, 0, 0, 0);
    let (mut expired, mut degraded, mut cache_hits, mut response_bytes) = (0, 0, 0, 0);
    let mut traced = 0;
    let mut warm_responses = 0;
    for outcome in outcomes.lock().expect("outcomes poisoned").iter_mut() {
        sent += outcome.sent;
        ok += outcome.ok;
        errors += outcome.errors;
        busy += outcome.busy;
        expired += outcome.expired;
        degraded += outcome.degraded;
        cache_hits += outcome.cache_hits;
        traced += outcome.traced;
        warm_responses += outcome.warm;
        response_bytes += outcome.response_bytes;
        latency.merge(&outcome.latency);
        samples.merge(&outcome.samples);
        for i in 0..TRACE_STAGES.len() {
            stage_latency[i].merge(&outcome.stage_latency[i]);
            stage_samples[i].merge(&outcome.stage_samples[i]);
        }
        payloads.append(&mut outcome.payloads);
    }
    payloads.sort_unstable();

    let client_stages: Vec<StageAttribution> = if traced > 0 {
        TRACE_STAGES
            .iter()
            .enumerate()
            .map(|(i, stage)| StageAttribution {
                stage: (*stage).to_string(),
                count: stage_latency[i].count(),
                mean_us: stage_latency[i].mean(),
                p50_us: stage_samples[i].p50().unwrap_or(0.0),
                p99_us: stage_samples[i].p99().unwrap_or(0.0),
            })
            .collect()
    } else {
        Vec::new()
    };
    // End-of-run server-side attribution: ask the service itself where the
    // time went. The scrape rides a fresh connection so it cannot disturb the
    // measured ones, and failure is tolerated — a report without server rows
    // is still a report.
    let (server_requests, server_warm_hits, server_stages) = if config.trace {
        scrape_stats(&config.addr).map_or((None, None, Vec::new()), |stats| {
            (
                scrape_counter(&stats, "requests"),
                scrape_counter(&stats, "warm_hits"),
                stage_rows(&stats),
            )
        })
    } else {
        (None, None, Vec::new())
    };

    Ok(LoadReport {
        scenario: config.scenario.clone(),
        connections,
        max_in_flight,
        sent,
        ok,
        errors,
        busy,
        expired,
        degraded,
        cache_hits,
        response_bytes,
        wall_secs,
        achieved_rps: if wall_secs > 0.0 {
            sent as f64 / wall_secs
        } else {
            0.0
        },
        target_rps: config.target_rps,
        mean_micros: latency.mean(),
        p50_micros: samples.p50().unwrap_or(0.0),
        p99_micros: samples.p99().unwrap_or(0.0),
        max_micros: if latency.count() > 0 {
            latency.max()
        } else {
            0.0
        },
        traced,
        warm_responses,
        server_warm_hits,
        client_stages,
        server_stages,
        server_requests,
        payloads: config.collect_payloads.then_some(payloads),
        sessions: 0,
        revisions: 0,
        revision_warm: 0,
        unknown_session: 0,
        revision_p50_us: 0.0,
        revision_p99_us: 0.0,
        realized_makespan_mean: 0.0,
    })
}

/// Per-thread tally of the session mode.
#[derive(Default)]
struct SessionOutcome {
    sent: u64,
    completed: u64,
    errors: u64,
    revisions: u64,
    warm: u64,
    unknown_session: u64,
    revision_latency: OnlineStats,
    revision_samples: SampleSet,
    realized: OnlineStats,
}

/// The session mode behind [`LoadgenConfig::session`]: `total_requests`
/// flash-crowd sessions split round-robin over `connections` concurrent TCP
/// connections, each driven closed-loop to completion by
/// [`drive_session`] (execute a step, report completions and the scripted
/// failure, install each revision). Because the flash-crowd instances repeat
/// structurally, revisions across sessions warm-start from each other's
/// cached bases — the cross-session warm-hit traffic the subsystem is
/// designed around.
fn run_session_mode(config: &LoadgenConfig) -> std::io::Result<LoadReport> {
    let total_sessions = config.total_requests.max(1);
    let scenarios = flash_crowd_sessions(total_sessions, config.seed);
    let connections = config.connections.max(1).min(total_sessions);
    let outcomes: Arc<Mutex<Vec<SessionOutcome>>> = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();

    let mut handles = Vec::new();
    for worker in 0..connections {
        let assigned: Vec<_> = scenarios
            .iter()
            .enumerate()
            .filter(|(k, _)| k % connections == worker)
            .map(|(k, sc)| (k, sc.clone()))
            .collect();
        let outcomes = Arc::clone(&outcomes);
        let addr = config.addr.clone();
        let seed = config.seed;
        handles.push(std::thread::spawn(move || -> std::io::Result<()> {
            let stream = TcpStream::connect(&addr)?;
            stream.set_nodelay(true)?;
            let mut reader = BufReader::new(stream.try_clone()?);
            let mut writer = BufWriter::new(stream);
            let mut outcome = SessionOutcome::default();
            for (k, scenario) in assigned {
                let drive = DriveConfig {
                    seed: seed.wrapping_add(k as u64),
                    max_steps: 10_000,
                    report_completions: true,
                    failures: scenario.failures.clone(),
                    drifts: scenario.drifts.clone(),
                };
                let run = drive_session(&scenario.instance, &drive, |line| {
                    outcome.sent += 1;
                    writeln!(writer, "{line}").ok()?;
                    writer.flush().ok()?;
                    let mut reply = String::new();
                    let n = reader.read_line(&mut reply).ok()?;
                    (n > 0).then(|| reply.trim_end().to_string())
                });
                match run {
                    Ok(report) => {
                        if report.steps.is_some() {
                            outcome.completed += 1;
                        } else {
                            outcome.errors += 1;
                        }
                        outcome.revisions += report.revisions;
                        outcome.warm += report.warm_revisions;
                        outcome.unknown_session += report.unknown_session_errors;
                        for &micros in &report.revision_micros {
                            outcome.revision_latency.push(micros as f64);
                            outcome.revision_samples.push(micros as f64);
                        }
                        if let Some(steps) = report.steps {
                            outcome.realized.push(steps as f64);
                        }
                    }
                    Err(_) => outcome.errors += 1,
                }
            }
            outcomes.lock().expect("outcomes poisoned").push(outcome);
            Ok(())
        }));
    }

    let mut first_error: Option<std::io::Error> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(err)) => first_error = first_error.or(Some(err)),
            Err(_) => {
                first_error =
                    first_error.or_else(|| Some(std::io::Error::other("session worker panicked")));
            }
        }
    }
    if let Some(err) = first_error {
        return Err(err);
    }
    let wall_secs = start.elapsed().as_secs_f64();

    let mut revision_latency = OnlineStats::new();
    let mut revision_samples = SampleSet::new();
    let mut realized = OnlineStats::new();
    let (mut sent, mut completed, mut errors) = (0, 0, 0);
    let (mut revisions, mut warm, mut unknown) = (0, 0, 0);
    for outcome in outcomes.lock().expect("outcomes poisoned").iter() {
        sent += outcome.sent;
        completed += outcome.completed;
        errors += outcome.errors;
        revisions += outcome.revisions;
        warm += outcome.warm;
        unknown += outcome.unknown_session;
        revision_latency.merge(&outcome.revision_latency);
        revision_samples.merge(&outcome.revision_samples);
        realized.merge(&outcome.realized);
    }

    Ok(LoadReport {
        scenario: "session_flash_crowd".to_string(),
        connections,
        max_in_flight: 1,
        sent,
        ok: completed,
        errors,
        busy: 0,
        expired: 0,
        degraded: 0,
        cache_hits: 0,
        response_bytes: 0,
        wall_secs,
        achieved_rps: if wall_secs > 0.0 {
            sent as f64 / wall_secs
        } else {
            0.0
        },
        target_rps: None,
        mean_micros: revision_latency.mean(),
        p50_micros: revision_samples.p50().unwrap_or(0.0),
        p99_micros: revision_samples.p99().unwrap_or(0.0),
        max_micros: if revision_latency.count() > 0 {
            revision_latency.max()
        } else {
            0.0
        },
        traced: 0,
        warm_responses: 0,
        server_warm_hits: None,
        client_stages: Vec::new(),
        server_stages: Vec::new(),
        server_requests: None,
        payloads: None,
        sessions: total_sessions as u64,
        revisions,
        revision_warm: warm,
        unknown_session: unknown,
        revision_p50_us: revision_samples.p50().unwrap_or(0.0),
        revision_p99_us: revision_samples.p99().unwrap_or(0.0),
        realized_makespan_mean: realized.mean(),
    })
}

/// Sends one `stats` verb over a fresh connection and returns the parsed
/// `stats` object. Any failure — refused connection, closed socket,
/// malformed reply — yields `None`: observability must never fail a run.
fn scrape_stats(addr: &str) -> Option<Value> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_nodelay(true).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "{{\"id\":0,\"verb\":\"stats\"}}").ok()?;
    writer.flush().ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let value = serde_json::parse(line.trim_end()).ok()?;
    value.get("stats").cloned()
}

/// Reads one top-level counter out of a scraped `stats` object.
fn scrape_counter(stats: &Value, key: &str) -> Option<u64> {
    match stats.get(key)? {
        Value::Number(n) => Some(*n as u64),
        _ => None,
    }
}

/// Converts the `stages` histograms of a scraped `stats` object into
/// attribution rows, preserving the service's queue→flush stage order.
fn stage_rows(stats: &Value) -> Vec<StageAttribution> {
    let Some(Value::Object(stages)) = stats.get("stages") else {
        return Vec::new();
    };
    let number = |hist: &Value, key: &str| match hist.get(key) {
        Some(Value::Number(n)) => *n,
        _ => 0.0,
    };
    stages
        .iter()
        .map(|(stage, hist)| StageAttribution {
            stage: stage.clone(),
            count: number(hist, "count") as u64,
            mean_us: number(hist, "mean"),
            p50_us: number(hist, "p50"),
            p99_us: number(hist, "p99"),
        })
        .collect()
}

/// One request outstanding at a time: send, wait for the response, repeat.
fn run_closed_loop(
    addr: &str,
    assigned: &Assigned,
    interval: Option<Duration>,
    fingerprint: bool,
) -> std::io::Result<ThreadOutcome> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut outcome = ThreadOutcome::default();
    let thread_start = Instant::now();
    for (k, _, line) in assigned {
        if let Some(interval) = interval {
            let due = interval.mul_f64(*k as f64);
            let elapsed = thread_start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        let sent_at = Instant::now();
        writeln!(writer, "{line}")?;
        writer.flush()?;
        let mut response = String::new();
        reader.read_line(&mut response)?;
        let micros = sent_at.elapsed().as_micros() as f64;
        outcome.sent += 1;
        outcome.response_bytes += response.trim_end().len() as u64;
        let (summary, fp) = digest_response_line(&response, fingerprint);
        outcome.record(summary.as_ref(), Some(micros));
        if let Some(fp) = fp {
            outcome.payloads.push(fp);
        }
    }
    Ok(outcome)
}

/// Up to `max_in_flight` requests outstanding: a dedicated reader thread
/// matches responses to send times by id while this thread keeps writing.
fn run_open_loop(
    addr: &str,
    assigned: &Assigned,
    interval: Option<Duration>,
    max_in_flight: usize,
    fingerprint: bool,
) -> std::io::Result<ThreadOutcome> {
    let stream = TcpStream::connect(addr)?;
    // A pipelined writer must not sit on Nagle's algorithm: a half-burst
    // that fits one segment would otherwise wait out the peer's delayed ACK.
    stream.set_nodelay(true)?;
    let reader_stream = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);

    let pending: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let in_flight = Arc::new(InFlightGate::new(max_in_flight));
    let expected = assigned.len();

    let reader_thread = {
        let pending = Arc::clone(&pending);
        let in_flight = Arc::clone(&in_flight);
        std::thread::spawn(move || -> std::io::Result<ThreadOutcome> {
            let mut reader = BufReader::new(reader_stream);
            let mut outcome = ThreadOutcome::default();
            for _ in 0..expected {
                let mut response = String::new();
                if reader.read_line(&mut response)? == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "service closed the connection mid-run",
                    ));
                }
                outcome.response_bytes += response.trim_end().len() as u64;
                let (summary, fp) = digest_response_line(&response, fingerprint);
                let micros = summary.as_ref().and_then(|resp| {
                    pending
                        .lock()
                        .expect("pending map poisoned")
                        .remove(&resp.id)
                        .map(|sent_at| sent_at.elapsed().as_micros() as f64)
                });
                outcome.record(summary.as_ref(), micros);
                if let Some(fp) = fp {
                    outcome.payloads.push(fp);
                }
                in_flight.release();
            }
            Ok(outcome)
        })
    };

    let thread_start = Instant::now();
    let mut sent = 0u64;
    let mut write_error: Option<std::io::Error> = None;
    'writing: for (k, id, line) in assigned {
        if let Some(interval) = interval {
            let due = interval.mul_f64(*k as f64);
            let elapsed = thread_start.elapsed();
            if due > elapsed {
                // About to idle: push buffered requests out first so their
                // responses can overlap the pause.
                if let Err(err) = writer.flush() {
                    write_error = Some(err);
                    break 'writing;
                }
                std::thread::sleep(due - elapsed);
            }
        }
        if !in_flight.try_acquire() {
            // The cap is reached: everything buffered must reach the service
            // or the responses we are waiting on never come.
            if let Err(err) = writer.flush() {
                write_error = Some(err);
                break 'writing;
            }
            in_flight.acquire_blocking();
        }
        pending
            .lock()
            .expect("pending map poisoned")
            .insert(*id, Instant::now());
        if let Err(err) = writeln!(writer, "{line}") {
            write_error = Some(err);
            break 'writing;
        }
        sent += 1;
    }
    if write_error.is_none() {
        if let Err(err) = writer.flush() {
            write_error = Some(err);
        }
    }
    if write_error.is_some() {
        // Unblock the reader: it stops at EOF once the socket is dead.
        let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
    }

    let reader_outcome = reader_thread
        .join()
        .map_err(|_| std::io::Error::other("load generator reader panicked"))?;
    if let Some(err) = write_error {
        return Err(err);
    }
    let mut outcome = reader_outcome?;
    outcome.sent = sent;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_cover_every_scenario_and_cycle() {
        for scenario in ["mixed", "grid", "project", "bursty", "deadline"] {
            let pool = build_request_pool(scenario, 25, 1).unwrap();
            assert_eq!(pool.len(), 25, "{scenario}");
            // Ids are 1-based and unique.
            assert_eq!(pool[0].id, 1);
            assert_eq!(pool[24].id, 25);
            // The pool repeats instances (a bounded distinct set).
            let distinct: std::collections::HashSet<u64> = pool
                .iter()
                .map(|r| r.to_instance().unwrap().canonical_digest())
                .collect();
            assert!(distinct.len() < pool.len(), "{scenario} should repeat");
            for req in &pool {
                assert!(req.to_instance().is_ok(), "{scenario} request invalid");
            }
        }
    }

    #[test]
    fn tenant_drift_pool_is_mostly_deltas_on_the_revised_engine() {
        let pool = build_request_pool("tenant_drift", 100, 7).unwrap();
        assert_eq!(pool.len(), 100);
        let deltas = pool.iter().filter(|r| r.base_digest.is_some()).count();
        let fulls = pool.len() - deltas;
        assert!(deltas >= 80, "deltas should dominate: {deltas}");
        assert!(fulls >= 2, "priming full payloads present: {fulls}");
        // The priming prefix is full payloads, so a delta's base is always
        // submitted before the delta on a serial replay.
        assert!(pool[0].base_digest.is_none());
        for req in &pool {
            // Every request pins the revised engine (the only one that
            // captures and consumes bases).
            assert_eq!(
                req.options.as_ref().and_then(|o| o.engine),
                Some(EngineChoice::Revised)
            );
            // Delta requests reference a digest that a full request in the
            // pool also carries as its payload.
            if let Some(wire) = &req.base_digest {
                let digest = crate::protocol::digest_from_wire(wire).unwrap();
                assert!(
                    pool.iter().any(|other| other.base_digest.is_none()
                        && other.to_instance().unwrap().canonical_digest() == digest),
                    "delta base must be a live tenant"
                );
            }
        }
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        assert!(build_request_pool("nope", 10, 1).is_err());
        let config = LoadgenConfig {
            scenario: "nope".to_string(),
            ..LoadgenConfig::default()
        };
        let err = run_loadgen(&config).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn report_renders_and_serialises() {
        let report = LoadReport {
            scenario: "mixed".to_string(),
            connections: 4,
            max_in_flight: 16,
            sent: 100,
            ok: 99,
            errors: 1,
            busy: 0,
            expired: 3,
            degraded: 2,
            cache_hits: 80,
            response_bytes: 123_456,
            wall_secs: 0.5,
            achieved_rps: 200.0,
            target_rps: Some(150.0),
            mean_micros: 300.0,
            p50_micros: 250.0,
            p99_micros: 900.0,
            max_micros: 1200.0,
            traced: 0,
            warm_responses: 0,
            server_warm_hits: None,
            client_stages: Vec::new(),
            server_stages: Vec::new(),
            server_requests: None,
            payloads: None,
            sessions: 0,
            revisions: 0,
            revision_warm: 0,
            unknown_session: 0,
            revision_p50_us: 0.0,
            revision_p99_us: 0.0,
            realized_makespan_mean: 0.0,
        };
        let text = report.render();
        assert!(text.contains("200.0 req/s"));
        assert!(text.contains("p99=900us"));
        assert!(text.contains("max_in_flight=16"));
        assert!(text.contains("expired=3"));
        assert!(text.contains("degraded=2"));
        assert!(text.contains("response_bytes=123456"));
        assert!(!text.contains("traced="), "untraced runs stay compact");
        assert!(!text.contains("stats_consistency"));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("achieved_rps"));
        assert!(json.contains("busy"));
        assert!(json.contains("expired"));
        assert!(json.contains("response_bytes"));
        assert!(json.contains("server_stages"));
    }

    #[test]
    fn render_appends_attribution_and_consistency_verdict() {
        let stage = |name: &str, count| StageAttribution {
            stage: name.to_string(),
            count,
            mean_us: 10.0,
            p50_us: 8.0,
            p99_us: 40.0,
        };
        let mut report = LoadReport {
            scenario: "mixed".to_string(),
            connections: 1,
            max_in_flight: 1,
            sent: 5,
            ok: 5,
            errors: 0,
            busy: 0,
            expired: 0,
            degraded: 0,
            cache_hits: 0,
            response_bytes: 0,
            wall_secs: 1.0,
            achieved_rps: 5.0,
            target_rps: None,
            mean_micros: 0.0,
            p50_micros: 0.0,
            p99_micros: 0.0,
            max_micros: 0.0,
            traced: 5,
            warm_responses: 0,
            server_warm_hits: None,
            client_stages: vec![stage("queue", 5), stage("solve", 5)],
            server_stages: vec![stage("solve", 5), stage("render", 5)],
            server_requests: Some(5),
            payloads: None,
            sessions: 0,
            revisions: 0,
            revision_warm: 0,
            unknown_session: 0,
            revision_p50_us: 0.0,
            revision_p99_us: 0.0,
            realized_makespan_mean: 0.0,
        };
        let text = report.render();
        assert!(text.contains("traced=5"));
        assert!(text.contains("client stage queue: n=5"));
        assert!(text.contains("server stage solve: n=5"));
        assert!(text.contains("stats_consistency=ok server_requests=5 solve_stage_count=5"));
        report.server_requests = Some(7);
        assert!(report.render().contains("stats_consistency=mismatch"));
    }

    #[test]
    fn render_appends_session_aggregates_in_session_mode() {
        let mut report = LoadReport {
            scenario: "session_flash_crowd".to_string(),
            connections: 2,
            max_in_flight: 1,
            sent: 40,
            ok: 4,
            errors: 0,
            busy: 0,
            expired: 0,
            degraded: 0,
            cache_hits: 0,
            response_bytes: 0,
            wall_secs: 1.0,
            achieved_rps: 40.0,
            target_rps: None,
            mean_micros: 500.0,
            p50_micros: 400.0,
            p99_micros: 2000.0,
            max_micros: 2500.0,
            traced: 0,
            warm_responses: 0,
            server_warm_hits: None,
            client_stages: Vec::new(),
            server_stages: Vec::new(),
            server_requests: None,
            payloads: None,
            sessions: 4,
            revisions: 12,
            revision_warm: 9,
            unknown_session: 0,
            revision_p50_us: 400.0,
            revision_p99_us: 2000.0,
            realized_makespan_mean: 17.5,
        };
        let text = report.render();
        // The greppable session line the CI smoke checks rely on.
        assert!(text.contains("sessions=4 revisions=12 revision_warm=9 unknown_session=0"));
        assert!(text.contains("realized makespan mean=17.5 steps"));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("revision_p99_us"));
        assert!(json.contains("realized_makespan_mean"));
        // Pool-mode reports stay free of the session line.
        report.sessions = 0;
        assert!(!report.render().contains("revision latency"));
    }

    #[test]
    fn scan_extracts_trace_stages_and_matches_full_parse() {
        use crate::protocol::TraceReport;
        let mut resp = Response::failure(42, "x");
        resp.ok = true;
        resp.error = None;
        resp.error_kind = None;
        resp.solver = Some("suu-c".to_string());
        resp.cache_hit = true;
        resp.trace = Some(TraceReport {
            queue_us: 11,
            solve_us: 2200,
            render_us: 33,
            flush_us: 4,
            cache: "hit".to_string(),
            lp_pivots: 555,
            warm: false,
        });
        let line = serde_json::to_string(&resp).unwrap();
        for fingerprint in [false, true] {
            let (summary, _) = digest_response_line(&line, fingerprint);
            let summary = summary.expect("traced responses digest");
            let trace = summary.trace.expect("trace scraped");
            assert_eq!(trace.0, [11, 2200, 33, 4], "fingerprint={fingerprint}");
        }
        // Untraced responses scrape no trace, and the scan must not confuse
        // the `lp_pivots` field for a stage.
        resp.trace = None;
        let line = serde_json::to_string(&resp).unwrap();
        let (summary, _) = digest_response_line(&line, false);
        assert!(summary.unwrap().trace.is_none());
    }

    #[test]
    fn trace_flag_turns_on_request_options() {
        let config = LoadgenConfig {
            trace: true,
            ..LoadgenConfig::default()
        };
        let options = config.request_options().expect("trace forces options");
        assert!(options.trace);
        assert!(LoadgenConfig::default().request_options().is_none());
    }

    #[test]
    fn stage_rows_read_scraped_stats() {
        let stats = serde_json::parse(
            r#"{"requests":12,"stages":{"queue":{"count":12,"mean":3.5,"p50":3,"p99":9},
                "solve":{"count":12,"mean":100.0,"p50":90,"p99":400}}}"#,
        )
        .unwrap();
        assert_eq!(scrape_counter(&stats, "requests"), Some(12));
        let rows = stage_rows(&stats);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].stage, "queue");
        assert_eq!(rows[0].count, 12);
        assert!((rows[1].mean_us - 100.0).abs() < 1e-9);
        assert!((rows[1].p99_us - 400.0).abs() < 1e-9);
        assert_eq!(stage_rows(&serde_json::parse("{}").unwrap()).len(), 0);
    }

    #[test]
    fn fingerprints_ignore_mode_dependent_fields() {
        let mut a = Response::failure(3, "boom");
        let mut b = Response::failure(3, "different phrasing");
        a.service_micros = 10;
        b.service_micros = 99_999;
        assert_eq!(payload_fingerprint(&a), payload_fingerprint(&b));

        let mut ok_fresh = Response::failure(4, "x");
        ok_fresh.ok = true;
        ok_fresh.error = None;
        ok_fresh.error_kind = None;
        ok_fresh.solver = Some("suu-c".to_string());
        ok_fresh.cache_hit = false;
        let mut ok_cached = ok_fresh.clone();
        ok_cached.cache_hit = true;
        assert_eq!(
            payload_fingerprint(&ok_fresh),
            payload_fingerprint(&ok_cached),
            "cache_hit must not affect the payload fingerprint"
        );
        let mut other = ok_fresh.clone();
        other.solver = Some("suu-forest".to_string());
        assert_ne!(payload_fingerprint(&ok_fresh), payload_fingerprint(&other));
    }

    #[test]
    fn outcome_classifies_busy_separately_from_errors() {
        let mut outcome = ThreadOutcome::default();
        let busy_line = serde_json::to_string(&Response::busy(1)).unwrap();
        let error_line = serde_json::to_string(&Response::failure(2, "bad")).unwrap();
        for fingerprint in [false, true] {
            let (summary, _) = digest_response_line(&busy_line, fingerprint);
            outcome.record(summary.as_ref(), Some(10.0));
            let (summary, _) = digest_response_line(&error_line, fingerprint);
            outcome.record(summary.as_ref(), Some(10.0));
            outcome.record(None, None);
        }
        assert_eq!(outcome.busy, 2);
        assert_eq!(outcome.errors, 4);
        assert_eq!(outcome.ok, 0);
    }

    #[test]
    fn outcome_classifies_expired_and_degraded() {
        let mut outcome = ThreadOutcome::default();
        let expired_line = serde_json::to_string(&Response::deadline_exceeded(1)).unwrap();
        let exhausted_line = serde_json::to_string(&Response::failure_with(
            2,
            error_kind::BUDGET_EXHAUSTED,
            "out of pivots",
        ))
        .unwrap();
        let mut degraded = Response::failure(3, "x");
        degraded.ok = true;
        degraded.error = None;
        degraded.error_kind = None;
        degraded.solver = Some("serial-baseline".to_string());
        degraded.degraded = true;
        let degraded_line = serde_json::to_string(&degraded).unwrap();
        for fingerprint in [false, true] {
            for line in [&expired_line, &exhausted_line, &degraded_line] {
                let (summary, _) = digest_response_line(line, fingerprint);
                outcome.record(summary.as_ref(), Some(5.0));
            }
        }
        assert_eq!(outcome.expired, 4, "both budget-class kinds count");
        assert_eq!(outcome.degraded, 2);
        assert_eq!(outcome.ok, 2, "degraded responses are still served");
        assert_eq!(outcome.errors, 0);
    }

    #[test]
    fn scan_matches_full_parse_on_real_responses() {
        let mut ok = Response::failure(77, "x");
        ok.ok = true;
        ok.error = None;
        ok.error_kind = None;
        ok.solver = Some("suu-c".to_string());
        ok.cache_hit = true;
        for resp in [
            &ok,
            &Response::busy(12),
            &Response::failure(9, "tricky \"ok\":true bait"),
        ] {
            let line = serde_json::to_string(resp).unwrap();
            let scanned = scan_response(&line).expect("responses scan");
            assert_eq!(scanned.id, resp.id, "line: {line}");
            assert_eq!(scanned.ok, resp.ok, "line: {line}");
            assert_eq!(scanned.busy, resp.is_busy(), "line: {line}");
            assert_eq!(scanned.cache_hit, resp.cache_hit, "line: {line}");
        }
    }
}
