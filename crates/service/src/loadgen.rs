//! Load generation: replay workload scenarios against a running service and
//! measure latency and throughput.
//!
//! The generator opens `connections` TCP connections, splits a pre-built
//! request pool across them, optionally paces to a target aggregate request
//! rate, and reports p50/p99 latency plus achieved requests/sec using the
//! statistics substrate from `suu-sim` ([`OnlineStats`] for moments,
//! [`SampleSet`] for order statistics).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;
use suu_sim::{OnlineStats, SampleSet};
use suu_workloads::{
    bursty_multi_tenant_stream, grid_computing_instance, project_management_instance, BurstConfig,
    GridConfig, ProjectConfig,
};

use crate::protocol::{Request, Response};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Address of a running service (`host:port`).
    pub addr: String,
    /// Scenario name: `mixed`, `grid`, `project` or `bursty`.
    pub scenario: String,
    /// Number of concurrent client connections (threads).
    pub connections: usize,
    /// Total number of requests across all connections.
    pub total_requests: usize,
    /// Aggregate target request rate; `None` sends as fast as possible.
    pub target_rps: Option<f64>,
    /// Seed for workload sampling.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".to_string(),
            scenario: "mixed".to_string(),
            connections: 4,
            total_requests: 400,
            target_rps: None,
            seed: 0x10AD,
        }
    }
}

/// Aggregated result of one load-generation run. Flat numeric fields so the
/// report serialises directly into `BENCH_service_throughput.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Scenario that was replayed.
    pub scenario: String,
    /// Client connections used.
    pub connections: usize,
    /// Requests sent.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Error responses (or response parse failures).
    pub errors: u64,
    /// Responses served from the schedule cache.
    pub cache_hits: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
    /// Achieved aggregate request rate.
    pub achieved_rps: f64,
    /// Target rate, if pacing was requested.
    pub target_rps: Option<f64>,
    /// Mean end-to-end latency in microseconds.
    pub mean_micros: f64,
    /// Median end-to-end latency in microseconds.
    pub p50_micros: f64,
    /// 99th-percentile end-to-end latency in microseconds.
    pub p99_micros: f64,
    /// Worst observed latency in microseconds.
    pub max_micros: f64,
}

impl LoadReport {
    /// Renders a compact human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "scenario={} connections={} sent={} ok={} errors={} cache_hits={}\n\
             wall={:.2}s achieved={:.1} req/s (target {})\n\
             latency: mean={:.0}us p50={:.0}us p99={:.0}us max={:.0}us",
            self.scenario,
            self.connections,
            self.sent,
            self.ok,
            self.errors,
            self.cache_hits,
            self.wall_secs,
            self.achieved_rps,
            self.target_rps
                .map_or_else(|| "unbounded".to_string(), |r| format!("{r:.1} req/s")),
            self.mean_micros,
            self.p50_micros,
            self.p99_micros,
            self.max_micros,
        )
    }
}

/// Builds the request pool for a scenario.
///
/// Instances are kept small (serving-sized): the pool repeats a bounded set
/// of distinct instances, which is exactly the shape real serving traffic
/// has and what the schedule cache exploits.
///
/// # Errors
///
/// Returns a message naming the valid scenarios when `scenario` is unknown.
pub fn build_request_pool(
    scenario: &str,
    total_requests: usize,
    seed: u64,
) -> Result<Vec<Request>, String> {
    let instances = match scenario {
        "grid" => (0..4)
            .map(|k| {
                grid_computing_instance(&GridConfig {
                    num_jobs: 8 + 2 * k,
                    num_machines: 4,
                    num_task_roots: 2,
                    seed: seed ^ k as u64,
                    ..GridConfig::default()
                })
            })
            .collect::<Vec<_>>(),
        "project" => (0..4)
            .map(|k| {
                project_management_instance(&ProjectConfig {
                    num_tasks: 8 + 2 * k,
                    num_workers: 4,
                    num_streams: 2,
                    seed: seed ^ (0x100 + k as u64),
                })
            })
            .collect::<Vec<_>>(),
        "bursty" | "mixed" => {
            let mut config = BurstConfig {
                seed,
                ..BurstConfig::default()
            };
            if scenario == "mixed" {
                // Mixed bursts: more tenants, so the stream interleaves all
                // three structural classes within every few requests.
                config.num_tenants = 9;
                config.jobs = (4, 8);
                config.machines = (2, 4);
            }
            let (tenants, stream) = bursty_multi_tenant_stream(&config);
            return Ok((0..total_requests)
                .map(|k| Request::from_instance(k as u64 + 1, &tenants[stream[k % stream.len()]]))
                .collect());
        }
        other => {
            return Err(format!(
                "unknown scenario `{other}`; expected one of: mixed, grid, project, bursty"
            ))
        }
    };
    Ok((0..total_requests)
        .map(|k| Request::from_instance(k as u64 + 1, &instances[k % instances.len()]))
        .collect())
}

struct ThreadOutcome {
    sent: u64,
    ok: u64,
    errors: u64,
    cache_hits: u64,
    latency: OnlineStats,
    samples: SampleSet,
}

/// Runs the load generator against a running service.
///
/// # Errors
///
/// Returns connection errors, a scenario error as `InvalidInput`, or the
/// first worker I/O error.
pub fn run_loadgen(config: &LoadgenConfig) -> std::io::Result<LoadReport> {
    let pool = build_request_pool(&config.scenario, config.total_requests, config.seed)
        .map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg))?;
    let lines: Vec<String> = pool
        .iter()
        .map(|r| serde_json::to_string(r).expect("requests serialise"))
        .collect();
    let connections = config.connections.max(1);
    // Interval between sends on one connection when pacing to the aggregate
    // target rate.
    let per_thread_interval = config
        .target_rps
        .filter(|&rps| rps > 0.0)
        .map(|rps| Duration::from_secs_f64(connections as f64 / rps));

    let lines = Arc::new(lines);
    let outcomes: Arc<Mutex<Vec<ThreadOutcome>>> = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();

    let mut handles = Vec::new();
    for worker in 0..connections {
        let lines = Arc::clone(&lines);
        let outcomes = Arc::clone(&outcomes);
        let addr = config.addr.clone();
        handles.push(std::thread::spawn(move || -> std::io::Result<()> {
            let stream = TcpStream::connect(&addr)?;
            let mut reader = BufReader::new(stream.try_clone()?);
            let mut writer = BufWriter::new(stream);
            let mut outcome = ThreadOutcome {
                sent: 0,
                ok: 0,
                errors: 0,
                cache_hits: 0,
                latency: OnlineStats::new(),
                samples: SampleSet::new(),
            };
            let thread_start = Instant::now();
            // Round-robin partition of the pool across connections.
            for (k, line) in lines
                .iter()
                .enumerate()
                .filter(|(k, _)| k % connections == worker)
                .map(|(k, line)| (k / connections, line))
            {
                if let Some(interval) = per_thread_interval {
                    let due = interval.mul_f64(k as f64);
                    let elapsed = thread_start.elapsed();
                    if due > elapsed {
                        std::thread::sleep(due - elapsed);
                    }
                }
                let sent_at = Instant::now();
                writeln!(writer, "{line}")?;
                writer.flush()?;
                let mut response = String::new();
                reader.read_line(&mut response)?;
                let micros = sent_at.elapsed().as_micros() as f64;
                outcome.sent += 1;
                outcome.latency.push(micros);
                outcome.samples.push(micros);
                match serde_json::from_str::<Response>(&response) {
                    Ok(resp) if resp.ok => {
                        outcome.ok += 1;
                        if resp.cache_hit {
                            outcome.cache_hits += 1;
                        }
                    }
                    _ => outcome.errors += 1,
                }
            }
            outcomes.lock().expect("outcomes poisoned").push(outcome);
            Ok(())
        }));
    }

    let mut first_error: Option<std::io::Error> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(err)) => first_error = first_error.or(Some(err)),
            Err(_) => {
                first_error = first_error
                    .or_else(|| Some(std::io::Error::other("load generator worker panicked")));
            }
        }
    }
    if let Some(err) = first_error {
        return Err(err);
    }

    let wall_secs = start.elapsed().as_secs_f64();
    let mut latency = OnlineStats::new();
    let mut samples = SampleSet::new();
    let (mut sent, mut ok, mut errors, mut cache_hits) = (0, 0, 0, 0);
    for outcome in outcomes.lock().expect("outcomes poisoned").iter() {
        sent += outcome.sent;
        ok += outcome.ok;
        errors += outcome.errors;
        cache_hits += outcome.cache_hits;
        latency.merge(&outcome.latency);
        samples.merge(&outcome.samples);
    }

    Ok(LoadReport {
        scenario: config.scenario.clone(),
        connections,
        sent,
        ok,
        errors,
        cache_hits,
        wall_secs,
        achieved_rps: if wall_secs > 0.0 {
            sent as f64 / wall_secs
        } else {
            0.0
        },
        target_rps: config.target_rps,
        mean_micros: latency.mean(),
        p50_micros: samples.p50().unwrap_or(0.0),
        p99_micros: samples.p99().unwrap_or(0.0),
        max_micros: if latency.count() > 0 {
            latency.max()
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_cover_every_scenario_and_cycle() {
        for scenario in ["mixed", "grid", "project", "bursty"] {
            let pool = build_request_pool(scenario, 25, 1).unwrap();
            assert_eq!(pool.len(), 25, "{scenario}");
            // Ids are 1-based and unique.
            assert_eq!(pool[0].id, 1);
            assert_eq!(pool[24].id, 25);
            // The pool repeats instances (a bounded distinct set).
            let distinct: std::collections::HashSet<u64> = pool
                .iter()
                .map(|r| r.to_instance().unwrap().canonical_digest())
                .collect();
            assert!(distinct.len() < pool.len(), "{scenario} should repeat");
            for req in &pool {
                assert!(req.to_instance().is_ok(), "{scenario} request invalid");
            }
        }
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        assert!(build_request_pool("nope", 10, 1).is_err());
        let config = LoadgenConfig {
            scenario: "nope".to_string(),
            ..LoadgenConfig::default()
        };
        let err = run_loadgen(&config).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn report_renders_and_serialises() {
        let report = LoadReport {
            scenario: "mixed".to_string(),
            connections: 4,
            sent: 100,
            ok: 99,
            errors: 1,
            cache_hits: 80,
            wall_secs: 0.5,
            achieved_rps: 200.0,
            target_rps: Some(150.0),
            mean_micros: 300.0,
            p50_micros: 250.0,
            p99_micros: 900.0,
            max_micros: 1200.0,
        };
        let text = report.render();
        assert!(text.contains("200.0 req/s"));
        assert!(text.contains("p99=900us"));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("achieved_rps"));
    }
}
