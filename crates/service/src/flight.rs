//! Single-flight coalescing of identical concurrent solves.
//!
//! The schedule cache dedupes *sequential* repeats; under concurrency the
//! bursty multi-tenant workload still pays one full LP solve per racing
//! worker, because every worker misses the cache before the first solve
//! lands. The [`SingleFlight`] table closes that gap: the first request for a
//! `(canonical_digest, solver)` key becomes the **leader** and runs the
//! solve, every concurrent duplicate becomes a **follower** and blocks on the
//! leader's slot, and exactly one solver invocation happens per key no
//! matter how many workers race.
//!
//! Correctness of the "exactly one fresh solve" guarantee rests on a lock
//! ordering discipline shared with [`ScheduleCache`](crate::cache): callers
//! consult the cache *while holding the flight-table lock* (see
//! [`SingleFlight::begin`]), and leaders insert into the cache *before*
//! clearing their slot. A follower therefore either observes the slot (and
//! waits) or observes the cache entry (and hits) — there is no window in
//! which it could become a second leader for the same key.
//!
//! Leaders publish failures too, so a follower never re-runs a failing solve
//! concurrently; failures are not cached, so a *later* request retries.
//! A leader that panics mid-solve publishes a synthetic error from its drop
//! guard ([`FlightGuard`]), so followers can never deadlock on an abandoned
//! slot.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::cache::CachedSolve;
use crate::protocol::SolveFailure;

/// Key of one in-flight solve: instance digest, engine variant (see
/// [`SolveOptions::engine_variant`](crate::protocol::SolveOptions::engine_variant))
/// and solver name — the same triple that keys the schedule cache. Options
/// that cannot change the computed artifact (budgets, cache policy, the
/// `detail` projection) deliberately do **not** appear here, so requests
/// differing only in projection still coalesce onto one solve.
pub type FlightKey = (u64, u8, String);

/// One in-flight solve: the leader publishes here, followers wait here.
struct Slot {
    result: Mutex<Option<Result<CachedSolve, SolveFailure>>>,
    published: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            published: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<CachedSolve, SolveFailure>) {
        let mut slot = self.result.lock().expect("flight slot poisoned");
        // First writer wins: the drop-guard fallback must not overwrite a
        // result the leader already published.
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.published.notify_all();
    }

    fn wait(&self) -> Result<CachedSolve, SolveFailure> {
        let mut slot = self.result.lock().expect("flight slot poisoned");
        while slot.is_none() {
            slot = self
                .published
                .wait(slot)
                .expect("flight slot poisoned while waiting");
        }
        slot.clone().expect("loop exits only once published")
    }

    /// Like [`wait`](Self::wait), but gives up at `deadline`: a follower's
    /// own time budget keeps binding while it is parked behind another
    /// request's solve.
    fn wait_until(&self, deadline: std::time::Instant) -> Result<CachedSolve, SolveFailure> {
        let mut slot = self.result.lock().expect("flight slot poisoned");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(SolveFailure {
                    kind: crate::protocol::error_kind::BUDGET_EXHAUSTED,
                    message: "time budget exhausted while waiting on a coalesced solve".to_string(),
                    budget: Some(crate::protocol::BudgetReport::new(0, true)),
                });
            }
            let (guard, _timed_out) = self
                .published
                .wait_timeout(slot, deadline - now)
                .expect("flight slot poisoned while waiting");
            slot = guard;
        }
    }
}

/// Outcome of [`SingleFlight::begin`]: the caller either leads the solve or
/// follows an identical in-flight one.
pub enum Flight<'a> {
    /// No identical solve is running: the caller must solve and then resolve
    /// the guard with [`FlightGuard::publish`].
    Lead(FlightGuard<'a>),
    /// An identical solve is already running; wait on it.
    Follow(FollowHandle),
}

/// A follower's handle on an in-flight solve led by another request.
pub struct FollowHandle(Arc<Slot>);

impl FollowHandle {
    /// Blocks until the leader publishes, then returns a clone of the result.
    ///
    /// # Errors
    ///
    /// Returns the leader's structured failure if the coalesced solve
    /// failed (kind, message and budget post-mortem).
    pub fn wait(&self) -> Result<CachedSolve, SolveFailure> {
        self.0.wait()
    }

    /// Blocks until the leader publishes or `deadline` passes, whichever
    /// comes first.
    ///
    /// # Errors
    ///
    /// The leader's structured failure, or a `budget_exhausted` failure
    /// (`exhausted: "time"`) when the deadline passed while waiting — the
    /// leader's solve keeps running and will still land in the cache.
    pub fn wait_until(
        &self,
        deadline: Option<std::time::Instant>,
    ) -> Result<CachedSolve, SolveFailure> {
        match deadline {
            None => self.0.wait(),
            Some(deadline) => self.0.wait_until(deadline),
        }
    }
}

/// The in-flight solve table.
#[derive(Default)]
pub struct SingleFlight {
    slots: Mutex<HashMap<FlightKey, Arc<Slot>>>,
}

impl SingleFlight {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers interest in `key`, first running `cache_probe` under the
    /// table lock.
    ///
    /// `cache_probe` is the caller's cache lookup; holding the table lock
    /// across it closes the race between a leader finishing (cache insert,
    /// then slot removal) and a follower starting (cache probe, then slot
    /// check): because leaders clear their slot only *after* inserting into
    /// the cache, a probe miss under this lock implies any slot for `key` is
    /// still present.
    ///
    /// Returns the probe's hit if there is one, otherwise whether the caller
    /// leads or follows.
    pub fn begin(
        &self,
        key: FlightKey,
        cache_probe: impl FnOnce() -> Option<CachedSolve>,
    ) -> Result<CachedSolve, Flight<'_>> {
        let mut slots = self.slots.lock().expect("flight table poisoned");
        if let Some(hit) = cache_probe() {
            return Ok(hit);
        }
        if let Some(slot) = slots.get(&key) {
            return Err(Flight::Follow(FollowHandle(Arc::clone(slot))));
        }
        let slot = Arc::new(Slot::new());
        slots.insert(key.clone(), Arc::clone(&slot));
        Err(Flight::Lead(FlightGuard {
            table: self,
            key: Some(key),
            slot,
        }))
    }

    /// Number of solves currently in flight (for tests and introspection).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.slots.lock().expect("flight table poisoned").len()
    }

    fn clear(&self, key: &FlightKey) {
        self.slots
            .lock()
            .expect("flight table poisoned")
            .remove(key);
    }
}

/// Leadership of one in-flight solve. Publish the outcome with
/// [`publish`](Self::publish); dropping without publishing (a panicking
/// leader) publishes a synthetic error so followers cannot hang.
pub struct FlightGuard<'a> {
    table: &'a SingleFlight,
    key: Option<FlightKey>,
    slot: Arc<Slot>,
}

impl FlightGuard<'_> {
    /// Publishes the leader's outcome to every follower and clears the slot.
    ///
    /// The caller must have inserted a successful result into the schedule
    /// cache **before** calling this — see the module docs for why that
    /// ordering is load-bearing.
    pub fn publish(mut self, result: Result<CachedSolve, SolveFailure>) {
        self.resolve(result);
    }

    fn resolve(&mut self, result: Result<CachedSolve, SolveFailure>) {
        if let Some(key) = self.key.take() {
            self.table.clear(&key);
            self.slot.publish(result);
        }
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        // Normal publishes take `self.key`, making this a no-op; reaching
        // here with the key still present means the leader unwound.
        self.resolve(Err(SolveFailure::new(
            crate::protocol::error_kind::SOLVER_ERROR,
            "coalesced solve aborted: leader panicked",
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use suu_core::ObliviousSchedule;

    fn solve(tag: &str) -> CachedSolve {
        CachedSolve::new(
            tag.to_string(),
            ObliviousSchedule::new(2),
            None,
            None,
            None,
            false,
        )
    }

    #[test]
    fn probe_hit_short_circuits() {
        let flight = SingleFlight::new();
        let out = flight.begin((1, 0, "s".into()), || Some(solve("cached")));
        match out {
            Ok(hit) => assert_eq!(hit.solver, "cached"),
            Err(_) => panic!("probe hit must not create a slot"),
        }
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn leader_then_follower_then_cleared() {
        let flight = SingleFlight::new();
        let key: FlightKey = (7, 0, "s".into());
        let guard = match flight.begin(key.clone(), || None) {
            Err(Flight::Lead(guard)) => guard,
            _ => panic!("first caller must lead"),
        };
        assert_eq!(flight.in_flight(), 1);
        let follower = match flight.begin(key.clone(), || None) {
            Err(Flight::Follow(slot)) => slot,
            _ => panic!("second caller must follow"),
        };
        guard.publish(Ok(solve("led")));
        assert_eq!(follower.wait().unwrap().solver, "led");
        assert_eq!(flight.in_flight(), 0, "publishing clears the slot");
        // After the flight lands, a new caller leads again.
        assert!(matches!(flight.begin(key, || None), Err(Flight::Lead(_))));
    }

    #[test]
    fn exactly_one_leader_under_contention() {
        // Mimics the real protocol: the leader fills a shared "cache" before
        // publishing, so threads arriving after the flight lands probe-hit
        // instead of leading a second solve.
        let flight = Arc::new(SingleFlight::new());
        let cache: Arc<Mutex<Option<CachedSolve>>> = Arc::new(Mutex::new(None));
        let leaders = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let flight = Arc::clone(&flight);
                let cache = Arc::clone(&cache);
                let leaders = Arc::clone(&leaders);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let probe = || cache.lock().unwrap().clone();
                    match flight.begin((42, 0, "s".into()), probe) {
                        Ok(hit) => hit.solver,
                        Err(Flight::Lead(guard)) => {
                            leaders.fetch_add(1, Ordering::SeqCst);
                            let solved = solve("winner");
                            *cache.lock().unwrap() = Some(solved.clone());
                            guard.publish(Ok(solved));
                            "winner".to_string()
                        }
                        Err(Flight::Follow(slot)) => slot.wait().unwrap().solver,
                    }
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), "winner");
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn leader_errors_propagate_but_are_not_sticky() {
        let flight = SingleFlight::new();
        let key: FlightKey = (9, 0, "s".into());
        let guard = match flight.begin(key.clone(), || None) {
            Err(Flight::Lead(guard)) => guard,
            _ => panic!("must lead"),
        };
        let follower = match flight.begin(key.clone(), || None) {
            Err(Flight::Follow(slot)) => slot,
            _ => panic!("must follow"),
        };
        guard.publish(Err(SolveFailure::new(
            crate::protocol::error_kind::SOLVER_ERROR,
            "infeasible",
        )));
        assert_eq!(follower.wait().unwrap_err().message, "infeasible");
        // Errors are not cached: the next request leads a fresh attempt.
        assert!(matches!(flight.begin(key, || None), Err(Flight::Lead(_))));
    }

    #[test]
    fn follower_deadline_binds_while_waiting() {
        let flight = SingleFlight::new();
        let key: FlightKey = (13, 0, "s".into());
        let guard = match flight.begin(key.clone(), || None) {
            Err(Flight::Lead(guard)) => guard,
            _ => panic!("must lead"),
        };
        let follower = match flight.begin(key, || None) {
            Err(Flight::Follow(slot)) => slot,
            _ => panic!("must follow"),
        };
        // The leader is still solving: a follower whose deadline passes gives
        // up with a structured time-budget failure.
        let err = follower
            .wait_until(Some(std::time::Instant::now()))
            .unwrap_err();
        assert_eq!(err.kind, crate::protocol::error_kind::BUDGET_EXHAUSTED);
        assert_eq!(err.budget.unwrap().exhausted, "time");
        // The flight itself is unaffected: publishing still serves patient
        // followers.
        guard.publish(Ok(solve("late")));
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn follower_wait_until_returns_published_results() {
        let flight = SingleFlight::new();
        let key: FlightKey = (14, 0, "s".into());
        let guard = match flight.begin(key.clone(), || None) {
            Err(Flight::Lead(guard)) => guard,
            _ => panic!("must lead"),
        };
        let follower = match flight.begin(key, || None) {
            Err(Flight::Follow(slot)) => slot,
            _ => panic!("must follow"),
        };
        guard.publish(Ok(solve("fast")));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        assert_eq!(follower.wait_until(Some(deadline)).unwrap().solver, "fast");
    }

    #[test]
    fn dropped_leader_releases_followers_with_an_error() {
        let flight = SingleFlight::new();
        let key: FlightKey = (11, 0, "s".into());
        let guard = match flight.begin(key.clone(), || None) {
            Err(Flight::Lead(guard)) => guard,
            _ => panic!("must lead"),
        };
        let follower = match flight.begin(key, || None) {
            Err(Flight::Follow(slot)) => slot,
            _ => panic!("must follow"),
        };
        drop(guard); // simulates a panicking leader unwinding
        let err = follower.wait().unwrap_err();
        assert!(err.message.contains("leader panicked"), "err: {:?}", err);
        assert_eq!(flight.in_flight(), 0);
    }
}
