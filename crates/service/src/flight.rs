//! Single-flight coalescing of identical concurrent solves.
//!
//! The schedule cache dedupes *sequential* repeats; under concurrency the
//! bursty multi-tenant workload still pays one full LP solve per racing
//! worker, because every worker misses the cache before the first solve
//! lands. The [`SingleFlight`] table closes that gap: the first request for a
//! `(canonical_digest, solver)` key becomes the **leader** and runs the
//! solve, every concurrent duplicate becomes a **follower** and blocks on the
//! leader's slot, and exactly one solver invocation happens per key no
//! matter how many workers race.
//!
//! Correctness of the "exactly one fresh solve" guarantee rests on a lock
//! ordering discipline shared with [`ScheduleCache`](crate::cache): callers
//! consult the cache *while holding the flight-table lock* (see
//! [`SingleFlight::begin`]), and leaders insert into the cache *before*
//! clearing their slot. A follower therefore either observes the slot (and
//! waits) or observes the cache entry (and hits) — there is no window in
//! which it could become a second leader for the same key.
//!
//! Leaders publish failures too, so a follower never re-runs a failing solve
//! concurrently; failures are not cached, so a *later* request retries.
//! A leader that panics mid-solve publishes a synthetic error from its drop
//! guard ([`FlightGuard`]), so followers can never deadlock on an abandoned
//! slot.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::cache::CachedSolve;

/// Key of one in-flight solve: instance digest plus solver name (the same
/// pair that keys the schedule cache).
pub type FlightKey = (u64, String);

/// One in-flight solve: the leader publishes here, followers wait here.
struct Slot {
    result: Mutex<Option<Result<CachedSolve, String>>>,
    published: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            published: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<CachedSolve, String>) {
        let mut slot = self.result.lock().expect("flight slot poisoned");
        // First writer wins: the drop-guard fallback must not overwrite a
        // result the leader already published.
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.published.notify_all();
    }

    fn wait(&self) -> Result<CachedSolve, String> {
        let mut slot = self.result.lock().expect("flight slot poisoned");
        while slot.is_none() {
            slot = self
                .published
                .wait(slot)
                .expect("flight slot poisoned while waiting");
        }
        slot.clone().expect("loop exits only once published")
    }
}

/// Outcome of [`SingleFlight::begin`]: the caller either leads the solve or
/// follows an identical in-flight one.
pub enum Flight<'a> {
    /// No identical solve is running: the caller must solve and then resolve
    /// the guard with [`FlightGuard::publish`].
    Lead(FlightGuard<'a>),
    /// An identical solve is already running; wait on it.
    Follow(FollowHandle),
}

/// A follower's handle on an in-flight solve led by another request.
pub struct FollowHandle(Arc<Slot>);

impl FollowHandle {
    /// Blocks until the leader publishes, then returns a clone of the result.
    ///
    /// # Errors
    ///
    /// Returns the leader's error message if the coalesced solve failed.
    pub fn wait(&self) -> Result<CachedSolve, String> {
        self.0.wait()
    }
}

/// The in-flight solve table.
#[derive(Default)]
pub struct SingleFlight {
    slots: Mutex<HashMap<FlightKey, Arc<Slot>>>,
}

impl SingleFlight {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers interest in `key`, first running `cache_probe` under the
    /// table lock.
    ///
    /// `cache_probe` is the caller's cache lookup; holding the table lock
    /// across it closes the race between a leader finishing (cache insert,
    /// then slot removal) and a follower starting (cache probe, then slot
    /// check): because leaders clear their slot only *after* inserting into
    /// the cache, a probe miss under this lock implies any slot for `key` is
    /// still present.
    ///
    /// Returns the probe's hit if there is one, otherwise whether the caller
    /// leads or follows.
    pub fn begin(
        &self,
        key: FlightKey,
        cache_probe: impl FnOnce() -> Option<CachedSolve>,
    ) -> Result<CachedSolve, Flight<'_>> {
        let mut slots = self.slots.lock().expect("flight table poisoned");
        if let Some(hit) = cache_probe() {
            return Ok(hit);
        }
        if let Some(slot) = slots.get(&key) {
            return Err(Flight::Follow(FollowHandle(Arc::clone(slot))));
        }
        let slot = Arc::new(Slot::new());
        slots.insert(key.clone(), Arc::clone(&slot));
        Err(Flight::Lead(FlightGuard {
            table: self,
            key: Some(key),
            slot,
        }))
    }

    /// Number of solves currently in flight (for tests and introspection).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.slots.lock().expect("flight table poisoned").len()
    }

    fn clear(&self, key: &FlightKey) {
        self.slots
            .lock()
            .expect("flight table poisoned")
            .remove(key);
    }
}

/// Leadership of one in-flight solve. Publish the outcome with
/// [`publish`](Self::publish); dropping without publishing (a panicking
/// leader) publishes a synthetic error so followers cannot hang.
pub struct FlightGuard<'a> {
    table: &'a SingleFlight,
    key: Option<FlightKey>,
    slot: Arc<Slot>,
}

impl FlightGuard<'_> {
    /// Publishes the leader's outcome to every follower and clears the slot.
    ///
    /// The caller must have inserted a successful result into the schedule
    /// cache **before** calling this — see the module docs for why that
    /// ordering is load-bearing.
    pub fn publish(mut self, result: Result<CachedSolve, String>) {
        self.resolve(result);
    }

    fn resolve(&mut self, result: Result<CachedSolve, String>) {
        if let Some(key) = self.key.take() {
            self.table.clear(&key);
            self.slot.publish(result);
        }
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        // Normal publishes take `self.key`, making this a no-op; reaching
        // here with the key still present means the leader unwound.
        self.resolve(Err("coalesced solve aborted: leader panicked".into()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use suu_core::ObliviousSchedule;

    fn solve(tag: &str) -> CachedSolve {
        CachedSolve::new(tag.to_string(), ObliviousSchedule::new(2), None, None, None)
    }

    #[test]
    fn probe_hit_short_circuits() {
        let flight = SingleFlight::new();
        let out = flight.begin((1, "s".into()), || Some(solve("cached")));
        match out {
            Ok(hit) => assert_eq!(hit.solver, "cached"),
            Err(_) => panic!("probe hit must not create a slot"),
        }
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn leader_then_follower_then_cleared() {
        let flight = SingleFlight::new();
        let key: FlightKey = (7, "s".into());
        let guard = match flight.begin(key.clone(), || None) {
            Err(Flight::Lead(guard)) => guard,
            _ => panic!("first caller must lead"),
        };
        assert_eq!(flight.in_flight(), 1);
        let follower = match flight.begin(key.clone(), || None) {
            Err(Flight::Follow(slot)) => slot,
            _ => panic!("second caller must follow"),
        };
        guard.publish(Ok(solve("led")));
        assert_eq!(follower.wait().unwrap().solver, "led");
        assert_eq!(flight.in_flight(), 0, "publishing clears the slot");
        // After the flight lands, a new caller leads again.
        assert!(matches!(flight.begin(key, || None), Err(Flight::Lead(_))));
    }

    #[test]
    fn exactly_one_leader_under_contention() {
        // Mimics the real protocol: the leader fills a shared "cache" before
        // publishing, so threads arriving after the flight lands probe-hit
        // instead of leading a second solve.
        let flight = Arc::new(SingleFlight::new());
        let cache: Arc<Mutex<Option<CachedSolve>>> = Arc::new(Mutex::new(None));
        let leaders = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let flight = Arc::clone(&flight);
                let cache = Arc::clone(&cache);
                let leaders = Arc::clone(&leaders);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let probe = || cache.lock().unwrap().clone();
                    match flight.begin((42, "s".into()), probe) {
                        Ok(hit) => hit.solver,
                        Err(Flight::Lead(guard)) => {
                            leaders.fetch_add(1, Ordering::SeqCst);
                            let solved = solve("winner");
                            *cache.lock().unwrap() = Some(solved.clone());
                            guard.publish(Ok(solved));
                            "winner".to_string()
                        }
                        Err(Flight::Follow(slot)) => slot.wait().unwrap().solver,
                    }
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), "winner");
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn leader_errors_propagate_but_are_not_sticky() {
        let flight = SingleFlight::new();
        let key: FlightKey = (9, "s".into());
        let guard = match flight.begin(key.clone(), || None) {
            Err(Flight::Lead(guard)) => guard,
            _ => panic!("must lead"),
        };
        let follower = match flight.begin(key.clone(), || None) {
            Err(Flight::Follow(slot)) => slot,
            _ => panic!("must follow"),
        };
        guard.publish(Err("infeasible".into()));
        assert_eq!(follower.wait().unwrap_err(), "infeasible");
        // Errors are not cached: the next request leads a fresh attempt.
        assert!(matches!(flight.begin(key, || None), Err(Flight::Lead(_))));
    }

    #[test]
    fn dropped_leader_releases_followers_with_an_error() {
        let flight = SingleFlight::new();
        let key: FlightKey = (11, "s".into());
        let guard = match flight.begin(key.clone(), || None) {
            Err(Flight::Lead(guard)) => guard,
            _ => panic!("must lead"),
        };
        let follower = match flight.begin(key, || None) {
            Err(Flight::Follow(slot)) => slot,
            _ => panic!("must follow"),
        };
        drop(guard); // simulates a panicking leader unwinding
        let err = follower.wait().unwrap_err();
        assert!(err.contains("leader panicked"), "err: {err}");
        assert_eq!(flight.in_flight(), 0);
    }
}
