//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, over either stdin/stdout or
//! a TCP connection. The request schema (all numbers are plain JSON numbers;
//! optional fields may be omitted or `null`):
//!
//! ```json
//! {"id": 1,
//!  "num_jobs": 2, "num_machines": 2,
//!  "probs": [0.9, 0.1, 0.2, 0.8],
//!  "edges": [[0, 1]],
//!  "solver": null,
//!  "estimate_trials": null}
//! ```
//!
//! `probs` is the row-major `machines × jobs` success-probability matrix and
//! `edges` the precedence edge list. `solver` forces a registered solver by
//! name instead of the structure dispatch; `estimate_trials` asks the service
//! to also Monte-Carlo estimate the schedule's expected makespan. The
//! response mirrors the request `id` and carries the schedule (or an error),
//! the solver that produced it, and whether it came from the cache:
//!
//! ```json
//! {"id": 1, "ok": true, "error": null, "solver": "suu-c",
//!  "cache_hit": false, "schedule": {"num_machines": 2, "steps": [...]},
//!  "schedule_len": 12, "lp_value": 3.5, "estimated_makespan": null,
//!  "service_micros": 184}
//! ```
//!
//! Requests are validated on ingest — dimensions, probability ranges, DAG
//! acyclicity — through the same constructors the rest of the workspace
//! uses, so a malformed request can never reach a solver.
//!
//! # Pipelined execution
//!
//! Since the pipelined executor landed, a connection may have many requests
//! in flight at once and **responses may arrive in any order**: clients must
//! match responses to requests by the echoed `id`, not by position. Error
//! responses additionally carry a machine-readable `error_kind`
//! (see [`error_kind`]); in particular `"busy"` signals that the solve queue
//! was full and the request was rejected by admission control without being
//! executed — the client may retry later.

use serde::{Deserialize, Serialize, Value};
use suu_core::{ObliviousSchedule, SuuInstance};
use suu_graph::Dag;

/// A scheduling request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Request {
    /// Client-chosen id echoed back in the response.
    pub id: u64,
    /// Number of jobs `n`.
    pub num_jobs: usize,
    /// Number of machines `m`.
    pub num_machines: usize,
    /// Row-major `machines × jobs` success-probability matrix.
    pub probs: Vec<f64>,
    /// Precedence edges `(predecessor, successor)`.
    pub edges: Vec<(usize, usize)>,
    /// Force a specific registered solver instead of auto-dispatch.
    pub solver: Option<String>,
    /// Also estimate the expected makespan with this many simulation trials.
    pub estimate_trials: Option<usize>,
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        // Tolerant by hand: `edges`, `solver` and `estimate_trials` may be
        // omitted entirely (the derive would insist on explicit nulls).
        let required = |key: &str| {
            v.get(key)
                .ok_or_else(|| serde::DeError::new(format!("missing field `{key}` in Request")))
        };
        Ok(Self {
            id: u64::from_value(required("id")?)?,
            num_jobs: usize::from_value(required("num_jobs")?)?,
            num_machines: usize::from_value(required("num_machines")?)?,
            probs: Vec::from_value(required("probs")?)?,
            edges: match v.get("edges") {
                None | Some(Value::Null) => Vec::new(),
                Some(edges) => Vec::from_value(edges)?,
            },
            solver: match v.get("solver") {
                None => None,
                Some(s) => Option::from_value(s)?,
            },
            estimate_trials: match v.get("estimate_trials") {
                None => None,
                Some(t) => Option::from_value(t)?,
            },
        })
    }
}

impl Request {
    /// Builds a request from an existing instance.
    #[must_use]
    pub fn from_instance(id: u64, instance: &SuuInstance) -> Self {
        let mut probs = Vec::with_capacity(instance.num_jobs() * instance.num_machines());
        for i in instance.machines() {
            for j in instance.jobs() {
                probs.push(instance.prob(i, j));
            }
        }
        Self {
            id,
            num_jobs: instance.num_jobs(),
            num_machines: instance.num_machines(),
            probs,
            edges: instance.precedence().edges(),
            solver: None,
            estimate_trials: None,
        }
    }

    /// Reconstructs and validates the instance this request describes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the edge list is not a DAG or
    /// the instance fails validation (dimension mismatch, probability out of
    /// range, unschedulable job).
    pub fn to_instance(&self) -> Result<SuuInstance, String> {
        let dag = Dag::from_edges(self.num_jobs, self.edges.iter().copied())
            .map_err(|e| format!("invalid precedence: {e}"))?;
        SuuInstance::new(self.num_jobs, self.num_machines, self.probs.clone(), dag)
            .map_err(|e| format!("invalid instance: {e}"))
    }
}

/// Machine-readable error categories carried in [`Response::error_kind`].
///
/// The human-readable `error` message is free-form; `error_kind` is the
/// stable contract automation should branch on.
pub mod error_kind {
    /// The request line was not parseable as a request (bad JSON, missing or
    /// mistyped fields, line over the byte limit).
    pub const BAD_REQUEST: &str = "bad_request";
    /// The request parsed but described an invalid or unsupported instance
    /// (cycle, probability out of range, oversized, unknown solver).
    pub const INVALID_REQUEST: &str = "invalid_request";
    /// Admission control rejected the request because the shared solve queue
    /// was full. The request was **not** executed; clients may retry.
    pub const BUSY: &str = "busy";
    /// A solver accepted the instance but failed while solving it.
    pub const SOLVER_ERROR: &str = "solver_error";
}

/// A scheduling response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id (0 when the request line could not be parsed).
    pub id: u64,
    /// Whether a schedule was produced.
    pub ok: bool,
    /// Error message when `ok` is false.
    pub error: Option<String>,
    /// Machine-readable error category when `ok` is false (see
    /// [`error_kind`]); `"busy"` means admission control rejected the
    /// request without executing it.
    pub error_kind: Option<String>,
    /// Name of the solver that produced the schedule.
    pub solver: Option<String>,
    /// Whether the schedule was served from the cache.
    pub cache_hit: bool,
    /// The oblivious schedule (execute cyclically).
    pub schedule: Option<ObliviousSchedule>,
    /// Length of the schedule in steps.
    pub schedule_len: usize,
    /// LP optimum backing the schedule, for LP-based solvers.
    pub lp_value: Option<f64>,
    /// Simplex pivots spent by the LP engine when this schedule was computed
    /// (cache hits repeat the original solve's count), for LP-based solvers.
    pub lp_pivots: Option<usize>,
    /// Wall-clock microseconds the LP engine spent when this schedule was
    /// computed, for LP-based solvers.
    pub lp_micros: Option<u64>,
    /// Monte-Carlo estimate of the expected makespan, when requested.
    pub estimated_makespan: Option<f64>,
    /// Service-side handling time in microseconds.
    pub service_micros: u64,
}

impl Response {
    /// An error response for `id` with an explicit [`error_kind`] category.
    #[must_use]
    pub fn failure_with(id: u64, kind: &str, error: impl Into<String>) -> Self {
        Self {
            id,
            ok: false,
            error: Some(error.into()),
            error_kind: Some(kind.to_string()),
            solver: None,
            cache_hit: false,
            schedule: None,
            schedule_len: 0,
            lp_value: None,
            lp_pivots: None,
            lp_micros: None,
            estimated_makespan: None,
            service_micros: 0,
        }
    }

    /// An error response for `id` (category defaults to
    /// [`error_kind::INVALID_REQUEST`]).
    #[must_use]
    pub fn failure(id: u64, error: impl Into<String>) -> Self {
        Self::failure_with(id, error_kind::INVALID_REQUEST, error)
    }

    /// The admission-control rejection: the solve queue was full and the
    /// request was dropped without being executed.
    #[must_use]
    pub fn busy(id: u64) -> Self {
        Self::failure_with(
            id,
            error_kind::BUSY,
            "service busy: the solve queue is full; retry later",
        )
    }

    /// Whether this is an admission-control `busy` rejection.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.error_kind.as_deref() == Some(error_kind::BUSY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::InstanceBuilder;
    use suu_workloads::uniform_matrix;

    fn chain_instance() -> SuuInstance {
        InstanceBuilder::new(3, 2)
            .probability_matrix(uniform_matrix(3, 2, 0.2, 0.9, 3))
            .chains(&[vec![0, 1, 2]])
            .build()
            .unwrap()
    }

    #[test]
    fn request_roundtrips_through_instance_and_json() {
        let inst = chain_instance();
        let req = Request::from_instance(42, &inst);
        let back = req.to_instance().unwrap();
        assert_eq!(inst, back);

        let json = serde_json::to_string(&req).unwrap();
        let parsed: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(req, parsed);
        assert_eq!(parsed.to_instance().unwrap(), inst);
    }

    #[test]
    fn request_tolerates_omitted_optional_fields() {
        let json = r#"{"id": 7, "num_jobs": 2, "num_machines": 1, "probs": [0.5, 0.5]}"#;
        let req: Request = serde_json::from_str(json).unwrap();
        assert_eq!(req.id, 7);
        assert!(req.edges.is_empty());
        assert!(req.solver.is_none());
        assert!(req.estimate_trials.is_none());
        assert!(req.to_instance().unwrap().is_independent());
    }

    #[test]
    fn request_rejects_missing_required_fields() {
        let json = r#"{"id": 7, "num_jobs": 2, "num_machines": 1}"#;
        assert!(serde_json::from_str::<Request>(json).is_err());
    }

    #[test]
    fn to_instance_rejects_cycles_and_bad_probabilities() {
        let cyclic = Request {
            id: 1,
            num_jobs: 2,
            num_machines: 1,
            probs: vec![0.5, 0.5],
            edges: vec![(0, 1), (1, 0)],
            solver: None,
            estimate_trials: None,
        };
        assert!(cyclic.to_instance().unwrap_err().contains("precedence"));

        let out_of_range = Request {
            id: 2,
            num_jobs: 1,
            num_machines: 1,
            probs: vec![1.5],
            edges: Vec::new(),
            solver: None,
            estimate_trials: None,
        };
        assert!(out_of_range.to_instance().unwrap_err().contains("instance"));
    }

    #[test]
    fn response_roundtrips_through_json() {
        let resp = Response {
            id: 9,
            ok: true,
            error: None,
            error_kind: None,
            solver: Some("suu-c".to_string()),
            cache_hit: true,
            schedule: Some(ObliviousSchedule::new(2)),
            schedule_len: 0,
            lp_value: Some(3.25),
            lp_pivots: Some(42),
            lp_micros: Some(180),
            estimated_makespan: None,
            service_micros: 12,
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"cache_hit\":true") || json.contains("\"cache_hit\": true"));
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn failure_response_carries_the_message() {
        let resp = Response::failure(3, "boom");
        assert!(!resp.ok);
        assert_eq!(resp.error.as_deref(), Some("boom"));
        assert_eq!(
            resp.error_kind.as_deref(),
            Some(error_kind::INVALID_REQUEST)
        );
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back.error.as_deref(), Some("boom"));
        assert_eq!(back.error_kind, resp.error_kind);
    }

    #[test]
    fn busy_response_is_structured() {
        let resp = Response::busy(17);
        assert!(!resp.ok);
        assert!(resp.is_busy());
        assert_eq!(resp.id, 17);
        assert_eq!(resp.error_kind.as_deref(), Some(error_kind::BUSY));
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"error_kind\":\"busy\""), "json: {json}");
        let back: Response = serde_json::from_str(&json).unwrap();
        assert!(back.is_busy());
        assert!(!Response::failure(17, "other").is_busy());
    }
}
