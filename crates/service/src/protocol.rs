//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, over either stdin/stdout or
//! a TCP connection. The request schema (all numbers are plain JSON numbers;
//! optional fields may be omitted or `null`):
//!
//! ```json
//! {"id": 1,
//!  "num_jobs": 2, "num_machines": 2,
//!  "probs": [0.9, 0.1, 0.2, 0.8],
//!  "edges": [[0, 1]],
//!  "solver": null,
//!  "estimate_trials": null}
//! ```
//!
//! `probs` is the row-major `machines × jobs` success-probability matrix and
//! `edges` the precedence edge list. `solver` forces a registered solver by
//! name instead of the structure dispatch; `estimate_trials` asks the service
//! to also Monte-Carlo estimate the schedule's expected makespan. The
//! response mirrors the request `id` and carries the schedule (or an error),
//! the solver that produced it, and whether it came from the cache:
//!
//! ```json
//! {"id": 1, "ok": true, "error": null, "solver": "suu-c",
//!  "cache_hit": false, "schedule": {"num_machines": 2, "steps": [...]},
//!  "schedule_len": 12, "lp_value": 3.5, "estimated_makespan": null,
//!  "service_micros": 184}
//! ```
//!
//! Requests are validated on ingest — dimensions, probability ranges, DAG
//! acyclicity — through the same constructors the rest of the workspace
//! uses, so a malformed request can never reach a solver.
//!
//! # Protocol v2: solve options
//!
//! A request may carry an `options` object putting per-request resource
//! bounds and response shaping on the wire:
//!
//! ```json
//! {"id": 9, "num_jobs": 2, "num_machines": 1, "probs": [0.5, 0.5],
//!  "options": {"engine": "revised", "max_pivots": 5000,
//!              "time_budget_ms": 50, "deadline_ms": 1800000000000,
//!              "cache": "default", "detail": "no_schedule"}}
//! ```
//!
//! Every field is optional and an absent `options` object means exactly the
//! v1 behaviour — v1 request lines produce byte-identical responses (pinned
//! by the golden corpus in `tests/v1_golden.rs`). `engine` overrides the LP
//! engine, `max_pivots` bounds simplex work, `time_budget_ms` is a relative
//! budget starting when the service accepts the request (queueing time
//! counts), `deadline_ms` is an absolute Unix-epoch-milliseconds deadline;
//! the effective deadline is the earlier of the two. `cache` selects the
//! cache interaction ([`CachePolicy`]) and `detail` the response projection
//! ([`Detail`]).
//!
//! Budget outcomes are structured: a request that expires before a solver
//! thread picks it up is answered `error_kind: "deadline_exceeded"` without
//! burning any solver time, and a solve whose budget runs out mid-pipeline
//! either degrades to the serial-baseline solver (`"degraded": true`, with a
//! `budget` object describing what ran out) or — when the solver was forced —
//! fails with `error_kind: "budget_exhausted"`. The `degraded` and `budget`
//! response fields are **omitted** (not `null`) on every other response, so
//! v1 clients never see them.
//!
//! # Pipelined execution
//!
//! Since the pipelined executor landed, a connection may have many requests
//! in flight at once and **responses may arrive in any order**: clients must
//! match responses to requests by the echoed `id`, not by position. Error
//! responses additionally carry a machine-readable `error_kind`
//! (see [`error_kind`]); in particular `"busy"` signals that the solve queue
//! was full and the request was rejected by admission control without being
//! executed — the client may retry later.
//!
//! # Observability: per-response traces and the `stats` verb
//!
//! Both additions are strictly opt-in and backwards compatible — v1 request
//! lines keep producing byte-identical responses.
//!
//! A request with `options: {"trace": true}` gets a `trace` object appended
//! to its response (omitted, never `null`, otherwise):
//!
//! ```json
//! {"id": 5, "ok": true, ..., "service_micros": 240,
//!  "trace": {"queue_us": 12, "solve_us": 190, "render_us": 3,
//!            "flush_us": 8, "cache": "miss", "lp_pivots": 44}}
//! ```
//!
//! `queue_us` is time spent in the solve queue (0 on the serial transports,
//! which have no queue), `solve_us` covers cache lookup + single-flight +
//! solving, `render_us` the response serialisation, and `flush_us` the most
//! recent write-side flush of the connection. `cache` reports how the
//! schedule was obtained: `"hit"`, `"miss"` (fresh solve) or `"coalesced"`
//! (waited on an identical in-flight solve). Tracing never forks the cache
//! key — a traced and an untraced request share cached schedules.
//!
//! A line of the form `{"id": 3, "verb": "stats"}` is answered (and not
//! counted as a scheduling request) with a full metrics snapshot:
//! `{"id": 3, "ok": true, "stats": {...}}` carrying uptime, request/error
//! counters, per-stage latency histograms (log-bucketed `[lower_bound,
//! count]` pairs plus `count`/`sum`/`mean`/`p50`/`p90`/`p99`/`p999`),
//! per-solver counts, solve-queue depth/capacity, per-shard cache
//! occupancy/hit/miss/eviction counters and the single-flight table size.
//! Unknown verbs are answered `error_kind: "bad_request"`.
//!
//! # Protocol v2: deltas against a cached base
//!
//! A client that already submitted an instance can describe the next request
//! as a small **edit** of it instead of resending the full probability
//! matrix. The request carries `base_digest` — the canonical digest echoed
//! by the service for the base instance (16 lowercase hex characters) — plus
//! a `delta` object, and omits `num_jobs`/`num_machines`/`probs`/`edges`:
//!
//! ```json
//! {"id": 12, "base_digest": "91f4c3a07b5e2d18",
//!  "delta": {"set_prob": [[0, 2, 0.75]]},
//!  "options": {"engine": "revised", "trace": true}}
//! ```
//!
//! The service resolves the digest against its schedule cache, applies the
//! delta through the same validating constructors as a full payload, and
//! solves the resulting child instance — caching, coalescing and warm
//! starts all key on the **post-application** digest, so a delta request
//! and the equivalent full payload share everything. Two structured
//! failures exist: `error_kind: "unknown_base"` when the digest is not (or
//! no longer) cached — the client falls back to resubmitting the full
//! instance on the same connection — and `error_kind: "invalid_delta"` when
//! the edit itself is malformed (unknown job, probability out of range,
//! edge that would create a cycle). Neither failure tears down the
//! connection. Full-payload requests may also carry a `delta` (applied to
//! the inline instance before solving); `base_digest` without a cached
//! parent never silently cold-solves.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use serde::{DeError, Deserialize, Serialize, Value};
use suu_core::{InstanceDelta, ObliviousSchedule, SuuInstance};
use suu_graph::Dag;
use suu_lp::Engine;

/// Which LP engine override the client requested.
///
/// `Auto` is explicit "pick by problem size" — identical to omitting the
/// field, and deliberately sharing its cache key: the choice is deterministic
/// per instance, so the produced schedule is the same. `Dense` and `Revised`
/// can reach *different* optimal vertices, so each gets its own cache
/// variant (see [`SolveOptions::engine_variant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Pick by problem size (the default).
    Auto,
    /// Force the dense tableau.
    Dense,
    /// Force the revised simplex.
    Revised,
}

impl EngineChoice {
    fn as_wire(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Dense => "dense",
            Self::Revised => "revised",
        }
    }

    fn from_wire(s: &str) -> Result<Self, DeError> {
        match s {
            "auto" => Ok(Self::Auto),
            "dense" => Ok(Self::Dense),
            "revised" => Ok(Self::Revised),
            other => Err(DeError::new(format!(
                "unknown engine `{other}`; expected auto, dense or revised"
            ))),
        }
    }
}

/// How a request interacts with the schedule cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Normal operation: consult the cache, insert fresh solves, coalesce
    /// identical concurrent requests.
    #[default]
    Default,
    /// Ignore the cache entirely: always solve fresh, never insert, never
    /// coalesce. For measurements and debugging.
    Bypass,
    /// Solve fresh and (re)insert the result, replacing any cached entry.
    Refresh,
}

impl CachePolicy {
    fn as_wire(self) -> &'static str {
        match self {
            Self::Default => "default",
            Self::Bypass => "bypass",
            Self::Refresh => "refresh",
        }
    }

    fn from_wire(s: &str) -> Result<Self, DeError> {
        match s {
            "default" => Ok(Self::Default),
            "bypass" => Ok(Self::Bypass),
            "refresh" => Ok(Self::Refresh),
            other => Err(DeError::new(format!(
                "unknown cache policy `{other}`; expected default, bypass or refresh"
            ))),
        }
    }
}

/// Response projection: how much of the solve result the response carries.
///
/// Projection is presentation only — it never changes what is solved or
/// cached, and therefore **must not** fork the cache or single-flight key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Detail {
    /// The whole response including the schedule body (v1 behaviour).
    #[default]
    Full,
    /// Drop the (potentially multi-kilobyte) `schedule` tree; keep
    /// `schedule_len` and the LP diagnostics. For clients that only steer
    /// on diagnostics, this shrinks the response by an order of magnitude.
    NoSchedule,
    /// Keep only the envelope and `estimated_makespan` (plus
    /// `schedule_len`); drops the schedule and the LP diagnostics.
    EstimateOnly,
}

impl Detail {
    fn as_wire(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::NoSchedule => "no_schedule",
            Self::EstimateOnly => "estimate_only",
        }
    }

    fn from_wire(s: &str) -> Result<Self, DeError> {
        match s {
            "full" => Ok(Self::Full),
            "no_schedule" => Ok(Self::NoSchedule),
            "estimate_only" => Ok(Self::EstimateOnly),
            other => Err(DeError::new(format!(
                "unknown detail `{other}`; expected full, no_schedule or estimate_only"
            ))),
        }
    }
}

/// The v2 per-request solve options. Every field is optional; an absent (or
/// empty) options object reproduces v1 behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveOptions {
    /// LP engine override.
    pub engine: Option<EngineChoice>,
    /// Simplex pivot budget across the whole pipeline (summed over forest
    /// blocks). Exhaustion yields `budget_exhausted` or a degraded fallback.
    pub max_pivots: Option<u64>,
    /// Relative wall-clock budget in milliseconds, measured from the moment
    /// the service accepts the request — time spent queued counts.
    pub time_budget_ms: Option<u64>,
    /// Absolute deadline in Unix-epoch milliseconds. A request whose
    /// deadline passes while it is still queued is dropped at dequeue with
    /// `deadline_exceeded` instead of occupying a solver thread.
    pub deadline_ms: Option<u64>,
    /// Cache interaction policy.
    pub cache: Option<CachePolicy>,
    /// Response projection.
    pub detail: Option<Detail>,
    /// Request per-stage lifecycle timings echoed on the response (the
    /// `trace` object). Presentation only: tracing **must not** fork the
    /// cache or single-flight key.
    pub trace: bool,
}

impl SolveOptions {
    /// Whether every field is absent (the v1 degenerate case).
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }

    /// The effective response projection.
    #[must_use]
    pub fn detail(&self) -> Detail {
        self.detail.unwrap_or_default()
    }

    /// The effective cache policy.
    #[must_use]
    pub fn cache_policy(&self) -> CachePolicy {
        self.cache.unwrap_or_default()
    }

    /// The LP engine the solve should run.
    #[must_use]
    pub fn engine(&self) -> Engine {
        match self.engine {
            None | Some(EngineChoice::Auto) => Engine::Auto,
            Some(EngineChoice::Dense) => Engine::Dense,
            Some(EngineChoice::Revised) => Engine::Revised,
        }
    }

    /// The cache-key variant this request solves under. Only options that can
    /// change the *computed artifact* fork the key: a forced engine can reach
    /// a different optimal vertex, so `Dense` and `Revised` get their own
    /// variants, while budgets (which either leave the deterministic pivot
    /// sequence untouched or abort without caching anything), cache policy
    /// and the `detail` projection map to the same variant as a v1 request.
    #[must_use]
    pub fn engine_variant(&self) -> u8 {
        match self.engine {
            None | Some(EngineChoice::Auto) => 0,
            Some(EngineChoice::Dense) => 1,
            Some(EngineChoice::Revised) => 2,
        }
    }

    /// The effective absolute deadline: the earlier of `deadline_ms`
    /// (absolute epoch) and `accepted_at + time_budget_ms`. An absolute
    /// deadline already in the past maps to `accepted_at`, i.e. immediately
    /// expired.
    #[must_use]
    pub fn effective_deadline(&self, accepted_at: Instant) -> Option<Instant> {
        let from_budget = self
            .time_budget_ms
            .map(|ms| accepted_at + Duration::from_millis(ms));
        let from_absolute = self
            .deadline_ms
            .map(|ms| epoch_ms_to_instant(ms, accepted_at));
        match (from_budget, from_absolute) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (one, other) => one.or(other),
        }
    }
}

impl Serialize for SolveOptions {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        if let Some(engine) = self.engine {
            fields.push(("engine".to_string(), engine.as_wire().to_value()));
        }
        if let Some(max_pivots) = self.max_pivots {
            fields.push(("max_pivots".to_string(), max_pivots.to_value()));
        }
        if let Some(ms) = self.time_budget_ms {
            fields.push(("time_budget_ms".to_string(), ms.to_value()));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), ms.to_value()));
        }
        if let Some(cache) = self.cache {
            fields.push(("cache".to_string(), cache.as_wire().to_value()));
        }
        if let Some(detail) = self.detail {
            fields.push(("detail".to_string(), detail.as_wire().to_value()));
        }
        if self.trace {
            fields.push(("trace".to_string(), true.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for SolveOptions {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Object(_)) {
            return Err(DeError::expected("options object", v));
        }
        let opt_u64 = |key: &str| -> Result<Option<u64>, DeError> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(n) => u64::from_value(n).map(Some),
            }
        };
        let opt_str = |key: &str| -> Result<Option<String>, DeError> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(s) => String::from_value(s).map(Some),
            }
        };
        Ok(Self {
            engine: opt_str("engine")?
                .map(|s| EngineChoice::from_wire(&s))
                .transpose()?,
            max_pivots: opt_u64("max_pivots")?,
            time_budget_ms: opt_u64("time_budget_ms")?,
            deadline_ms: opt_u64("deadline_ms")?,
            cache: opt_str("cache")?
                .map(|s| CachePolicy::from_wire(&s))
                .transpose()?,
            detail: opt_str("detail")?
                .map(|s| Detail::from_wire(&s))
                .transpose()?,
            trace: match v.get("trace") {
                None | Some(Value::Null) => false,
                Some(b) => bool::from_value(b)?,
            },
        })
    }
}

/// Converts an absolute Unix-epoch-milliseconds deadline to an `Instant`.
/// Deadlines already in the past map to `accepted_at` (every later
/// `Instant::now()` compares `>=`, i.e. expired).
fn epoch_ms_to_instant(deadline_ms: u64, accepted_at: Instant) -> Instant {
    let now_epoch_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis();
    let deadline_ms = u128::from(deadline_ms);
    if deadline_ms <= now_epoch_ms {
        accepted_at
    } else {
        Instant::now() + Duration::from_millis((deadline_ms - now_epoch_ms) as u64)
    }
}

/// Best-effort scan of a request line for its `id` field, used to echo ids
/// on `bad_request` and `busy` responses when the line never parsed.
/// Returns 0 when no well-formed non-negative integer id can be found — the
/// same id the full parser historically reported for unparseable requests.
#[must_use]
pub fn scan_request_id(line: &str) -> u64 {
    scan_u64_field(line, "\"id\":").unwrap_or(0)
}

/// Best-effort scan for the effective deadline of a raw (unparsed) request
/// line, combining `time_budget_ms` and `deadline_ms` exactly like
/// [`SolveOptions::effective_deadline`]. Used by the pipelined executor to
/// drop expired jobs at dequeue without paying for a parse; a line the scan
/// misses (exotic formatting) is simply checked again after parsing.
///
/// The scan is scoped to the *body of the options object* — the only place
/// the parser reads these fields from — so a stray top-level
/// `time_budget_ms` (which the tolerant parser ignores), wherever it sits on
/// the line, cannot falsely expire a valid request. The object body is
/// located by matching `"options"` as a key (`"options"` followed by `:` and
/// `{`; a string *value* `"options"` is followed by `,`/`}` and is skipped)
/// and walking to its matching close brace with string literals skipped.
#[must_use]
pub fn scan_deadline(line: &str, accepted_at: Instant) -> Option<Instant> {
    let scope = scan_options_body(line)?;
    let probe = SolveOptions {
        time_budget_ms: scan_u64_field(scope, "\"time_budget_ms\":"),
        deadline_ms: scan_u64_field(scope, "\"deadline_ms\":"),
        ..SolveOptions::default()
    };
    probe.effective_deadline(accepted_at)
}

/// Locates the body of the `"options": {...}` object in a raw request line
/// (best effort): the first `"options"` occurrence that is followed by a
/// colon and an opening brace, up to the brace that closes it (depth-counted
/// with string literals skipped). `None` when no such object exists or the
/// line is truncated mid-object.
fn scan_options_body(line: &str) -> Option<&str> {
    for (at, _) in line.match_indices("\"options\"") {
        let after_key = line[at + "\"options\"".len()..].trim_start();
        let Some(after_colon) = after_key.strip_prefix(':') else {
            continue; // a string *value* "options", not a key
        };
        let body = after_colon.trim_start();
        if !body.starts_with('{') {
            continue;
        }
        let bytes = body.as_bytes();
        let mut depth = 0usize;
        let mut in_string = false;
        let mut escaped = false;
        for (k, &b) in bytes.iter().enumerate() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    in_string = false;
                }
                continue;
            }
            match b {
                b'"' => in_string = true,
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&body[..=k]);
                    }
                }
                _ => {}
            }
        }
        return None; // unterminated object: let the full parser reject it
    }
    None
}

/// Scans `line` for `key` (pass the quoted key plus colon, e.g.
/// `"\"queue_us\":"`) and parses the non-negative integer that follows
/// (whitespace tolerated). Returns `None` when absent or malformed. Used by
/// the executor's deadline scan and by the load generator to scrape trace
/// fields without a full JSON parse.
#[must_use]
pub fn scan_u64_field(line: &str, key: &str) -> Option<u64> {
    let at = line.find(key)?;
    let rest = line[at + key.len()..].trim_start();
    let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
    if digits == 0 {
        return None;
    }
    rest[..digits].parse().ok()
}

/// Renders an instance digest in its wire form: 16 lowercase hex characters.
#[must_use]
pub fn digest_to_wire(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Parses a wire-form digest (exactly 16 lowercase hex characters).
/// Strict on purpose: the wire form is what the service itself emits, so
/// anything else is a client bug worth surfacing, not normalising.
#[must_use]
pub fn digest_from_wire(s: &str) -> Option<u64> {
    if s.len() != 16
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// A scheduling request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id echoed back in the response.
    pub id: u64,
    /// Number of jobs `n` (0 on a delta request, which carries no payload).
    pub num_jobs: usize,
    /// Number of machines `m` (0 on a delta request).
    pub num_machines: usize,
    /// Row-major `machines × jobs` success-probability matrix (empty on a
    /// delta request).
    pub probs: Vec<f64>,
    /// Precedence edges `(predecessor, successor)`.
    pub edges: Vec<(usize, usize)>,
    /// Force a specific registered solver instead of auto-dispatch.
    pub solver: Option<String>,
    /// Also estimate the expected makespan with this many simulation trials.
    pub estimate_trials: Option<usize>,
    /// v2 solve options; `None` (the v1 case) behaves exactly like an empty
    /// options object.
    pub options: Option<SolveOptions>,
    /// Wire-form canonical digest of a previously solved base instance. When
    /// present the payload fields (`num_jobs`/`num_machines`/`probs`/`edges`)
    /// may be omitted: the service resolves the base from its cache and
    /// applies `delta` to it. Unknown digests fail with `unknown_base`.
    pub base_digest: Option<String>,
    /// Edit applied to the base (or, without `base_digest`, to the inline
    /// payload instance) before solving.
    pub delta: Option<InstanceDelta>,
}

impl Serialize for Request {
    // Hand-written so the canonical rendering of an options-free request is
    // byte-identical to v1: the `options` key is omitted, not null. A delta
    // request (base_digest set) drops the payload fields entirely — small
    // payloads are the point.
    fn to_value(&self) -> Value {
        let mut fields = vec![("id".to_string(), self.id.to_value())];
        if let Some(digest) = &self.base_digest {
            fields.push(("base_digest".to_string(), digest.to_value()));
            if self.solver.is_some() {
                fields.push(("solver".to_string(), self.solver.to_value()));
            }
            if self.estimate_trials.is_some() {
                fields.push((
                    "estimate_trials".to_string(),
                    self.estimate_trials.to_value(),
                ));
            }
        } else {
            fields.extend([
                ("num_jobs".to_string(), self.num_jobs.to_value()),
                ("num_machines".to_string(), self.num_machines.to_value()),
                ("probs".to_string(), self.probs.to_value()),
                ("edges".to_string(), self.edges.to_value()),
                ("solver".to_string(), self.solver.to_value()),
                (
                    "estimate_trials".to_string(),
                    self.estimate_trials.to_value(),
                ),
            ]);
        }
        if let Some(delta) = &self.delta {
            fields.push(("delta".to_string(), delta.to_value()));
        }
        if let Some(options) = &self.options {
            fields.push(("options".to_string(), options.to_value()));
        }
        Value::Object(fields)
    }
}

impl Request {
    /// The request's solve options (an absent object means all defaults).
    #[must_use]
    pub fn solve_options(&self) -> SolveOptions {
        self.options.unwrap_or_default()
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        // Tolerant by hand: `edges`, `solver` and `estimate_trials` may be
        // omitted entirely (the derive would insist on explicit nulls). The
        // payload fields stay required — with their historical v1 error
        // messages — unless the request names a cached base via
        // `base_digest`, in which case they may be omitted too.
        let required = |key: &str| {
            v.get(key)
                .ok_or_else(|| serde::DeError::new(format!("missing field `{key}` in Request")))
        };
        let base_digest = match v.get("base_digest") {
            None | Some(Value::Null) => None,
            Some(s) => Some(String::from_value(s)?),
        };
        let is_delta = base_digest.is_some();
        let payload_u64 = |key: &str| -> Result<usize, serde::DeError> {
            match v.get(key) {
                None | Some(Value::Null) if is_delta => Ok(0),
                _ => usize::from_value(required(key)?),
            }
        };
        Ok(Self {
            id: u64::from_value(required("id")?)?,
            num_jobs: payload_u64("num_jobs")?,
            num_machines: payload_u64("num_machines")?,
            probs: match v.get("probs") {
                None | Some(Value::Null) if is_delta => Vec::new(),
                _ => Vec::from_value(required("probs")?)?,
            },
            edges: match v.get("edges") {
                None | Some(Value::Null) => Vec::new(),
                Some(edges) => Vec::from_value(edges)?,
            },
            solver: match v.get("solver") {
                None => None,
                Some(s) => Option::from_value(s)?,
            },
            estimate_trials: match v.get("estimate_trials") {
                None => None,
                Some(t) => Option::from_value(t)?,
            },
            options: match v.get("options") {
                None | Some(Value::Null) => None,
                Some(o) => Some(SolveOptions::from_value(o)?),
            },
            base_digest,
            delta: match v.get("delta") {
                None | Some(Value::Null) => None,
                Some(d) => Some(InstanceDelta::from_value(d)?),
            },
        })
    }
}

impl Request {
    /// Builds a request from an existing instance.
    #[must_use]
    pub fn from_instance(id: u64, instance: &SuuInstance) -> Self {
        let mut probs = Vec::with_capacity(instance.num_jobs() * instance.num_machines());
        for i in instance.machines() {
            for j in instance.jobs() {
                probs.push(instance.prob(i, j));
            }
        }
        Self {
            id,
            num_jobs: instance.num_jobs(),
            num_machines: instance.num_machines(),
            probs,
            edges: instance.precedence().edges(),
            solver: None,
            estimate_trials: None,
            options: None,
            base_digest: None,
            delta: None,
        }
    }

    /// Builds a delta request: no payload, just a reference to a cached base
    /// plus the edit to apply to it.
    #[must_use]
    pub fn from_delta(id: u64, base_digest: u64, delta: InstanceDelta) -> Self {
        Self {
            id,
            num_jobs: 0,
            num_machines: 0,
            probs: Vec::new(),
            edges: Vec::new(),
            solver: None,
            estimate_trials: None,
            options: None,
            base_digest: Some(digest_to_wire(base_digest)),
            delta: Some(delta),
        }
    }

    /// Reconstructs and validates the instance this request describes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the edge list is not a DAG or
    /// the instance fails validation (dimension mismatch, probability out of
    /// range, unschedulable job).
    pub fn to_instance(&self) -> Result<SuuInstance, String> {
        let dag = Dag::from_edges(self.num_jobs, self.edges.iter().copied())
            .map_err(|e| format!("invalid precedence: {e}"))?;
        SuuInstance::new(self.num_jobs, self.num_machines, self.probs.clone(), dag)
            .map_err(|e| format!("invalid instance: {e}"))
    }
}

/// Machine-readable error categories carried in [`Response::error_kind`].
///
/// The human-readable `error` message is free-form; `error_kind` is the
/// stable contract automation should branch on.
pub mod error_kind {
    /// The request line was not parseable as a request (bad JSON, missing or
    /// mistyped fields, line over the byte limit).
    pub const BAD_REQUEST: &str = "bad_request";
    /// The request parsed but described an invalid or unsupported instance
    /// (cycle, probability out of range, oversized, unknown solver).
    pub const INVALID_REQUEST: &str = "invalid_request";
    /// Admission control rejected the request because the shared solve queue
    /// was full. The request was **not** executed; clients may retry.
    pub const BUSY: &str = "busy";
    /// A solver accepted the instance but failed while solving it.
    pub const SOLVER_ERROR: &str = "solver_error";
    /// The request's effective deadline (`time_budget_ms` / `deadline_ms`)
    /// passed before any solving started — typically while the job sat in
    /// the solve queue. No solver time was spent; see the service's
    /// `expired_dropped` metric.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// A per-request resource budget (pivots or wall-clock) ran out
    /// mid-solve and no degraded fallback was possible (e.g. the solver was
    /// forced). The `budget` response field says which limit tripped.
    pub const BUDGET_EXHAUSTED: &str = "budget_exhausted";
    /// A delta request named a `base_digest` the service does not have
    /// cached (never seen, or evicted). The delta was **not** applied and
    /// nothing was solved; the client should fall back to resubmitting the
    /// full instance — the connection survives.
    pub const UNKNOWN_BASE: &str = "unknown_base";
    /// The request's `delta` could not be applied: malformed digest, unknown
    /// job or machine index, probability out of range, duplicate edit, or an
    /// edge that would create a cycle. Nothing was solved.
    pub const INVALID_DELTA: &str = "invalid_delta";
    /// A `session_event` or `close_session` named a session id the service
    /// does not hold: never opened, already closed, or evicted (client
    /// disconnect or idle TTL). The event was **not** applied; the client
    /// should open a fresh session — the connection survives.
    pub const UNKNOWN_SESSION: &str = "unknown_session";
}

/// What a budgeted solve ran out of, carried in [`Response::budget`] on
/// `budget_exhausted` errors and on degraded fallback responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetReport {
    /// Which limit tripped: `"pivots"` or `"time"`.
    pub exhausted: String,
    /// Simplex pivots spent before the budget ran out.
    pub spent_pivots: u64,
}

impl BudgetReport {
    /// Builds the report from the structured algorithm error.
    #[must_use]
    pub fn new(pivots: usize, wall_clock: bool) -> Self {
        Self {
            exhausted: if wall_clock { "time" } else { "pivots" }.to_string(),
            spent_pivots: pivots as u64,
        }
    }
}

/// Per-request lifecycle timings, echoed in [`Response::trace`] when the
/// request asked for them (`options: {"trace": true}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Microseconds spent in the solve queue before a solver thread picked
    /// the request up (0 on the serial transports, which have no queue).
    pub queue_us: u64,
    /// Microseconds from dispatch to a solved schedule: cache lookup,
    /// single-flight coordination and (on a miss) the solve itself.
    pub solve_us: u64,
    /// Microseconds spent rendering the response body.
    pub render_us: u64,
    /// Microseconds of the most recent write-side flush on this connection
    /// (flushes are batched across a burst, so this is shared, not
    /// per-request).
    pub flush_us: u64,
    /// How the schedule was obtained: `"hit"`, `"miss"` or `"coalesced"`.
    pub cache: String,
    /// Simplex pivots behind this response's schedule (0 when no LP ran).
    pub lp_pivots: u64,
    /// Whether the solve behind this response's schedule started warm: the
    /// LP was re-solved from a cached basis of a structurally identical
    /// parent instead of from scratch. Like `lp_pivots`, this describes how
    /// the schedule was *computed* — cache hits repeat the original solve's
    /// value.
    pub warm: bool,
}

/// A structured solve failure flowing between the service internals (the
/// solver runner, the single-flight layer) before it is rendered into a
/// [`Response`]: the machine-readable [`error_kind`], the human-readable
/// message, and the budget post-mortem when a budget tripped.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveFailure {
    /// One of the [`error_kind`] constants.
    pub kind: &'static str,
    /// Human-readable message for [`Response::error`].
    pub message: String,
    /// Which budget ran out, when `kind` is `budget_exhausted`.
    pub budget: Option<BudgetReport>,
}

impl SolveFailure {
    /// A failure without budget diagnostics.
    #[must_use]
    pub fn new(kind: &'static str, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
            budget: None,
        }
    }
}

/// A scheduling response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id. For unparseable lines this is the best-effort
    /// scan of the line's `"id"` field (so clients can still match the error
    /// to a request), or 0 when no id could be found.
    pub id: u64,
    /// Whether a schedule was produced.
    pub ok: bool,
    /// Error message when `ok` is false.
    pub error: Option<String>,
    /// Machine-readable error category when `ok` is false (see
    /// [`error_kind`]); `"busy"` means admission control rejected the
    /// request without executing it.
    pub error_kind: Option<String>,
    /// Name of the solver that produced the schedule.
    pub solver: Option<String>,
    /// Whether the schedule was served from the cache.
    pub cache_hit: bool,
    /// The oblivious schedule (execute cyclically).
    pub schedule: Option<ObliviousSchedule>,
    /// Length of the schedule in steps.
    pub schedule_len: usize,
    /// LP optimum backing the schedule, for LP-based solvers.
    pub lp_value: Option<f64>,
    /// Simplex pivots spent by the LP engine when this schedule was computed
    /// (cache hits repeat the original solve's count), for LP-based solvers.
    pub lp_pivots: Option<usize>,
    /// Wall-clock microseconds the LP engine spent when this schedule was
    /// computed, for LP-based solvers.
    pub lp_micros: Option<u64>,
    /// Monte-Carlo estimate of the expected makespan, when requested.
    pub estimated_makespan: Option<f64>,
    /// Service-side handling time in microseconds.
    pub service_micros: u64,
    /// Whether this is a degraded answer: the dispatched solver's budget ran
    /// out and the serial-baseline solver answered instead (no approximation
    /// guarantee, but bounded latency). **Omitted from the wire when false**,
    /// so v1 responses are unchanged.
    pub degraded: bool,
    /// Budget post-mortem on `budget_exhausted` errors and degraded
    /// responses. **Omitted from the wire when absent.**
    pub budget: Option<BudgetReport>,
    /// Per-stage lifecycle timings, present only when the request opted in
    /// with `options: {"trace": true}`. **Omitted from the wire when
    /// absent.**
    pub trace: Option<TraceReport>,
}

impl Serialize for Response {
    // Hand-written to keep v1 responses byte-identical: field order matches
    // the historical derive, and the v2 `degraded`/`budget` fields are
    // appended only when set (never as nulls).
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id".to_string(), self.id.to_value()),
            ("ok".to_string(), self.ok.to_value()),
            ("error".to_string(), self.error.to_value()),
            ("error_kind".to_string(), self.error_kind.to_value()),
            ("solver".to_string(), self.solver.to_value()),
            ("cache_hit".to_string(), self.cache_hit.to_value()),
            ("schedule".to_string(), self.schedule.to_value()),
            ("schedule_len".to_string(), self.schedule_len.to_value()),
            ("lp_value".to_string(), self.lp_value.to_value()),
            ("lp_pivots".to_string(), self.lp_pivots.to_value()),
            ("lp_micros".to_string(), self.lp_micros.to_value()),
            (
                "estimated_makespan".to_string(),
                self.estimated_makespan.to_value(),
            ),
            ("service_micros".to_string(), self.service_micros.to_value()),
        ];
        if self.degraded {
            fields.push(("degraded".to_string(), self.degraded.to_value()));
        }
        if let Some(budget) = &self.budget {
            fields.push(("budget".to_string(), budget.to_value()));
        }
        if let Some(trace) = &self.trace {
            fields.push(("trace".to_string(), trace.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let required = |key: &str| {
            v.get(key)
                .ok_or_else(|| DeError::new(format!("missing field `{key}` in Response")))
        };
        Ok(Self {
            id: u64::from_value(required("id")?)?,
            ok: bool::from_value(required("ok")?)?,
            error: Option::from_value(required("error")?)?,
            error_kind: Option::from_value(required("error_kind")?)?,
            solver: Option::from_value(required("solver")?)?,
            cache_hit: bool::from_value(required("cache_hit")?)?,
            schedule: Option::from_value(required("schedule")?)?,
            schedule_len: usize::from_value(required("schedule_len")?)?,
            lp_value: Option::from_value(required("lp_value")?)?,
            lp_pivots: Option::from_value(required("lp_pivots")?)?,
            lp_micros: Option::from_value(required("lp_micros")?)?,
            estimated_makespan: Option::from_value(required("estimated_makespan")?)?,
            service_micros: u64::from_value(required("service_micros")?)?,
            // The v2 fields are omitted (not null) on v1-shaped responses.
            degraded: match v.get("degraded") {
                None | Some(Value::Null) => false,
                Some(b) => bool::from_value(b)?,
            },
            budget: match v.get("budget") {
                None | Some(Value::Null) => None,
                Some(b) => Some(BudgetReport::from_value(b)?),
            },
            trace: match v.get("trace") {
                None | Some(Value::Null) => None,
                Some(t) => Some(TraceReport::from_value(t)?),
            },
        })
    }
}

impl Response {
    /// An error response for `id` with an explicit [`error_kind`] category.
    #[must_use]
    pub fn failure_with(id: u64, kind: &str, error: impl Into<String>) -> Self {
        Self {
            id,
            ok: false,
            error: Some(error.into()),
            error_kind: Some(kind.to_string()),
            solver: None,
            cache_hit: false,
            schedule: None,
            schedule_len: 0,
            lp_value: None,
            lp_pivots: None,
            lp_micros: None,
            estimated_makespan: None,
            service_micros: 0,
            degraded: false,
            budget: None,
            trace: None,
        }
    }

    /// An error response for `id` (category defaults to
    /// [`error_kind::INVALID_REQUEST`]).
    #[must_use]
    pub fn failure(id: u64, error: impl Into<String>) -> Self {
        Self::failure_with(id, error_kind::INVALID_REQUEST, error)
    }

    /// An error response built from a structured [`SolveFailure`], carrying
    /// its budget post-mortem through to the wire.
    #[must_use]
    pub fn from_failure(id: u64, failure: &SolveFailure) -> Self {
        let mut response = Self::failure_with(id, failure.kind, failure.message.clone());
        response.budget = failure.budget.clone();
        response
    }

    /// The deadline-expiry response: the request's effective deadline passed
    /// before any solver work started.
    #[must_use]
    pub fn deadline_exceeded(id: u64) -> Self {
        Self::failure_with(
            id,
            error_kind::DEADLINE_EXCEEDED,
            "deadline exceeded before solving started",
        )
    }

    /// Applies the response projection: `NoSchedule` drops the schedule
    /// tree, `EstimateOnly` additionally drops the LP diagnostics. Pure
    /// presentation — `schedule_len` and the envelope stay.
    #[must_use]
    pub fn project(mut self, detail: Detail) -> Self {
        match detail {
            Detail::Full => {}
            Detail::NoSchedule => {
                self.schedule = None;
            }
            Detail::EstimateOnly => {
                self.schedule = None;
                self.lp_value = None;
                self.lp_pivots = None;
                self.lp_micros = None;
            }
        }
        self
    }

    /// The admission-control rejection: the solve queue was full and the
    /// request was dropped without being executed.
    #[must_use]
    pub fn busy(id: u64) -> Self {
        Self::failure_with(
            id,
            error_kind::BUSY,
            "service busy: the solve queue is full; retry later",
        )
    }

    /// Whether this is an admission-control `busy` rejection.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.error_kind.as_deref() == Some(error_kind::BUSY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::InstanceBuilder;
    use suu_workloads::uniform_matrix;

    fn chain_instance() -> SuuInstance {
        InstanceBuilder::new(3, 2)
            .probability_matrix(uniform_matrix(3, 2, 0.2, 0.9, 3))
            .chains(&[vec![0, 1, 2]])
            .build()
            .unwrap()
    }

    #[test]
    fn request_roundtrips_through_instance_and_json() {
        let inst = chain_instance();
        let req = Request::from_instance(42, &inst);
        let back = req.to_instance().unwrap();
        assert_eq!(inst, back);

        let json = serde_json::to_string(&req).unwrap();
        let parsed: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(req, parsed);
        assert_eq!(parsed.to_instance().unwrap(), inst);
    }

    #[test]
    fn request_tolerates_omitted_optional_fields() {
        let json = r#"{"id": 7, "num_jobs": 2, "num_machines": 1, "probs": [0.5, 0.5]}"#;
        let req: Request = serde_json::from_str(json).unwrap();
        assert_eq!(req.id, 7);
        assert!(req.edges.is_empty());
        assert!(req.solver.is_none());
        assert!(req.estimate_trials.is_none());
        assert!(req.to_instance().unwrap().is_independent());
    }

    #[test]
    fn request_rejects_missing_required_fields() {
        let json = r#"{"id": 7, "num_jobs": 2, "num_machines": 1}"#;
        assert!(serde_json::from_str::<Request>(json).is_err());
    }

    #[test]
    fn to_instance_rejects_cycles_and_bad_probabilities() {
        let cyclic = Request {
            id: 1,
            num_jobs: 2,
            num_machines: 1,
            probs: vec![0.5, 0.5],
            edges: vec![(0, 1), (1, 0)],
            solver: None,
            estimate_trials: None,
            options: None,
            base_digest: None,
            delta: None,
        };
        assert!(cyclic.to_instance().unwrap_err().contains("precedence"));

        let out_of_range = Request {
            id: 2,
            num_jobs: 1,
            num_machines: 1,
            probs: vec![1.5],
            edges: Vec::new(),
            solver: None,
            estimate_trials: None,
            options: None,
            base_digest: None,
            delta: None,
        };
        assert!(out_of_range.to_instance().unwrap_err().contains("instance"));
    }

    #[test]
    fn response_roundtrips_through_json() {
        let resp = Response {
            id: 9,
            ok: true,
            error: None,
            error_kind: None,
            solver: Some("suu-c".to_string()),
            cache_hit: true,
            schedule: Some(ObliviousSchedule::new(2)),
            schedule_len: 0,
            lp_value: Some(3.25),
            lp_pivots: Some(42),
            lp_micros: Some(180),
            estimated_makespan: None,
            service_micros: 12,
            degraded: false,
            budget: None,
            trace: None,
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"cache_hit\":true") || json.contains("\"cache_hit\": true"));
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn failure_response_carries_the_message() {
        let resp = Response::failure(3, "boom");
        assert!(!resp.ok);
        assert_eq!(resp.error.as_deref(), Some("boom"));
        assert_eq!(
            resp.error_kind.as_deref(),
            Some(error_kind::INVALID_REQUEST)
        );
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back.error.as_deref(), Some("boom"));
        assert_eq!(back.error_kind, resp.error_kind);
    }

    #[test]
    fn v1_request_serialisation_has_no_options_key() {
        let req = Request::from_instance(1, &chain_instance());
        let json = serde_json::to_string(&req).unwrap();
        assert!(!json.contains("options"), "json: {json}");
        let parsed: Request = serde_json::from_str(&json).unwrap();
        assert!(parsed.options.is_none());
        assert!(parsed.solve_options().is_default());
    }

    #[test]
    fn options_roundtrip_and_tolerate_omissions() {
        let mut req = Request::from_instance(7, &chain_instance());
        req.options = Some(SolveOptions {
            engine: Some(EngineChoice::Revised),
            max_pivots: Some(500),
            time_budget_ms: Some(25),
            deadline_ms: None,
            cache: Some(CachePolicy::Refresh),
            detail: Some(Detail::NoSchedule),
            trace: false,
        });
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"options\":{"), "json: {json}");
        assert!(!json.contains("deadline_ms"), "absent fields omitted");
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);

        let sparse: Request = serde_json::from_str(
            r#"{"id":1,"num_jobs":1,"num_machines":1,"probs":[0.5],
                "options":{"detail":"estimate_only"}}"#,
        )
        .unwrap();
        let options = sparse.solve_options();
        assert_eq!(options.detail(), Detail::EstimateOnly);
        assert_eq!(options.cache_policy(), CachePolicy::Default);
        assert_eq!(options.engine(), suu_lp::Engine::Auto);

        let bad = r#"{"id":1,"num_jobs":1,"num_machines":1,"probs":[0.5],
                      "options":{"engine":"warp"}}"#;
        assert!(serde_json::from_str::<Request>(bad).is_err());
    }

    #[test]
    fn trace_option_and_report_roundtrip_and_are_omitted_by_default() {
        // `trace` rides in options, serialised only when set.
        let mut req = Request::from_instance(5, &chain_instance());
        req.options = Some(SolveOptions {
            trace: true,
            ..SolveOptions::default()
        });
        let json = serde_json::to_string(&req).unwrap();
        assert!(
            json.contains("\"options\":{\"trace\":true}"),
            "json: {json}"
        );
        let back: Request = serde_json::from_str(&json).unwrap();
        assert!(back.solve_options().trace);
        // ... and must not fork the cache key.
        assert_eq!(back.solve_options().engine_variant(), 0);

        // An untraced response carries no trace key at all.
        let mut resp = Response::failure(5, "x");
        let json = serde_json::to_string(&resp).unwrap();
        assert!(!json.contains("trace"), "json: {json}");

        resp.trace = Some(TraceReport {
            queue_us: 12,
            solve_us: 190,
            render_us: 3,
            flush_us: 8,
            cache: "miss".to_string(),
            lp_pivots: 44,
            warm: false,
        });
        let json = serde_json::to_string(&resp).unwrap();
        assert!(
            json.contains(
                "\"trace\":{\"queue_us\":12,\"solve_us\":190,\"render_us\":3,\
                 \"flush_us\":8,\"cache\":\"miss\",\"lp_pivots\":44,\"warm\":false}"
            ),
            "json: {json}"
        );
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn projection_options_do_not_fork_the_engine_variant() {
        let v1 = SolveOptions::default();
        assert_eq!(v1.engine_variant(), 0);
        let projected = SolveOptions {
            detail: Some(Detail::NoSchedule),
            cache: Some(CachePolicy::Bypass),
            max_pivots: Some(10),
            time_budget_ms: Some(5),
            ..SolveOptions::default()
        };
        assert_eq!(projected.engine_variant(), 0, "projection must not fork");
        let auto = SolveOptions {
            engine: Some(EngineChoice::Auto),
            ..SolveOptions::default()
        };
        assert_eq!(auto.engine_variant(), 0, "explicit auto equals absent");
        let dense = SolveOptions {
            engine: Some(EngineChoice::Dense),
            ..SolveOptions::default()
        };
        let revised = SolveOptions {
            engine: Some(EngineChoice::Revised),
            ..SolveOptions::default()
        };
        assert_ne!(dense.engine_variant(), 0);
        assert_ne!(revised.engine_variant(), 0);
        assert_ne!(dense.engine_variant(), revised.engine_variant());
    }

    #[test]
    fn effective_deadline_takes_the_earlier_bound() {
        let now = Instant::now();
        assert_eq!(SolveOptions::default().effective_deadline(now), None);
        let budget_only = SolveOptions {
            time_budget_ms: Some(1_000),
            ..SolveOptions::default()
        };
        assert_eq!(
            budget_only.effective_deadline(now),
            Some(now + Duration::from_millis(1_000))
        );
        // An absolute deadline in the deep past expires immediately,
        // whatever the relative budget says.
        let both = SolveOptions {
            time_budget_ms: Some(60_000),
            deadline_ms: Some(1),
            ..SolveOptions::default()
        };
        let effective = both.effective_deadline(now).unwrap();
        assert!(effective <= now);
    }

    #[test]
    fn scans_recover_id_and_deadline_fields() {
        assert_eq!(scan_request_id(r#"{"id":42,"num_jobs":}"#), 42);
        assert_eq!(scan_request_id(r#"{"id": 7 ,"#), 7);
        assert_eq!(scan_request_id("no id here"), 0);
        assert_eq!(scan_request_id(r#"{"id":-3}"#), 0);

        let now = Instant::now();
        assert!(scan_deadline(r#"{"id":1}"#, now).is_none());
        // Stray fields the parser ignores must not expire the request,
        // wherever they sit relative to the options object: the scan is
        // scoped to the object body itself.
        assert!(scan_deadline(r#"{"id":1,"time_budget_ms":0,"num_jobs":1}"#, now).is_none());
        assert!(scan_deadline(
            r#"{"id":1,"options":{"detail":"full"},"time_budget_ms":0}"#,
            now
        )
        .is_none());
        // A string *value* "options" is not an options object.
        assert!(scan_deadline(r#"{"id":1,"solver":"options","time_budget_ms":0}"#, now).is_none());
        // ... and does not stop the scan from finding the real key later.
        assert!(scan_deadline(
            r#"{"id":1,"solver":"options","options":{"time_budget_ms":0}}"#,
            now
        )
        .is_some());
        let scanned = scan_deadline(r#"{"id":1,"options":{"time_budget_ms":250}}"#, now);
        assert_eq!(scanned, Some(now + Duration::from_millis(250)));
    }

    #[test]
    fn degraded_and_budget_are_omitted_unless_set() {
        let mut resp = Response::failure(1, "x");
        let json = serde_json::to_string(&resp).unwrap();
        assert!(!json.contains("degraded"), "json: {json}");
        assert!(!json.contains("budget"), "json: {json}");
        let back: Response = serde_json::from_str(&json).unwrap();
        assert!(!back.degraded);
        assert!(back.budget.is_none());

        resp.degraded = true;
        resp.budget = Some(BudgetReport::new(17, false));
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"degraded\":true"), "json: {json}");
        assert!(
            json.contains("\"budget\":{\"exhausted\":\"pivots\",\"spent_pivots\":17}"),
            "json: {json}"
        );
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn projection_strips_schedule_and_diagnostics() {
        let full = Response {
            id: 1,
            ok: true,
            error: None,
            error_kind: None,
            solver: Some("suu-c".to_string()),
            cache_hit: false,
            schedule: Some(ObliviousSchedule::new(2)),
            schedule_len: 3,
            lp_value: Some(1.5),
            lp_pivots: Some(9),
            lp_micros: Some(80),
            estimated_makespan: Some(4.0),
            service_micros: 10,
            degraded: false,
            budget: None,
            trace: None,
        };
        let no_schedule = full.clone().project(Detail::NoSchedule);
        assert!(no_schedule.schedule.is_none());
        assert_eq!(no_schedule.schedule_len, 3);
        assert_eq!(no_schedule.lp_pivots, Some(9));
        let estimate_only = full.clone().project(Detail::EstimateOnly);
        assert!(estimate_only.schedule.is_none());
        assert!(estimate_only.lp_value.is_none());
        assert!(estimate_only.lp_pivots.is_none());
        assert!(estimate_only.lp_micros.is_none());
        assert_eq!(estimate_only.estimated_makespan, Some(4.0));
        assert_eq!(full.clone().project(Detail::Full), full);
    }

    #[test]
    fn digest_wire_form_roundtrips_and_rejects_garbage() {
        for d in [0u64, 1, 0x91f4_c3a0_7b5e_2d18, u64::MAX] {
            let wire = digest_to_wire(d);
            assert_eq!(wire.len(), 16);
            assert_eq!(digest_from_wire(&wire), Some(d));
        }
        assert_eq!(digest_from_wire(""), None);
        assert_eq!(digest_from_wire("91f4c3a07b5e2d1"), None, "too short");
        assert_eq!(digest_from_wire("91f4c3a07b5e2d181"), None, "too long");
        assert_eq!(digest_from_wire("91F4C3A07B5E2D18"), None, "uppercase");
        assert_eq!(digest_from_wire("91f4c3a07b5e2d1g"), None, "non-hex");
        assert_eq!(digest_from_wire("+1f4c3a07b5e2d18"), None, "sign");
    }

    #[test]
    fn delta_request_omits_payload_fields_and_roundtrips() {
        let delta = InstanceDelta {
            set_prob: vec![(0, 2, 0.75)],
            ..InstanceDelta::default()
        };
        let req = Request::from_delta(12, 0x91f4_c3a0_7b5e_2d18, delta);
        let json = serde_json::to_string(&req).unwrap();
        assert!(
            json.contains("\"base_digest\":\"91f4c3a07b5e2d18\""),
            "json: {json}"
        );
        assert!(!json.contains("num_jobs"), "payload omitted: {json}");
        assert!(!json.contains("probs"), "payload omitted: {json}");
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);

        // Without base_digest, omitted payload fields keep their historical
        // v1 missing-field errors.
        let bad = r#"{"id": 3, "delta": {"set_prob": [[0, 0, 0.5]]}}"#;
        let err = serde_json::from_str::<Request>(bad).unwrap_err();
        assert!(format!("{err}").contains("num_jobs"), "err: {err}");
    }

    #[test]
    fn full_payload_request_may_carry_a_delta() {
        let mut req = Request::from_instance(9, &chain_instance());
        req.delta = Some(InstanceDelta {
            drain_machine: Some(1),
            ..InstanceDelta::default()
        });
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"num_jobs\":3"), "json: {json}");
        assert!(json.contains("\"delta\":{"), "json: {json}");
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn busy_response_is_structured() {
        let resp = Response::busy(17);
        assert!(!resp.ok);
        assert!(resp.is_busy());
        assert_eq!(resp.id, 17);
        assert_eq!(resp.error_kind.as_deref(), Some(error_kind::BUSY));
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"error_kind\":\"busy\""), "json: {json}");
        let back: Response = serde_json::from_str(&json).unwrap();
        assert!(back.is_busy());
        assert!(!Response::failure(17, "other").is_busy());
    }
}
