//! Lock-free observability primitives: log-bucketed atomic histograms and
//! the request-lifecycle stage vocabulary.
//!
//! The service's hot paths are served by many solver threads at once; a
//! `Mutex<OnlineStats>` on the latency path serialises every response behind
//! one lock. [`AtomicHistogram`] replaces it with a fixed array of
//! [`AtomicU64`] buckets updated with relaxed fetch-adds — constant memory,
//! no coordination between recording threads, and (unlike mean/max alone)
//! enough shape to answer p50/p90/p99/p999 questions.
//!
//! # Bucketing scheme
//!
//! [`NUM_BUCKETS`] (= 64) log-linear buckets with two sub-buckets per
//! octave, HDR-histogram style:
//!
//! * bucket `0` holds the value `0`, bucket `1` the value `1`;
//! * for `v ≥ 2` with most-significant bit `m`, bucket `2m` covers
//!   `[2^m, 1.5·2^m)` and bucket `2m + 1` covers `[1.5·2^m, 2^(m+1))`;
//! * bucket `63` is the overflow bucket (values ≥ `1.5·2^31`, i.e. beyond
//!   ~3 200 seconds when recording microseconds).
//!
//! Recording microseconds, the scheme spans 1 µs to over 100 s with at most
//! ~33% relative quantile error (each bucket is half an octave wide), which
//! is ample for latency attribution. An exact running [`sum`] rides along so
//! means stay exact, not bucket-approximated.
//!
//! [`sum`]: HistogramSnapshot::sum

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{DeError, Deserialize, Serialize, Value};
use suu_sim::bucket_quantile_index;

/// Number of histogram buckets (see the module docs for the scheme).
pub const NUM_BUCKETS: usize = 64;

/// The bucket index recording `value` increments.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < 2 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize;
    let sub = ((value >> (msb - 1)) & 1) as usize;
    (2 * msb + sub).min(NUM_BUCKETS - 1)
}

/// Smallest value mapping to bucket `index`.
///
/// # Panics
///
/// Panics when `index >= NUM_BUCKETS`.
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    match index {
        0 => 0,
        1 => 1,
        _ => {
            let base = 1u64 << (index / 2);
            if index.is_multiple_of(2) {
                base
            } else {
                base + (base >> 1)
            }
        }
    }
}

/// Largest value mapping to bucket `index` (inclusive). The overflow bucket
/// reports a nominal `2^32 − 1` rather than `u64::MAX`, so every bound stays
/// exactly representable in JSON numbers.
///
/// # Panics
///
/// Panics when `index >= NUM_BUCKETS`.
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    if index == NUM_BUCKETS - 1 {
        (1u64 << 32) - 1
    } else {
        bucket_lower_bound(index + 1) - 1
    }
}

/// A lock-free log-bucketed histogram: worker threads record with relaxed
/// atomic adds, readers take consistent-enough [`HistogramSnapshot`]s.
///
/// All operations take `&self`; the struct is shared across threads without
/// any external lock.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Exact sum of every recorded value (for exact means).
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. Wait-free: two relaxed fetch-adds.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the bucket counts and sum. Buckets are read
    /// one by one (no global lock), so a snapshot taken *during* concurrent
    /// recording may straddle an update; quiescent histograms snapshot
    /// exactly.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Folds a snapshot back into this histogram (cross-thread or
    /// cross-process merge).
    pub fn merge(&self, other: &HistogramSnapshot) {
        for (bucket, &count) in self.buckets.iter().zip(&other.buckets) {
            if count > 0 {
                bucket.fetch_add(count, Ordering::Relaxed);
            }
        }
        if other.sum > 0 {
            self.sum.fetch_add(other.sum, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of an [`AtomicHistogram`]: plain data, mergeable,
/// and the carrier of every quantile query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see the module docs for the scheme).
    pub buckets: [u64; NUM_BUCKETS],
    /// Exact sum of every recorded value.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exact mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// The `q`-quantile by nearest rank over the bucket counts, reported as
    /// the containing bucket's **inclusive upper bound** (conservative: the
    /// true order statistic is ≤ the reported value, and the report is
    /// monotone in `q`). 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        bucket_quantile_index(&self.buckets, q).map_or(0, bucket_upper_bound)
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    #[must_use]
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_upper_bound)
    }

    /// Accumulates another snapshot into this one. Associative and
    /// commutative (bucket-wise and sum addition), so merge order never
    /// changes the result.
    pub fn merge(&mut self, other: &Self) {
        for (into, &from) in self.buckets.iter_mut().zip(&other.buckets) {
            *into += from;
        }
        self.sum += other.sum;
    }

    /// The non-empty buckets as `(inclusive lower bound, count)` pairs —
    /// the compact wire form.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(index, &count)| (bucket_lower_bound(index), count))
            .collect()
    }
}

impl Serialize for HistogramSnapshot {
    /// Wire form: summary fields plus the sparse bucket table
    /// `[[lower_bound, count], …]`. Counts and bounds all fit JSON numbers
    /// exactly (bounds are capped at `2^32 − 1` by construction).
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_string(), self.count().to_value()),
            ("sum".to_string(), self.sum.to_value()),
            ("mean".to_string(), self.mean().to_value()),
            ("p50".to_string(), self.p50().to_value()),
            ("p90".to_string(), self.p90().to_value()),
            ("p99".to_string(), self.p99().to_value()),
            ("p999".to_string(), self.p999().to_value()),
            ("max".to_string(), self.max_bound().to_value()),
            ("buckets".to_string(), self.nonzero_buckets().to_value()),
        ])
    }
}

impl Deserialize for HistogramSnapshot {
    /// Rebuilds the snapshot from the wire form; the summary fields are
    /// derived data and ignored (the bucket table is authoritative).
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let buckets_field = v
            .get("buckets")
            .ok_or_else(|| DeError::new("missing field `buckets` in histogram"))?;
        let pairs: Vec<(u64, u64)> = Vec::from_value(buckets_field)?;
        let mut snapshot = Self::new();
        for (lower, count) in pairs {
            let index = bucket_index(lower);
            if bucket_lower_bound(index) != lower {
                return Err(DeError::new(format!(
                    "{lower} is not a histogram bucket boundary"
                )));
            }
            snapshot.buckets[index] += count;
        }
        snapshot.sum = match v.get("sum") {
            None | Some(Value::Null) => 0,
            Some(sum) => u64::from_value(sum)?,
        };
        Ok(snapshot)
    }
}

/// The stages of a request's life inside the service, in pipeline order.
/// Each stage has its own latency histogram in the metrics block; the `queue`
/// stage only accumulates under the pipelined executor (the serial transport
/// has no queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Accepted → dequeued by a solver thread (pipelined executor only).
    Queue,
    /// Wire line → parsed [`Request`](crate::protocol::Request) (line
    /// transports only; cache-interned parses count at their — tiny — real
    /// cost).
    Parse,
    /// Cache/flight resolution and the LP solve (the whole
    /// lookup-or-solve-or-wait step).
    Solve,
    /// Response body preparation (schedule serialisation or splice).
    Render,
    /// Writing the response line to the connection, including the batched
    /// flush when the response closes a burst.
    Flush,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Queue,
        Stage::Parse,
        Stage::Solve,
        Stage::Render,
        Stage::Flush,
    ];

    /// Stable wire/report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Parse => "parse",
            Stage::Solve => "solve",
            Stage::Render => "render",
            Stage::Flush => "flush",
        }
    }

    /// Dense index (position in [`Stage::ALL`]).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_exact() {
        // Every bucket's own bounds must map back to that bucket, bounds
        // must tile the value axis without gaps or overlaps, and the
        // documented half-octave scheme must hold for small values.
        for index in 0..NUM_BUCKETS {
            let lower = bucket_lower_bound(index);
            let upper = bucket_upper_bound(index);
            assert_eq!(bucket_index(lower), index, "lower bound of {index}");
            if index < NUM_BUCKETS - 1 {
                assert_eq!(bucket_index(upper), index, "upper bound of {index}");
                assert_eq!(
                    bucket_lower_bound(index + 1),
                    upper + 1,
                    "buckets {index}/{} must tile",
                    index + 1
                );
            }
        }
        for (value, expected) in [
            (0u64, 0usize),
            (1, 1),
            (2, 2),
            (3, 3),
            (4, 4),
            (5, 4),
            (6, 5),
            (7, 5),
            (8, 6),
            (11, 6),
            (12, 7),
            (15, 7),
            (16, 8),
        ] {
            assert_eq!(bucket_index(value), expected, "value {value}");
        }
        // The overflow bucket swallows everything huge.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 40), NUM_BUCKETS - 1);
    }

    #[test]
    fn one_second_and_100s_land_mid_range() {
        // The scheme must cover the documented 1µs–100s span with room:
        // 100 s = 1e8 µs must sit strictly below the overflow bucket.
        assert!(bucket_index(1) < NUM_BUCKETS / 2);
        assert!(bucket_index(100_000_000) < NUM_BUCKETS - 1);
    }

    #[test]
    fn record_then_snapshot_reports_exact_mean_and_count() {
        let h = AtomicHistogram::new();
        for v in [100u64, 300, 50] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.sum, 450);
        assert!((snap.mean() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_samples() {
        let h = AtomicHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        let p50 = snap.p50();
        let p90 = snap.p90();
        let p99 = snap.p99();
        let p999 = snap.p999();
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        assert!(p999 <= snap.max_bound());
        // Half-octave buckets: the reported bound is within ~50% above the
        // true order statistic.
        assert!((500..=767).contains(&p50), "p50={p50}");
        assert!((990..=1535).contains(&p99), "p99={p99}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 97));
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 80_000);
        let expected_sum: u64 = (0..8u64)
            .map(|t| (0..10_000u64).map(|i| t * 1_000 + (i % 97)).sum::<u64>())
            .sum();
        assert_eq!(snap.sum, expected_sum);
    }

    #[test]
    fn merge_is_associative_and_matches_sequential() {
        let make = |values: &[u64]| {
            let h = AtomicHistogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let a = make(&[1, 5, 9_000]);
        let b = make(&[2, 2, 70]);
        let c = make(&[1_000_000]);
        let all = make(&[1, 5, 9_000, 2, 2, 70, 1_000_000]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == sequential recording.
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left, all);

        // And AtomicHistogram::merge agrees with snapshot merge.
        let h = AtomicHistogram::new();
        h.merge(&a);
        h.merge(&b);
        h.merge(&c);
        assert_eq!(h.snapshot(), all);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let snap = AtomicHistogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p999(), 0);
        assert_eq!(snap.max_bound(), 0);
        assert!(snap.nonzero_buckets().is_empty());
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let h = AtomicHistogram::new();
        for v in [0u64, 1, 7, 7, 650_000, 1 << 40] {
            h.record(v);
        }
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"count\":6"), "json: {json}");
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.buckets, snap.buckets);
        assert_eq!(back.sum, snap.sum);
        assert_eq!(back.count(), 6);

        let bad = r#"{"buckets":[[5,1]]}"#; // 5 is inside a bucket, not a boundary
        assert!(serde_json::from_str::<HistogramSnapshot>(bad).is_err());
    }

    #[test]
    fn stages_have_stable_names_and_dense_indices() {
        for (position, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), position);
        }
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["queue", "parse", "solve", "render", "flush"]);
    }
}
