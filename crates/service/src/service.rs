//! The scheduler service: registry + cache + metrics behind one entry point.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use suu_algorithms::LpBudget;
use suu_core::SuuInstance;
use suu_sim::OnlineStats;

use crate::cache::{CacheConfig, CachedSolve, ScheduleCache};
use crate::flight::{Flight, SingleFlight};
use crate::metrics::ServiceMetrics;
use crate::obs::Stage;
use crate::pipeline::{Job, PoolHandle, ResponseSink};
use crate::protocol::{
    digest_from_wire, error_kind, scan_request_id, BudgetReport, CachePolicy, Detail, Request,
    Response, SolveFailure, SolveOptions, TraceReport,
};
use crate::session::{widen_schedule, SessionEvent, SessionState, SessionTable, SESSION_SOLVER};
use crate::solver::{Solver, SolverRegistry};
use serde::{Deserialize, Serialize, Value};

/// The solver every budget-exhausted auto-dispatched request degrades to:
/// one topological pass, no LP, bounded latency (no approximation
/// guarantee). Responses produced this way carry `degraded: true` plus the
/// budget post-mortem of the solver that ran out.
const FALLBACK_SOLVER: &str = "serial-baseline";

/// Per-request execution directives derived from the wire-level
/// [`SolveOptions`]: effective resource limits (the absolute deadline is
/// computed from the moment the service *accepted* the request, so time
/// spent queued counts against the budget), cache policy, response
/// projection, and the cache-key variant.
#[derive(Debug, Clone, Copy)]
struct Directives {
    limits: LpBudget,
    cache: CachePolicy,
    detail: Detail,
    variant: u8,
}

impl Directives {
    fn new(options: &SolveOptions, accepted_at: Instant) -> Self {
        Self {
            limits: LpBudget {
                engine: options.engine(),
                max_pivots: options
                    .max_pivots
                    .map(|p| usize::try_from(p).unwrap_or(usize::MAX)),
                deadline: options.effective_deadline(accepted_at),
            },
            cache: options.cache_policy(),
            detail: options.detail(),
            variant: options.engine_variant(),
        }
    }

    fn expired(&self) -> bool {
        self.limits.expired()
    }
}

/// How a request's schedule was obtained — the `trace.cache` vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheOutcome {
    /// Served from the schedule cache.
    Hit,
    /// Solved fresh by this request.
    Miss,
    /// Served by waiting on an identical in-flight solve.
    Coalesced,
}

impl CacheOutcome {
    fn as_wire(self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::Coalesced => "coalesced",
        }
    }

    /// The response's `cache_hit` flag. Coalesced followers report `true` —
    /// they burned no solve of their own (the historical wire behaviour).
    fn as_cache_hit(self) -> bool {
        !matches!(self, Self::Miss)
    }
}

/// Stage timings the *transport* already knows when it hands a request to
/// the service — the pipelined executor passes the request's queue wait and
/// the connection's most recent flush cost so they can be echoed in the
/// `trace` response object. The serial transports have neither (both 0).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageContext {
    /// Microseconds the request waited in the solve queue.
    pub queue_us: u64,
    /// Microseconds of the connection's most recent write-side flush.
    pub flush_us: u64,
    /// Opaque connection token grouping session verbs for disconnect
    /// eviction (0 = anonymous: sessions opened this way only expire by
    /// idle TTL).
    pub conn: u64,
}

/// Serialises a protocol [`Response`] to its wire line (no trailing `\n`).
fn render_response(response: &Response) -> String {
    serde_json::to_string(response).expect("responses always serialise")
}

/// The `unknown_session` failure shared by `session_event` and
/// `close_session`: the id was never opened, was closed, or was evicted
/// (disconnect or idle TTL) — the wire cannot distinguish the three.
fn unknown_session_failure(id: u64, session: u64) -> Response {
    Response::failure_with(
        id,
        error_kind::UNKNOWN_SESSION,
        format!("unknown session {session}: never opened, closed, or evicted"),
    )
}

/// Renders a session revision (or terminal `done`) reply. `schedule` is
/// absent exactly when the session is finished — there is nothing left to
/// schedule.
fn session_reply(
    id: u64,
    session: u64,
    state: &SessionState,
    schedule: Option<(&suu_core::ObliviousSchedule, bool)>,
) -> String {
    let mut fields = vec![
        ("id".to_string(), Value::Number(id as f64)),
        ("ok".to_string(), Value::Bool(true)),
        ("session".to_string(), Value::Number(session as f64)),
        ("revision".to_string(), Value::Number(state.revision as f64)),
        ("done".to_string(), Value::Bool(state.done)),
        (
            "unfinished".to_string(),
            Value::Number(state.job_map.len() as f64),
        ),
        (
            "completed".to_string(),
            Value::Number(state.completed as f64),
        ),
    ];
    if let Some((schedule, warm)) = schedule {
        fields.push(("warm".to_string(), Value::Bool(warm)));
        fields.push(("schedule".to_string(), schedule.to_value()));
    }
    Value::Object(fields).render()
}

/// The successful end of the validate → dispatch → lookup/solve flow.
struct SolveOutcome {
    instance: SuuInstance,
    solved: CachedSolve,
    cache: CacheOutcome,
    /// The dispatched solver's budget ran out and `solved` came from the
    /// serial-baseline fallback instead.
    degraded: bool,
    /// Post-mortem of the exhausted budget on degraded responses.
    budget: Option<BudgetReport>,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Schedule cache sizing.
    pub cache: CacheConfig,
    /// Hard cap on instance size (`jobs × machines`) accepted over the wire,
    /// protecting the LP pipeline from pathological requests.
    pub max_cells: usize,
    /// Hard cap on the byte length of one request line. Without it a single
    /// newline-free stream would be buffered in full before parsing, so the
    /// `max_cells` guard could never run; overlong lines are discarded and
    /// answered with an error response instead.
    pub max_line_bytes: usize,
    /// Cap on `estimate_trials` a client may request.
    pub max_estimate_trials: usize,
    /// Cap on simulated steps per estimation trial.
    pub estimate_max_steps: usize,
    /// Whether fresh solves may start from a cached basis of a structurally
    /// identical parent (and publish their own final basis for later
    /// solves). Warm starts never change the computed schedule — the warm
    /// path re-solves to the same optimum or falls back to a cold solve —
    /// so this is safe to leave on; the switch exists so benchmarks can
    /// measure the warm-vs-cold speedup at equal payloads.
    pub warm_starts: bool,
    /// Cap on concurrently open adaptive sessions; opens beyond it are
    /// rejected with a structured `busy` error.
    pub max_sessions: usize,
    /// Idle TTL for sessions, milliseconds: a session untouched for longer
    /// is evicted on the next session verb (leak protection for clients
    /// that neither close nor disconnect).
    pub session_idle_ttl_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            cache: CacheConfig::default(),
            max_cells: 10_000,
            max_line_bytes: 4 * 1024 * 1024,
            max_estimate_trials: 1_000,
            estimate_max_steps: 100_000,
            warm_starts: true,
            max_sessions: 1_024,
            session_idle_ttl_ms: 300_000,
        }
    }
}

/// The long-running scheduling service. Shared across worker threads behind
/// an `Arc`; all methods take `&self`.
pub struct SchedulerService {
    registry: SolverRegistry,
    cache: ScheduleCache,
    flight: SingleFlight,
    metrics: ServiceMetrics,
    sessions: SessionTable,
    config: ServiceConfig,
    line_cache: Mutex<LineCache>,
}

/// Interned parses of repeated request lines.
///
/// Multi-tenant traffic repeats request bodies byte for byte except for the
/// client-chosen `id`; parsing the same multi-kilobyte probability matrix
/// into a fresh `Request` for every repeat costs more than the solve lookup
/// it feeds. Lines in the canonical serialisation (`{"id":<digits>,…`, which
/// is what [`Request`]'s own serialiser emits) are therefore cached keyed on
/// everything *after* the id digits; a hit reuses the parsed request and
/// only the id differs. Non-canonical lines (arbitrary field order) simply
/// take the full parse — the cache is an optimisation, never a semantic.
#[derive(Default)]
struct LineCache {
    entries: HashMap<u64, Vec<LineEntry>>,
    len: usize,
}

struct LineEntry {
    /// The line with the id digits removed (prefix is always `{"id":`).
    post: String,
    request: Arc<Request>,
}

/// Bound on interned lines; the cache is cleared wholesale beyond it (the
/// working set of distinct request bodies is the tenant population, far
/// below this).
const LINE_CACHE_MAX: usize = 1024;

/// Splits a canonical request line into its id and the remainder after the
/// id digits. Returns `None` for non-canonical lines.
fn split_canonical_id(line: &str) -> Option<(u64, &str)> {
    let rest = line.strip_prefix("{\"id\":")?;
    let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
    if digits == 0 {
        return None;
    }
    let id: u64 = rest[..digits].parse().ok()?;
    Some((id, &rest[digits..]))
}

impl SchedulerService {
    /// A service with the default registry (every paper algorithm).
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_registry(config, SolverRegistry::with_paper_algorithms())
    }

    /// A service with a caller-assembled registry.
    #[must_use]
    pub fn with_registry(config: ServiceConfig, registry: SolverRegistry) -> Self {
        Self {
            registry,
            cache: ScheduleCache::new(&config.cache),
            flight: SingleFlight::new(),
            metrics: ServiceMetrics::new(),
            sessions: SessionTable::new(config.max_sessions, config.session_idle_ttl_ms),
            config,
            line_cache: Mutex::new(LineCache::default()),
        }
    }

    /// The schedule cache (for inspection in tests and experiments).
    #[must_use]
    pub fn cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// The live metrics block.
    #[must_use]
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The solver registry.
    #[must_use]
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    /// The adaptive-session table (for inspection in tests).
    #[must_use]
    pub fn sessions(&self) -> &SessionTable {
        &self.sessions
    }

    /// Handles one request end to end: validate, dispatch, consult the
    /// cache, solve on miss, optionally estimate the makespan.
    ///
    /// This is the *serial* entry point: concurrent duplicates each run
    /// their own solve (first-insert-wins in the cache). The pipelined
    /// executor uses [`handle_request_coalesced`](Self::handle_request_coalesced)
    /// instead.
    #[must_use]
    pub fn handle_request(&self, request: &Request) -> Response {
        self.handle_with(request, false, Instant::now(), StageContext::default())
    }

    /// Like [`handle_request`](Self::handle_request), but concurrent
    /// requests with the same `canonical_digest()` (and solver) are
    /// coalesced through the single-flight layer: exactly one solve runs,
    /// the duplicates wait on its result and report `cache_hit`.
    #[must_use]
    pub fn handle_request_coalesced(&self, request: &Request) -> Response {
        self.handle_with(request, true, Instant::now(), StageContext::default())
    }

    fn handle_with(
        &self,
        request: &Request,
        coalesce: bool,
        accepted_at: Instant,
        ctx: StageContext,
    ) -> Response {
        let start = Instant::now();
        let mut response = self.solve_request(request, coalesce, accepted_at, ctx);
        response.service_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.record(
            response.solver.as_deref(),
            response.ok,
            response.service_micros,
        );
        self.metrics
            .record_stage(Stage::Solve, response.service_micros);
        let micros = response.service_micros;
        if let Some(trace) = response.trace.as_mut() {
            trace.solve_us = micros;
        }
        response
    }

    fn solve_request(
        &self,
        request: &Request,
        coalesce: bool,
        accepted_at: Instant,
        ctx: StageContext,
    ) -> Response {
        let options = request.solve_options();
        let directives = Directives::new(&options, accepted_at);
        let outcome = match self.solve_flow(request, &directives, coalesce) {
            Ok(outcome) => outcome,
            Err(failure) => return failure,
        };

        // The estimate is skipped when the deadline has already passed: the
        // client asked for bounded latency, and the schedule itself is the
        // part it cannot recompute.
        let estimated_makespan = request
            .estimate_trials
            .filter(|&trials| trials > 0 && !directives.expired())
            .and_then(|trials| {
                self.estimate_makespan(
                    &outcome.instance,
                    &outcome.solved,
                    trials.min(self.config.max_estimate_trials),
                )
            });

        // `solve_us` is patched in by `handle_with` once the total handling
        // time is known; `render_us` stays 0 on this (slow, struct-building)
        // path — serialisation happens in the caller.
        let trace = options.trace.then(|| TraceReport {
            queue_us: ctx.queue_us,
            solve_us: 0,
            render_us: 0,
            flush_us: ctx.flush_us,
            cache: outcome.cache.as_wire().to_string(),
            lp_pivots: outcome.solved.lp_pivots.unwrap_or(0) as u64,
            warm: outcome.solved.lp_warm,
        });

        Response {
            id: request.id,
            ok: true,
            error: None,
            error_kind: None,
            solver: Some(outcome.solved.solver.clone()),
            cache_hit: outcome.cache.as_cache_hit(),
            schedule_len: outcome.solved.schedule.len(),
            lp_value: outcome.solved.lp_value,
            lp_pivots: outcome.solved.lp_pivots,
            lp_micros: outcome.solved.lp_micros,
            schedule: Some(outcome.solved.schedule),
            estimated_makespan,
            service_micros: 0,
            degraded: outcome.degraded,
            budget: outcome.budget,
            trace,
        }
        .project(directives.detail)
    }

    /// Shared validate → dispatch → lookup/solve flow behind both the
    /// struct-building and the rendered response paths.
    // The Err variant is the ready-to-send failure response; boxing it would
    // just move the allocation into the hot success path's caller.
    #[allow(clippy::result_large_err)]
    fn solve_flow(
        &self,
        request: &Request,
        directives: &Directives,
        coalesce: bool,
    ) -> Result<SolveOutcome, Response> {
        if request
            .num_jobs
            .saturating_mul(request.num_machines)
            .max(request.probs.len())
            > self.config.max_cells
        {
            return Err(Response::failure(
                request.id,
                format!(
                    "instance too large: {} x {} exceeds the {}-cell service limit",
                    request.num_jobs, request.num_machines, self.config.max_cells
                ),
            ));
        }
        if directives.expired() {
            return Err(Response::deadline_exceeded(request.id));
        }
        let instance = self.resolve_instance(request)?;

        // Resolve the solver before the cache lookup: the solver name is part
        // of the cache key, so a forced solver never sees another solver's
        // cached schedule and vice versa.
        let solver = match &request.solver {
            Some(name) => match self.registry.by_name(name) {
                Some(solver) if solver.supports(&instance) => solver,
                Some(_) => {
                    return Err(Response::failure(
                        request.id,
                        format!("solver `{name}` does not support this instance structure"),
                    ))
                }
                None => {
                    return Err(Response::failure(
                        request.id,
                        format!(
                            "unknown solver `{name}`; registered: {}",
                            self.registry.names().join(", ")
                        ),
                    ))
                }
            },
            None => match self.registry.dispatch(&instance) {
                Some(solver) => solver,
                None => {
                    return Err(Response::failure(
                        request.id,
                        "no solver supports this instance",
                    ))
                }
            },
        };

        // Whether this request carries a budget of its own. An *unbudgeted*
        // request can still see a budget failure by inheriting a budgeted
        // leader's outcome through the flight layer (budgets deliberately
        // don't fork the flight key); failures are never cached, so such a
        // request simply retries under its own unbounded limits — a v1
        // client must not be degraded by a stranger's budget.
        let budgeted =
            directives.limits.max_pivots.is_some() || directives.limits.deadline.is_some();
        let mut result = self.lookup_or_solve(&instance, solver, directives, coalesce);
        if !budgeted {
            let mut retries = 0;
            while retries < 2 && matches!(&result, Err(f) if f.kind == error_kind::BUDGET_EXHAUSTED)
            {
                result = self.lookup_or_solve(&instance, solver, directives, coalesce);
                retries += 1;
            }
        }
        match result {
            Ok((solved, cache)) => Ok(SolveOutcome {
                instance,
                solved,
                cache,
                degraded: false,
                budget: None,
            }),
            Err(failure)
                if budgeted
                    && failure.kind == error_kind::BUDGET_EXHAUSTED
                    && request.solver.is_none()
                    && solver.name() != FALLBACK_SOLVER =>
            {
                // Degraded fallback: the dispatched solver's budget ran out,
                // so answer with the serial baseline — bounded latency beats
                // an error for auto-dispatched traffic. Forced solvers opt
                // out (the client asked for that algorithm specifically) and
                // get the structured `budget_exhausted` error instead. The
                // fallback drops the limits: the budget is already blown and
                // the baseline is one cheap topological pass. Its entry is
                // cached under variant 0 — the baseline runs no LP, so every
                // engine variant shares one artifact.
                let fallback = self
                    .registry
                    .by_name(FALLBACK_SOLVER)
                    .filter(|s| s.supports(&instance));
                let Some(fallback) = fallback else {
                    return Err(Response::from_failure(request.id, &failure));
                };
                let relaxed = Directives {
                    limits: LpBudget::default(),
                    variant: 0,
                    ..*directives
                };
                match self.lookup_or_solve(&instance, fallback, &relaxed, coalesce) {
                    Ok((solved, cache)) => Ok(SolveOutcome {
                        instance,
                        solved,
                        cache,
                        degraded: true,
                        budget: failure.budget,
                    }),
                    Err(fallback_failure) => {
                        Err(Response::from_failure(request.id, &fallback_failure))
                    }
                }
            }
            Err(mut failure) => {
                if !budgeted {
                    // Pathological race (repeatedly inheriting budgeted
                    // leaders' failures past the retries): keep the error
                    // but never leak the v2 budget post-mortem to a request
                    // that set no budget.
                    failure.budget = None;
                }
                Err(Response::from_failure(request.id, &failure))
            }
        }
    }

    /// Turns a request into the instance to solve: either the inline v1
    /// payload or — for protocol-v2 delta requests — a cached parent
    /// resolved by `base_digest`, with the request's [`InstanceDelta`]
    /// applied on top. Delta-built instances re-check the cell limit, since
    /// a delta can grow its parent past what the inline payload check saw.
    ///
    /// [`InstanceDelta`]: suu_core::InstanceDelta
    #[allow(clippy::result_large_err)]
    fn resolve_instance(&self, request: &Request) -> Result<SuuInstance, Response> {
        let base = if let Some(wire) = &request.base_digest {
            let Some(digest) = digest_from_wire(wire) else {
                return Err(Response::failure_with(
                    request.id,
                    error_kind::INVALID_DELTA,
                    format!("malformed base_digest `{wire}`: expected 16 lowercase hex characters"),
                ));
            };
            match self.cache.lookup_base(digest) {
                Some(parent) => parent,
                None => {
                    self.metrics.record_unknown_base();
                    return Err(Response::failure_with(
                        request.id,
                        error_kind::UNKNOWN_BASE,
                        format!(
                            "unknown base_digest `{wire}`: not in the solve cache; \
                             resubmit the full instance"
                        ),
                    ));
                }
            }
        } else {
            match request.to_instance() {
                Ok(instance) => instance,
                Err(message) => return Err(Response::failure(request.id, message)),
            }
        };
        let instance = match &request.delta {
            Some(delta) => match base.apply_delta(delta) {
                Ok(instance) => instance,
                Err(err) => {
                    return Err(Response::failure_with(
                        request.id,
                        error_kind::INVALID_DELTA,
                        format!("invalid delta: {err}"),
                    ))
                }
            },
            None => base,
        };
        if (request.base_digest.is_some() || request.delta.is_some())
            && instance.num_jobs().saturating_mul(instance.num_machines()) > self.config.max_cells
        {
            return Err(Response::failure(
                request.id,
                format!(
                    "instance too large: {} x {} exceeds the {}-cell service limit",
                    instance.num_jobs(),
                    instance.num_machines(),
                    self.config.max_cells
                ),
            ));
        }
        Ok(instance)
    }

    /// The pipelined executor's handler: coalesced like
    /// [`handle_request_coalesced`](Self::handle_request_coalesced), but
    /// returns the serialised NDJSON response line directly, splicing the
    /// solve's [rendered body](CachedSolve::rendered_body) into the response
    /// envelope whenever possible. Re-serialising a multi-kilobyte schedule
    /// per response dominates the cost of a cache hit; rendering it once per
    /// solve and reusing the bytes is what lets the pipelined mode answer
    /// repeat-heavy traffic at a multiple of the serial baseline's rate.
    ///
    /// The spliced line parses to exactly the [`Response`] the slow path
    /// would have produced (same serde rendering underneath); requests that
    /// ask for a makespan estimate take the slow path, since the estimate is
    /// computed per request.
    #[must_use]
    pub fn handle_request_coalesced_rendered(&self, request: &Request) -> String {
        self.rendered_with_id(request, request.id, Instant::now(), StageContext::default())
    }

    /// Like
    /// [`handle_request_coalesced_rendered`](Self::handle_request_coalesced_rendered)
    /// with an explicit acceptance time, from which relative time budgets
    /// are measured (the pipelined executor passes the enqueue time, so
    /// queueing counts against the budget).
    #[must_use]
    pub fn handle_request_coalesced_rendered_at(
        &self,
        request: &Request,
        accepted_at: Instant,
    ) -> String {
        self.rendered_with_id(request, request.id, accepted_at, StageContext::default())
    }

    /// [`handle_request_coalesced_rendered_at`](Self::handle_request_coalesced_rendered_at)
    /// with the transport's [`StageContext`] (queue wait and last flush
    /// cost), echoed in the `trace` object when the request asked for one.
    #[must_use]
    pub fn handle_request_coalesced_rendered_ctx(
        &self,
        request: &Request,
        accepted_at: Instant,
        ctx: StageContext,
    ) -> String {
        self.rendered_with_id(request, request.id, accepted_at, ctx)
    }

    /// The pipelined executor's raw-line handler: parse (through the
    /// interned-line cache), then the rendered coalesced path. Parse
    /// failures yield a structured `bad_request` response whose id is the
    /// best-effort scan of the line, like [`handle_line`](Self::handle_line).
    #[must_use]
    pub fn handle_line_coalesced_rendered(&self, line: &str) -> String {
        self.handle_line_coalesced_rendered_at(line, Instant::now())
    }

    /// [`handle_line_coalesced_rendered`](Self::handle_line_coalesced_rendered)
    /// with an explicit acceptance time for budget accounting.
    #[must_use]
    pub fn handle_line_coalesced_rendered_at(&self, line: &str, accepted_at: Instant) -> String {
        self.handle_line_coalesced_rendered_ctx(line, accepted_at, StageContext::default())
    }

    /// [`handle_line_coalesced_rendered_at`](Self::handle_line_coalesced_rendered_at)
    /// with the transport's [`StageContext`] for trace echoing.
    #[must_use]
    pub fn handle_line_coalesced_rendered_ctx(
        &self,
        line: &str,
        accepted_at: Instant,
        ctx: StageContext,
    ) -> String {
        if let Some(reply) = self.try_handle_verb(line, ctx.conn) {
            return reply;
        }
        let parse_start = Instant::now();
        match self.parse_line_cached(line) {
            Ok((id, request)) => {
                self.metrics.record_stage(
                    Stage::Parse,
                    u64::try_from(parse_start.elapsed().as_micros()).unwrap_or(u64::MAX),
                );
                self.rendered_with_id(&request, id, accepted_at, ctx)
            }
            Err(err) => {
                // Like the serial `handle_line`: protocol noise is answered
                // but not counted as a handled request in the metrics. The
                // id is scanned out best-effort so the client can match the
                // error to a request.
                let failure = Response::failure_with(
                    scan_request_id(line),
                    error_kind::BAD_REQUEST,
                    format!("bad request: {err}"),
                );
                serde_json::to_string(&failure).expect("responses always serialise")
            }
        }
    }

    /// `request` with `id` substituted (interned requests carry the id of
    /// their first submission; every later envelope gets its own).
    fn rendered_with_id(
        &self,
        request: &Request,
        id: u64,
        accepted_at: Instant,
        ctx: StageContext,
    ) -> String {
        let start = Instant::now();
        let options = request.solve_options();
        let directives = Directives::new(&options, accepted_at);
        if request.estimate_trials.filter(|&t| t > 0).is_some()
            || directives.detail == Detail::EstimateOnly
        {
            // Estimates are computed per request: take the slow path with
            // the id patched through.
            let mut own = request.clone();
            own.id = id;
            let response = self.handle_with(&own, true, accepted_at, ctx);
            let render_start = Instant::now();
            let line = serde_json::to_string(&response).expect("responses always serialise");
            self.metrics.record_stage(
                Stage::Render,
                u64::try_from(render_start.elapsed().as_micros()).unwrap_or(u64::MAX),
            );
            return line;
        }
        match self.solve_flow(request, &directives, true) {
            Ok(outcome) => {
                let solve_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.metrics.record_stage(Stage::Solve, solve_us);
                let render_start = Instant::now();
                let body = match directives.detail {
                    Detail::NoSchedule => outcome.solved.rendered_body_no_schedule(),
                    Detail::Full | Detail::EstimateOnly => outcome.solved.rendered_body(),
                };
                // The v2 fields are spliced in only when set, so v1
                // responses keep their exact historical bytes.
                let mut extra = String::new();
                if outcome.degraded {
                    extra.push_str(",\"degraded\":true");
                }
                if let Some(budget) = &outcome.budget {
                    extra.push_str(",\"budget\":");
                    extra.push_str(
                        &serde_json::to_string(budget).expect("budget reports serialise"),
                    );
                }
                let render_us =
                    u64::try_from(render_start.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.metrics.record_stage(Stage::Render, render_us);
                if options.trace {
                    let trace = TraceReport {
                        queue_us: ctx.queue_us,
                        solve_us,
                        render_us,
                        flush_us: ctx.flush_us,
                        cache: outcome.cache.as_wire().to_string(),
                        lp_pivots: outcome.solved.lp_pivots.unwrap_or(0) as u64,
                        warm: outcome.solved.lp_warm,
                    };
                    extra.push_str(",\"trace\":");
                    extra
                        .push_str(&serde_json::to_string(&trace).expect("trace reports serialise"));
                }
                let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.metrics
                    .record(Some(&outcome.solved.solver), true, micros);
                let cache_hit = outcome.cache.as_cache_hit();
                format!(
                    "{{\"id\":{id},\"ok\":true,\"error\":null,\"error_kind\":null,{body},\
                     \"cache_hit\":{cache_hit},\"estimated_makespan\":null,\
                     \"service_micros\":{micros}{extra}}}"
                )
            }
            Err(mut failure) => {
                failure.id = id;
                failure.service_micros =
                    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.metrics.record(None, false, failure.service_micros);
                self.metrics
                    .record_stage(Stage::Solve, failure.service_micros);
                let render_start = Instant::now();
                let line = serde_json::to_string(&failure).expect("responses always serialise");
                self.metrics.record_stage(
                    Stage::Render,
                    u64::try_from(render_start.elapsed().as_micros()).unwrap_or(u64::MAX),
                );
                line
            }
        }
    }

    /// Parses a request line, interning canonical lines so repeats of the
    /// same body (identical bytes modulo the id digits) skip the JSON parse
    /// entirely. See [`LineCache`].
    fn parse_line_cached(&self, line: &str) -> Result<(u64, Arc<Request>), String> {
        let Some((id, post)) = split_canonical_id(line) else {
            // Non-canonical shape: plain parse, no interning.
            let request: Request = serde_json::from_str(line).map_err(|err| err.to_string())?;
            let id = request.id;
            return Ok((id, Arc::new(request)));
        };
        let key = crate::fnv1a(post.as_bytes());
        {
            let cache = self.line_cache.lock().expect("line cache poisoned");
            if let Some(bucket) = cache.entries.get(&key) {
                if let Some(entry) = bucket.iter().find(|e| e.post == post) {
                    return Ok((id, Arc::clone(&entry.request)));
                }
            }
        }
        let request: Request = serde_json::from_str(line).map_err(|err| err.to_string())?;
        let request = Arc::new(request);
        let mut cache = self.line_cache.lock().expect("line cache poisoned");
        if cache.len >= LINE_CACHE_MAX {
            // Wholesale reset: simpler than LRU and the population of
            // distinct bodies (the tenant set) sits far below the bound.
            cache.entries.clear();
            cache.len = 0;
        }
        let bucket = cache.entries.entry(key).or_default();
        if !bucket.iter().any(|e| e.post == post) {
            bucket.push(LineEntry {
                post: post.to_string(),
                request: Arc::clone(&request),
            });
            cache.len += 1;
        }
        Ok((id, request))
    }

    /// Resolves a schedule for `(instance, solver, variant)` under the
    /// request's cache policy: cache hit, fresh solve, or (when `coalesce`
    /// is set) a wait on an identical in-flight solve. The [`CacheOutcome`]
    /// distinguishes the three for the response's `cache_hit` flag and the
    /// `trace.cache` field.
    ///
    /// `Bypass` and `Refresh` requests demand their own fresh solve, so they
    /// go around both the cache read and the single-flight layer (they never
    /// lead *or* follow a coalesced flight; `Refresh` still publishes its
    /// result into the cache for later requests).
    fn lookup_or_solve(
        &self,
        instance: &SuuInstance,
        solver: &dyn Solver,
        directives: &Directives,
        coalesce: bool,
    ) -> Result<(CachedSolve, CacheOutcome), SolveFailure> {
        let variant = directives.variant;
        match directives.cache {
            CachePolicy::Bypass => {
                return self
                    .run_solver(instance, solver, &directives.limits, None)
                    .map(|s| (s, CacheOutcome::Miss));
            }
            CachePolicy::Refresh => {
                return self
                    .run_solver(instance, solver, &directives.limits, Some(variant))
                    .map(|s| (s, CacheOutcome::Miss));
            }
            CachePolicy::Default => {}
        }
        if !coalesce {
            // Serial semantics: concurrent duplicates race (first insert
            // wins). Kept as the baseline path for `serve_lines` and for the
            // pipelined-vs-serial benchmark.
            if let Some(hit) = self.cache.get(instance, solver.name(), variant) {
                return Ok((hit, CacheOutcome::Hit));
            }
            return self
                .run_solver(instance, solver, &directives.limits, Some(variant))
                .map(|s| (s, CacheOutcome::Miss));
        }
        let key = (
            instance.canonical_digest(),
            variant,
            solver.name().to_string(),
        );
        match self
            .flight
            .begin(key, || self.cache.get(instance, solver.name(), variant))
        {
            Ok(hit) => Ok((hit, CacheOutcome::Hit)),
            Err(Flight::Lead(guard)) => {
                match self.run_solver(instance, solver, &directives.limits, Some(variant)) {
                    Ok(solved) => {
                        // `run_solver` already inserted into the cache, so
                        // publishing (which clears the slot) is safe now.
                        guard.publish(Ok(solved.clone()));
                        Ok((solved, CacheOutcome::Miss))
                    }
                    Err(failure) => {
                        guard.publish(Err(failure.clone()));
                        Err(failure)
                    }
                }
            }
            Err(Flight::Follow(flight)) => {
                self.metrics.record_coalesced();
                // Followers inherit the leader's outcome — including a
                // budget exhaustion under the *leader's* limits. Budgets
                // don't fork the flight key (a success is bit-identical
                // either way), and failures are not cached, so a follower
                // that wants to pay more simply retries (`solve_flow` does
                // exactly that for unbudgeted requests). The follower's own
                // deadline keeps binding while parked: the wait gives up at
                // that instant with a structured time-budget failure.
                flight
                    .wait_until(directives.limits.deadline)
                    .map(|solved| (solved, CacheOutcome::Coalesced))
            }
        }
    }

    /// Runs the solver under the request's limits and records the
    /// fresh-solve bookkeeping (LP effort aggregation, cache insert under
    /// `insert_variant` unless the cache policy said to skip). Cache hits
    /// and coalesced waits repeat the original solve's numbers in their
    /// responses but burn no new pivots.
    fn run_solver(
        &self,
        instance: &SuuInstance,
        solver: &dyn Solver,
        limits: &LpBudget,
        insert_variant: Option<u8>,
    ) -> Result<CachedSolve, SolveFailure> {
        // Warm starts ride on the structural digest: a solve of the same
        // structural class (shape + precedence, probabilities free) left a
        // final basis (and its LU factors) behind. When the edit left the
        // basis matrix untouched the factors are adopted outright — no
        // refactorisation — and otherwise the dual simplex repairs the basis
        // into this instance's optimum in a handful of pivots. `solve_warm`
        // falls back to a cold solve whenever the donor doesn't fit, so the
        // schedule is the same either way — only the pivot count changes.
        let structural = instance.structural_digest();
        let donor = if self.config.warm_starts {
            self.cache.lookup_basis(structural, solver.name())
        } else {
            None
        };
        let result = if self.config.warm_starts {
            solver.solve_warm(instance, limits, donor)
        } else {
            solver.solve(instance, limits)
        };
        match result {
            Ok(mut output) => {
                self.metrics.record_fresh_solve();
                if output.lp_warm {
                    self.metrics.record_warm_hit();
                }
                if let (Some(pivots), Some(micros)) = (output.lp_pivots, output.lp_micros) {
                    self.metrics.record_lp(pivots, micros);
                }
                if self.config.warm_starts {
                    if let Some(basis) = output.lp_basis.take() {
                        self.cache.store_basis(
                            structural,
                            solver.name(),
                            basis,
                            output.lp_factors.take(),
                        );
                    }
                }
                let solved = CachedSolve::new(
                    solver.name().to_string(),
                    output.schedule,
                    output.lp_value,
                    output.lp_pivots,
                    output.lp_micros,
                    output.lp_warm,
                );
                if let Some(variant) = insert_variant {
                    self.cache.insert(instance, variant, solved.clone());
                }
                Ok(solved)
            }
            Err(suu_algorithms::AlgorithmError::BudgetExhausted { pivots, wall_clock }) => {
                Err(SolveFailure {
                    kind: error_kind::BUDGET_EXHAUSTED,
                    message: format!(
                        "solver `{}` exhausted its {} after {pivots} pivots",
                        solver.name(),
                        if wall_clock {
                            "time budget"
                        } else {
                            "pivot budget"
                        },
                    ),
                    budget: Some(BudgetReport::new(pivots, wall_clock)),
                })
            }
            Err(err) => Err(SolveFailure::new(
                error_kind::SOLVER_ERROR,
                format!("solver `{}` failed: {err}", solver.name()),
            )),
        }
    }

    /// Monte-Carlo makespan estimate, or `None` when any trial hit the step
    /// horizon: averaging only the trials that finished would bias the
    /// estimate low (in the worst case reporting ≈0 for a schedule that
    /// never finished once), so a censored run yields no estimate at all.
    fn estimate_makespan(
        &self,
        instance: &SuuInstance,
        solved: &CachedSolve,
        trials: usize,
    ) -> Option<f64> {
        let mut stats = OnlineStats::new();
        for trial in 0..trials {
            let mut policy = solved.schedule.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(0x5E17_1CE0 ^ trial as u64);
            let steps = suu_sim::simulate_once(
                instance,
                &mut policy,
                &mut rng,
                self.config.estimate_max_steps,
            )?;
            stats.push(steps as f64);
        }
        Some(stats.mean())
    }

    /// Handles one raw NDJSON line. Parse failures yield an error response
    /// (with the line's `"id"` scanned out best-effort, 0 when absent)
    /// rather than tearing the connection down. Lines carrying a `verb`
    /// field are protocol commands (`stats` and the session verbs),
    /// answered without entering the scheduling path. Sessions opened
    /// through this entry point are anonymous (conn token 0): they expire by
    /// idle TTL, not by disconnect.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_with_conn(line, 0)
    }

    /// [`handle_line`](Self::handle_line) with an explicit connection token
    /// for session ownership — the serial transports pass a per-connection
    /// token so sessions die with their connection.
    fn handle_line_with_conn(&self, line: &str, conn: u64) -> String {
        if let Some(reply) = self.try_handle_verb(line, conn) {
            return reply;
        }
        let parse_start = Instant::now();
        match serde_json::from_str::<Request>(line) {
            Ok(request) => {
                self.metrics.record_stage(
                    Stage::Parse,
                    u64::try_from(parse_start.elapsed().as_micros()).unwrap_or(u64::MAX),
                );
                let response = self.handle_request(&request);
                let render_start = Instant::now();
                let rendered =
                    serde_json::to_string(&response).expect("responses always serialise");
                self.metrics.record_stage(
                    Stage::Render,
                    u64::try_from(render_start.elapsed().as_micros()).unwrap_or(u64::MAX),
                );
                rendered
            }
            Err(err) => {
                let failure = Response::failure_with(
                    scan_request_id(line),
                    error_kind::BAD_REQUEST,
                    format!("bad request: {err}"),
                );
                serde_json::to_string(&failure).expect("responses always serialise")
            }
        }
    }

    /// Intercepts protocol-command lines (`{"id": N, "verb": "stats"}`).
    /// Returns `None` for ordinary scheduling requests — a line only counts
    /// as a command when it parses as JSON *and* carries a `verb` key.
    /// Commands are answered but, like protocol noise, never counted in the
    /// `requests` metric (see [`ServiceMetrics`]). `conn` is the transport's
    /// connection token, owning any session opened by the line (0 =
    /// anonymous).
    fn try_handle_verb(&self, line: &str, conn: u64) -> Option<String> {
        if !line.contains("\"verb\"") {
            return None;
        }
        let value = serde_json::parse(line).ok()?;
        let verb = match value.get("verb")? {
            Value::String(s) => s.clone(),
            _ => return None,
        };
        let id = value
            .get("id")
            .and_then(|v| u64::from_value(v).ok())
            .unwrap_or(0);
        match verb.as_str() {
            "stats" => Some(self.stats_response_line(id)),
            "open_session" => Some(self.open_session_response(id, &value, conn)),
            "session_event" => Some(self.session_event_response(id, &value)),
            "close_session" => Some(self.close_session_response(id, &value)),
            other => {
                let failure = Response::failure_with(
                    id,
                    error_kind::BAD_REQUEST,
                    format!(
                        "unknown verb `{other}`; supported: stats, open_session, \
                         session_event, close_session"
                    ),
                );
                Some(serde_json::to_string(&failure).expect("responses always serialise"))
            }
        }
    }

    /// Idle-TTL housekeeping, run opportunistically on every session verb.
    fn sweep_sessions(&self) {
        let evicted = self.sessions.sweep_idle();
        self.metrics.record_sessions_evicted(evicted);
    }

    /// Evicts every session owned by connection token `conn` — called by the
    /// transports when a connection ends (EOF or error), so sessions die
    /// with their client instead of leaking until the idle TTL.
    pub fn evict_connection_sessions(&self, conn: u64) {
        let evicted = self.sessions.evict_connection(conn);
        self.metrics.record_sessions_evicted(evicted);
    }

    /// The session revision solve: forced `SUU-C` (the warm-capable solver
    /// class) through the normal cache + warm-start path, unbudgeted,
    /// variant 0 — repeated suffixes cache-hit and structural repeats
    /// warm-start from the previous revision's basis.
    #[allow(clippy::result_large_err)]
    fn solve_session_instance(
        &self,
        id: u64,
        instance: &SuuInstance,
    ) -> Result<CachedSolve, Response> {
        let Some(solver) = self.registry.by_name(SESSION_SOLVER) else {
            return Err(Response::failure(
                id,
                format!("session solver `{SESSION_SOLVER}` is not registered"),
            ));
        };
        if !solver.supports(instance) {
            return Err(Response::failure(
                id,
                "sessions require independent jobs or disjoint chains \
                 (the warm-start-capable SUU-C class)",
            ));
        }
        // Sessions pin the revised engine: it is the only simplex that
        // captures and consumes warm-start bases, and `Auto` would route
        // session-sized suffixes to the dense tableau (every revision cold).
        // Variant 2 matches an explicit `engine: revised` solve request, so
        // the cache keys stay consistent with the request path.
        let directives = Directives {
            limits: LpBudget {
                engine: suu_lp::Engine::Revised,
                ..LpBudget::default()
            },
            cache: CachePolicy::Default,
            detail: Detail::Full,
            variant: 2,
        };
        match self.lookup_or_solve(instance, solver, &directives, false) {
            Ok((solved, _)) => Ok(solved),
            Err(failure) => Err(Response::from_failure(id, &failure)),
        }
    }

    /// Answers `open_session`: validate the inline instance, solve it
    /// (revision 0), register the session and return the schedule.
    fn open_session_response(&self, id: u64, value: &Value, conn: u64) -> String {
        self.sweep_sessions();
        let request = match Request::from_value(value) {
            Ok(request) => request,
            Err(err) => {
                return render_response(&Response::failure_with(
                    id,
                    error_kind::BAD_REQUEST,
                    format!("bad open_session: {err}"),
                ))
            }
        };
        if request
            .num_jobs
            .saturating_mul(request.num_machines)
            .max(request.probs.len())
            > self.config.max_cells
        {
            return render_response(&Response::failure(
                id,
                format!(
                    "instance too large: {} x {} exceeds the {}-cell service limit",
                    request.num_jobs, request.num_machines, self.config.max_cells
                ),
            ));
        }
        let instance = match request.to_instance() {
            Ok(instance) => instance,
            Err(message) => return render_response(&Response::failure(id, message)),
        };
        let start = Instant::now();
        let solved = match self.solve_session_instance(id, &instance) {
            Ok(solved) => solved,
            Err(failure) => return render_response(&failure),
        };
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.record_revision(micros, solved.lp_warm);
        let unfinished = instance.num_jobs() as u64;
        let machines = instance.num_machines() as u64;
        let Some(session) = self.sessions.open(conn, SessionState::new(instance)) else {
            return render_response(&Response::failure_with(
                id,
                error_kind::BUSY,
                format!(
                    "session table full ({} open); close or wait for the idle TTL",
                    self.config.max_sessions
                ),
            ));
        };
        self.metrics.record_session_opened();
        Value::Object(vec![
            ("id".to_string(), Value::Number(id as f64)),
            ("ok".to_string(), Value::Bool(true)),
            ("session".to_string(), Value::Number(session as f64)),
            ("revision".to_string(), Value::Number(0.0)),
            ("done".to_string(), Value::Bool(false)),
            ("unfinished".to_string(), Value::Number(unfinished as f64)),
            ("warm".to_string(), Value::Bool(solved.lp_warm)),
            (
                "solver".to_string(),
                Value::String(SESSION_SOLVER.to_string()),
            ),
            ("machines".to_string(), Value::Number(machines as f64)),
            ("schedule".to_string(), solved.schedule.to_value()),
        ])
        .render()
    }

    /// Answers `session_event`: apply the feedback to the session's suffix
    /// (completions restrict, a failed machine drains, a drift re-prices),
    /// re-solve warm, and return the next revision. Errors leave the session
    /// state unchanged (the event is *not* half-applied).
    fn session_event_response(&self, id: u64, value: &Value) -> String {
        self.sweep_sessions();
        let event = match SessionEvent::parse(value) {
            Ok(event) => event,
            Err(message) => {
                return render_response(&Response::failure_with(
                    id,
                    error_kind::BAD_REQUEST,
                    message,
                ))
            }
        };
        let Some(entry) = self.sessions.get(event.session) else {
            self.metrics.record_unknown_session();
            return render_response(&unknown_session_failure(id, event.session));
        };
        // Events within a session serialise on the state lock; the pipelined
        // executor additionally keeps a session's events in submission order
        // (see `pipeline.rs`), so revisions are strictly ordered.
        let mut state = entry.lock();
        state.events += 1;
        if let Some(step) = event.step {
            state.realized_steps = state.realized_steps.max(step);
        }
        if state.done {
            return session_reply(id, event.session, &state, None);
        }
        // 1. Completions: drop reported jobs from the suffix. Ids that are
        //    unknown or already reported are ignored — completion reports
        //    are idempotent, so a client may safely repeat them.
        let mut keep: Vec<usize> = (0..state.job_map.len()).collect();
        if !event.completed.is_empty() {
            keep.retain(|&k| !event.completed.contains(&state.job_map[k].0));
        }
        let newly_done = (state.job_map.len() - keep.len()) as u64;
        if keep.is_empty() {
            state.completed += newly_done;
            state.job_map.clear();
            state.done = true;
            return session_reply(id, event.session, &state, None);
        }
        // 2. Candidate suffix: restrict to the survivors, then drain/drift
        //    as one delta (set_prob addresses pre-drain machine indices).
        let keep_session: Vec<suu_core::JobId> = keep.iter().map(|&k| suu_core::JobId(k)).collect();
        let (restricted, _) = state.current.restrict_to_jobs(&keep_session);
        let next_job_map: Vec<suu_core::JobId> = keep.iter().map(|&k| state.job_map[k]).collect();
        let mut delta = suu_core::InstanceDelta::default();
        let mut drained_at = None;
        if let Some(machine) = event.failed_machine {
            let Some(pos) = state.machine_map.iter().position(|&m| m == machine) else {
                return render_response(&Response::failure_with(
                    id,
                    error_kind::INVALID_DELTA,
                    format!(
                        "failed_machine {machine} is not active in session {}",
                        event.session
                    ),
                ));
            };
            delta.drain_machine = Some(pos);
            drained_at = Some(pos);
        }
        if let Some(drift) = event.drift {
            let Some(mpos) = state.machine_map.iter().position(|&m| m == drift.machine) else {
                return render_response(&Response::failure_with(
                    id,
                    error_kind::INVALID_DELTA,
                    format!(
                        "drift machine {} is not active in the session",
                        drift.machine
                    ),
                ));
            };
            let Some(jpos) = next_job_map.iter().position(|j| j.0 == drift.job) else {
                return render_response(&Response::failure_with(
                    id,
                    error_kind::INVALID_DELTA,
                    format!("drift job {} is not unfinished in the session", drift.job),
                ));
            };
            delta.set_prob.push((mpos, jpos, drift.p));
        }
        let candidate = if delta.is_empty() {
            restricted
        } else {
            match restricted.apply_delta(&delta) {
                Ok(candidate) => candidate,
                Err(err) => {
                    return render_response(&Response::failure_with(
                        id,
                        error_kind::INVALID_DELTA,
                        format!("invalid session delta: {err}"),
                    ))
                }
            }
        };
        // 3. Solve the suffix and commit; a solver failure leaves the old
        //    revision (and state) in place.
        let start = Instant::now();
        let solved = match self.solve_session_instance(id, &candidate) {
            Ok(solved) => solved,
            Err(failure) => return render_response(&failure),
        };
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.record_revision(micros, solved.lp_warm);
        state.completed += newly_done;
        state.current = candidate;
        state.job_map = next_job_map;
        if let Some(pos) = drained_at {
            state.machine_map.remove(pos);
        }
        state.revision += 1;
        if solved.lp_warm {
            state.warm_hits += 1;
        }
        let wide = widen_schedule(
            &solved.schedule,
            &state.machine_map,
            &state.job_map,
            state.original_machines,
        );
        session_reply(id, event.session, &state, Some((&wide, solved.lp_warm)))
    }

    /// Answers `close_session`: drop the session and return its final
    /// summary (revisions, warm hits, events, realized steps, completions).
    fn close_session_response(&self, id: u64, value: &Value) -> String {
        self.sweep_sessions();
        let Some(session) = value.get("session").and_then(|v| u64::from_value(v).ok()) else {
            return render_response(&Response::failure_with(
                id,
                error_kind::BAD_REQUEST,
                "close_session requires a numeric `session` field",
            ));
        };
        let Some(entry) = self.sessions.close(session) else {
            self.metrics.record_unknown_session();
            return render_response(&unknown_session_failure(id, session));
        };
        self.metrics.record_session_closed();
        let state = entry.lock();
        Value::Object(vec![
            ("id".to_string(), Value::Number(id as f64)),
            ("ok".to_string(), Value::Bool(true)),
            ("session".to_string(), Value::Number(session as f64)),
            (
                "summary".to_string(),
                Value::Object(vec![
                    (
                        "revisions".to_string(),
                        Value::Number(state.revision as f64),
                    ),
                    (
                        "warm_hits".to_string(),
                        Value::Number(state.warm_hits as f64),
                    ),
                    ("events".to_string(), Value::Number(state.events as f64)),
                    (
                        "realized_steps".to_string(),
                        Value::Number(state.realized_steps as f64),
                    ),
                    (
                        "completed".to_string(),
                        Value::Number(state.completed as f64),
                    ),
                    (
                        "unfinished".to_string(),
                        Value::Number(state.job_map.len() as f64),
                    ),
                ]),
            ),
        ])
        .render()
    }

    /// Renders the `stats` verb response: `{"id": N, "ok": true, "stats":
    /// {...}}` with the full metrics snapshot (see the protocol docs).
    #[must_use]
    pub fn stats_response_line(&self, id: u64) -> String {
        Value::Object(vec![
            ("id".to_string(), id.to_value()),
            ("ok".to_string(), true.to_value()),
            ("stats".to_string(), self.stats_value()),
        ])
        .render()
    }

    /// The full observability snapshot behind the `stats` verb, as a JSON
    /// value: request/error counters, per-stage latency histograms, LP
    /// effort, solve-queue gauges, per-solver counts, per-shard cache
    /// counters and the single-flight table size.
    fn stats_value(&self) -> Value {
        let snap = self.metrics.snapshot();
        let shards = self.cache.shard_stats();
        let cache_entries: u64 = shards.iter().map(|s| s.entries).sum();
        let stages = Value::Object(
            snap.stages
                .iter()
                .map(|(stage, hist)| (stage.name().to_string(), hist.to_value()))
                .collect(),
        );
        let per_solver = Value::Object(
            snap.per_solver
                .iter()
                .map(|(name, count)| (name.clone(), count.to_value()))
                .collect(),
        );
        let shard_values = Value::Array(
            shards
                .iter()
                .map(|s| {
                    Value::Object(vec![
                        ("entries".to_string(), s.entries.to_value()),
                        ("hits".to_string(), s.hits.to_value()),
                        ("misses".to_string(), s.misses.to_value()),
                        ("evictions".to_string(), s.evictions.to_value()),
                    ])
                })
                .collect(),
        );
        Value::Object(vec![
            ("uptime_us".to_string(), snap.uptime_micros.to_value()),
            ("requests".to_string(), snap.requests.to_value()),
            ("errors".to_string(), snap.errors.to_value()),
            (
                "busy_rejections".to_string(),
                snap.busy_rejections.to_value(),
            ),
            (
                "expired_dropped".to_string(),
                snap.expired_dropped.to_value(),
            ),
            ("fresh_solves".to_string(), snap.fresh_solves.to_value()),
            ("warm_hits".to_string(), snap.warm_hits.to_value()),
            ("unknown_base".to_string(), snap.unknown_base.to_value()),
            ("coalesced".to_string(), snap.coalesced.to_value()),
            ("latency_us".to_string(), snap.latency_micros.to_value()),
            (
                "lp".to_string(),
                Value::Object(vec![
                    ("pivots".to_string(), snap.lp_pivots.to_value()),
                    ("solves".to_string(), snap.lp_micros.count().to_value()),
                    ("micros".to_string(), snap.lp_micros.to_value()),
                ]),
            ),
            ("stages".to_string(), stages),
            (
                "queue".to_string(),
                Value::Object(vec![
                    ("depth".to_string(), snap.queue_depth.to_value()),
                    ("capacity".to_string(), snap.queue_capacity.to_value()),
                    (
                        "depth_samples".to_string(),
                        snap.queue_depth_samples.to_value(),
                    ),
                ]),
            ),
            ("per_solver".to_string(), per_solver),
            (
                "cache".to_string(),
                Value::Object(vec![
                    ("entries".to_string(), cache_entries.to_value()),
                    (
                        "hits".to_string(),
                        shards.iter().map(|s| s.hits).sum::<u64>().to_value(),
                    ),
                    (
                        "misses".to_string(),
                        shards.iter().map(|s| s.misses).sum::<u64>().to_value(),
                    ),
                    (
                        "evictions".to_string(),
                        shards.iter().map(|s| s.evictions).sum::<u64>().to_value(),
                    ),
                    ("shards".to_string(), shard_values),
                ]),
            ),
            (
                "flight_in_flight".to_string(),
                self.flight.in_flight().to_value(),
            ),
            (
                "sessions".to_string(),
                Value::Object(vec![
                    ("open".to_string(), (self.sessions.len() as u64).to_value()),
                    ("opened".to_string(), snap.sessions_opened.to_value()),
                    ("closed".to_string(), snap.sessions_closed.to_value()),
                    ("evicted".to_string(), snap.sessions_evicted.to_value()),
                    ("revisions".to_string(), snap.revisions.to_value()),
                    (
                        "revision_warm_hits".to_string(),
                        snap.revision_warm_hits.to_value(),
                    ),
                    ("unknown".to_string(), snap.unknown_session.to_value()),
                    (
                        "revision_latency_us".to_string(),
                        snap.revision_latency.to_value(),
                    ),
                ]),
            ),
        ])
    }

    /// Serves NDJSON requests from `input` to `output` until EOF — the
    /// stdin/stdout transport, also used per-connection by the TCP server.
    /// Lines longer than [`ServiceConfig::max_line_bytes`] are discarded
    /// (never fully buffered) and answered with an error response.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying reader/writer.
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        mut input: R,
        mut output: W,
    ) -> std::io::Result<()> {
        // Odd, process-unique connection token. The pipelined transport
        // derives its tokens from `Arc` allocation addresses (always even),
        // so the two families can never collide; 0 stays the anonymous
        // token of bare `handle_line` calls.
        static NEXT_CONN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let conn = NEXT_CONN
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            .wrapping_mul(2)
            .wrapping_add(1);
        let result = (|| loop {
            let reply = match read_line_bounded(&mut input, self.config.max_line_bytes)? {
                BoundedLine::Eof => return Ok(()),
                BoundedLine::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.handle_line_with_conn(&line, conn)
                }
                BoundedLine::TooLong => {
                    let failure = self.line_too_long_response();
                    serde_json::to_string(&failure).expect("responses always serialise")
                }
            };
            output.write_all(reply.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
        })();
        // The connection is gone (EOF or I/O error) — its sessions go too.
        self.evict_connection_sessions(conn);
        result
    }

    /// Serves NDJSON requests from `input` with **pipelined** execution: the
    /// calling thread only parses lines into jobs on the shared solve queue
    /// (`pool`); solver threads write the responses to `output` as they
    /// finish, possibly **out of submission order** (clients match on `id`).
    ///
    /// Parse failures and oversized lines are answered inline by this
    /// thread; a full queue is answered with a structured `busy` error
    /// (admission control) instead of blocking. On EOF the call drains:
    /// it blocks until every accepted job's response has been written, so a
    /// closing connection never loses responses.
    ///
    /// # Errors
    ///
    /// Propagates read errors; a broken write half ends the loop early with
    /// an error after in-flight jobs complete.
    pub fn serve_lines_pipelined<R: BufRead, W: Write + Send + 'static>(
        &self,
        mut input: R,
        output: W,
        pool: &PoolHandle,
    ) -> std::io::Result<()> {
        let sink = ResponseSink::new(output);
        let conn = crate::pipeline::sink_conn_token(&sink);
        self.metrics.set_queue_capacity(pool.capacity() as u64);
        loop {
            if sink.failed() {
                sink.wait_drained();
                self.evict_connection_sessions(conn);
                return Err(std::io::Error::other("response writer failed"));
            }
            let bounded = match read_line_bounded(&mut input, self.config.max_line_bytes) {
                Ok(bounded) => bounded,
                Err(err) => {
                    sink.wait_drained();
                    self.evict_connection_sessions(conn);
                    return Err(err);
                }
            };
            match bounded {
                BoundedLine::Eof => break,
                BoundedLine::TooLong => {
                    sink.write_response_now(&self.line_too_long_response());
                }
                BoundedLine::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    // Parsing happens on the solver threads (through the
                    // interned-line cache); the reader only tags and
                    // enqueues, so it can never fall behind the socket.
                    match pool.try_submit(Job::from_line(line, &sink)) {
                        Ok(()) => {
                            // One queue-depth sample per accepted submission
                            // feeds the depth gauge and its histogram.
                            self.metrics.record_queue_depth(pool.queue_depth() as u64);
                        }
                        Err(job) => {
                            let id = job.id_hint();
                            drop(job); // releases the in-flight slot
                            self.metrics.record_busy();
                            sink.write_response_now(&Response::busy(id));
                        }
                    }
                }
            }
        }
        sink.wait_drained();
        sink.flush();
        // Drained: every session verb from this connection has been
        // answered, so eviction cannot race an in-flight open.
        self.evict_connection_sessions(conn);
        Ok(())
    }

    fn line_too_long_response(&self) -> Response {
        Response::failure_with(
            0,
            error_kind::BAD_REQUEST,
            format!(
                "request line exceeds the {}-byte service limit",
                self.config.max_line_bytes
            ),
        )
    }
}

/// Result of one bounded line read.
enum BoundedLine {
    /// A complete line (without the terminator), within the limit.
    Line(String),
    /// The line exceeded the limit; the rest of it was consumed and dropped.
    TooLong,
    /// End of stream.
    Eof,
}

/// Reads one `\n`-terminated line, buffering at most `limit` bytes. On
/// overflow the remainder of the line is consumed chunk by chunk (constant
/// memory) so the connection can keep being served.
fn read_line_bounded<R: BufRead>(input: &mut R, limit: usize) -> std::io::Result<BoundedLine> {
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        let buf = input.fill_buf()?;
        if buf.is_empty() {
            return Ok(if discarding {
                BoundedLine::TooLong
            } else if line.is_empty() {
                BoundedLine::Eof
            } else {
                BoundedLine::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |pos| pos + 1);
        if !discarding {
            let body = newline.map_or(buf.len(), |pos| pos);
            if line.len() + body > limit {
                discarding = true;
                line.clear();
            } else {
                line.extend_from_slice(&buf[..body]);
            }
        }
        input.consume(take);
        if newline.is_some() {
            return Ok(if discarding {
                BoundedLine::TooLong
            } else {
                BoundedLine::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::InstanceBuilder;
    use suu_workloads::uniform_matrix;

    fn service() -> SchedulerService {
        SchedulerService::new(ServiceConfig::default())
    }

    fn chain_request(id: u64) -> Request {
        let inst = InstanceBuilder::new(3, 2)
            .probability_matrix(uniform_matrix(3, 2, 0.3, 0.9, 21))
            .chains(&[vec![0, 1, 2]])
            .build()
            .unwrap();
        Request::from_instance(id, &inst)
    }

    #[test]
    fn solve_then_cache_hit() {
        let svc = service();
        let first = svc.handle_request(&chain_request(1));
        assert!(first.ok, "error: {:?}", first.error);
        assert_eq!(first.solver.as_deref(), Some("suu-c"));
        assert!(!first.cache_hit);
        assert!(first.schedule_len > 0);
        assert!(first.lp_value.is_some());

        let second = svc.handle_request(&chain_request(2));
        assert!(second.ok);
        assert!(second.cache_hit);
        assert_eq!(second.id, 2);
        assert_eq!(second.schedule, first.schedule);
        assert_eq!(svc.cache().hits(), 1);
    }

    #[test]
    fn lp_effort_is_reported_and_aggregated_once() {
        let svc = service();
        let first = svc.handle_request(&chain_request(1));
        assert!(first.ok);
        assert_eq!(first.solver.as_deref(), Some("suu-c"));
        let pivots = first.lp_pivots.expect("suu-c reports pivots");
        assert!(pivots > 0);
        assert!(first.lp_micros.is_some());

        // The cache hit repeats the original solve's numbers in the response
        // but must not inflate the aggregate LP counters.
        let second = svc.handle_request(&chain_request(2));
        assert!(second.cache_hit);
        assert_eq!(second.lp_pivots, Some(pivots));
        let snap = svc.metrics().snapshot();
        assert_eq!(snap.lp_pivots, pivots as u64);
        assert_eq!(snap.lp_micros.count(), 1);
    }

    #[test]
    fn forced_solver_is_honoured_and_cached_separately() {
        let svc = service();
        let mut auto = chain_request(1);
        auto.solver = None;
        assert_eq!(svc.handle_request(&auto).solver.as_deref(), Some("suu-c"));

        let mut forced = chain_request(2);
        forced.solver = Some("serial-baseline".to_string());
        let resp = svc.handle_request(&forced);
        assert!(resp.ok);
        assert_eq!(resp.solver.as_deref(), Some("serial-baseline"));
        assert!(
            !resp.cache_hit,
            "forced solver must not reuse suu-c's entry"
        );
    }

    #[test]
    fn unknown_and_unsupported_solvers_error_cleanly() {
        let svc = service();
        let mut req = chain_request(1);
        req.solver = Some("warp-drive".to_string());
        let resp = svc.handle_request(&req);
        assert!(!resp.ok);
        assert!(resp.error.unwrap().contains("unknown solver"));

        // suu-i-obl requires independent jobs; this instance is a chain.
        let mut req = chain_request(2);
        req.solver = Some("suu-i-obl".to_string());
        let resp = svc.handle_request(&req);
        assert!(!resp.ok);
        assert!(resp.error.unwrap().contains("does not support"));
    }

    #[test]
    fn oversized_and_invalid_requests_error_cleanly() {
        let svc = SchedulerService::new(ServiceConfig {
            max_cells: 4,
            ..ServiceConfig::default()
        });
        let resp = svc.handle_request(&chain_request(1)); // 3 x 2 = 6 cells
        assert!(!resp.ok);
        assert!(resp.error.unwrap().contains("too large"));

        let bad = Request {
            id: 2,
            num_jobs: 2,
            num_machines: 1,
            probs: vec![0.5, 0.0],
            edges: Vec::new(),
            solver: None,
            estimate_trials: None,
            options: None,
            base_digest: None,
            delta: None,
        };
        let resp = svc.handle_request(&bad);
        assert!(!resp.ok, "job 1 has no capable machine");
    }

    #[test]
    fn estimate_trials_produces_a_finite_estimate() {
        let svc = service();
        let mut req = chain_request(1);
        req.estimate_trials = Some(20);
        let resp = svc.handle_request(&req);
        assert!(resp.ok);
        let est = resp.estimated_makespan.unwrap();
        assert!(est.is_finite());
        assert!(est >= 1.0, "three dependent jobs need at least three steps");
    }

    #[test]
    fn censored_estimates_are_withheld_not_zero() {
        // A 1-step horizon censors every trial of a 3-job chain; the response
        // must carry no estimate rather than a misleading ~0.
        let svc = SchedulerService::new(ServiceConfig {
            estimate_max_steps: 1,
            ..ServiceConfig::default()
        });
        let mut req = chain_request(1);
        req.estimate_trials = Some(10);
        let resp = svc.handle_request(&req);
        assert!(resp.ok);
        assert_eq!(resp.estimated_makespan, None);
    }

    #[test]
    fn oversized_lines_get_an_error_response_and_service_continues() {
        let svc = SchedulerService::new(ServiceConfig {
            max_line_bytes: 512,
            ..ServiceConfig::default()
        });
        let good = serde_json::to_string(&chain_request(5)).unwrap();
        assert!(good.len() <= 512, "test request must fit the limit");
        let huge = "x".repeat(10_000);
        let input = format!("{huge}\n{good}\n");
        let mut output = Vec::new();
        svc.serve_lines(input.as_bytes(), &mut output).unwrap();
        let output = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = output.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: Response = serde_json::from_str(lines[0]).unwrap();
        assert!(!first.ok);
        assert!(first.error.unwrap().contains("byte"));
        let second: Response = serde_json::from_str(lines[1]).unwrap();
        assert!(second.ok, "service keeps serving after an oversized line");
    }

    #[test]
    fn oversized_final_line_without_newline_is_rejected() {
        let svc = SchedulerService::new(ServiceConfig {
            max_line_bytes: 64,
            ..ServiceConfig::default()
        });
        let input = "y".repeat(1_000); // no trailing newline, over the limit
        let mut output = Vec::new();
        svc.serve_lines(input.as_bytes(), &mut output).unwrap();
        let output = String::from_utf8(output).unwrap();
        let resp: Response = serde_json::from_str(output.lines().next().unwrap()).unwrap();
        assert!(!resp.ok);
    }

    #[test]
    fn handle_line_survives_garbage() {
        let svc = service();
        let out = svc.handle_line("this is not json");
        let resp: Response = serde_json::from_str(&out).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.id, 0);
        assert!(resp.error.unwrap().contains("bad request"));
    }

    #[test]
    fn serve_lines_is_one_response_per_request() {
        let svc = service();
        let req = serde_json::to_string(&chain_request(5)).unwrap();
        let input = format!("{req}\n\nnot-json\n{req}\n");
        let mut output = Vec::new();
        svc.serve_lines(input.as_bytes(), &mut output).unwrap();
        let output = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = output.lines().collect();
        assert_eq!(lines.len(), 3, "blank lines are skipped");
        let first: Response = serde_json::from_str(lines[0]).unwrap();
        let garbage: Response = serde_json::from_str(lines[1]).unwrap();
        let third: Response = serde_json::from_str(lines[2]).unwrap();
        assert!(first.ok && !first.cache_hit);
        assert!(!garbage.ok);
        assert!(third.ok && third.cache_hit);
        assert_eq!(svc.metrics().snapshot().requests, 2);
    }

    fn chain_instance(seed: u64) -> suu_core::SuuInstance {
        InstanceBuilder::new(3, 2)
            .probability_matrix(uniform_matrix(3, 2, 0.3, 0.9, seed))
            .chains(&[vec![0, 1, 2]])
            .build()
            .unwrap()
    }

    #[test]
    fn delta_request_solves_the_edited_instance() {
        use crate::protocol::digest_to_wire;
        use suu_core::InstanceDelta;

        let svc = service();
        let base = chain_instance(21);
        let first = svc.handle_request(&Request::from_instance(1, &base));
        assert!(first.ok, "base solve failed: {:?}", first.error);

        let delta = InstanceDelta {
            set_prob: vec![(0, 0, 0.55)],
            ..InstanceDelta::default()
        };
        let edited = base.apply_delta(&delta).unwrap();
        let reference = svc.handle_request(&Request::from_instance(2, &edited));
        assert!(reference.ok);

        let via_delta = svc.handle_request(&Request::from_delta(3, base.canonical_digest(), delta));
        assert!(via_delta.ok, "delta solve failed: {:?}", via_delta.error);
        assert_eq!(via_delta.schedule, reference.schedule);
        assert_eq!(via_delta.lp_value, reference.lp_value);
        // The delta child is its own cache entry (post-application digest is
        // the coalescing key), so the second arm above already populated it.
        assert!(via_delta.cache_hit);

        // Sanity on the wire form used above.
        assert_eq!(digest_to_wire(base.canonical_digest()).len(), 16);
    }

    #[test]
    fn unknown_and_malformed_bases_error_with_structured_kinds() {
        use suu_core::InstanceDelta;

        let svc = service();
        let missing = svc.handle_request(&Request::from_delta(
            7,
            0xdead_beef_dead_beef,
            InstanceDelta::default(),
        ));
        assert!(!missing.ok);
        assert_eq!(
            missing.error_kind.as_deref(),
            Some(error_kind::UNKNOWN_BASE)
        );
        assert_eq!(svc.metrics().snapshot().unknown_base, 1);

        let mut malformed = Request::from_delta(8, 0, InstanceDelta::default());
        malformed.base_digest = Some("NOT-A-DIGEST".to_string());
        let resp = svc.handle_request(&malformed);
        assert!(!resp.ok);
        assert_eq!(resp.error_kind.as_deref(), Some(error_kind::INVALID_DELTA));
    }

    #[test]
    fn invalid_deltas_error_without_poisoning_the_base() {
        use suu_core::InstanceDelta;

        let svc = service();
        let base = chain_instance(21);
        assert!(svc.handle_request(&Request::from_instance(1, &base)).ok);

        let bad = InstanceDelta {
            set_prob: vec![(99, 0, 0.5)],
            ..InstanceDelta::default()
        };
        let resp = svc.handle_request(&Request::from_delta(2, base.canonical_digest(), bad));
        assert!(!resp.ok);
        assert_eq!(resp.error_kind.as_deref(), Some(error_kind::INVALID_DELTA));

        // The base is still solvable by digest afterwards.
        let again = svc.handle_request(&Request::from_delta(
            3,
            base.canonical_digest(),
            InstanceDelta::default(),
        ));
        assert!(again.ok);
        assert!(again.cache_hit, "empty delta resolves to the cached base");
    }

    #[test]
    fn structural_repeats_warm_start_and_report_it_in_the_trace() {
        use crate::protocol::EngineChoice;

        let svc = service();
        let options = SolveOptions {
            engine: Some(EngineChoice::Revised),
            trace: true,
            ..SolveOptions::default()
        };

        let mut first = Request::from_instance(1, &chain_instance(21));
        first.options = Some(options);
        let cold = svc.handle_request(&first);
        assert!(cold.ok, "cold solve failed: {:?}", cold.error);
        assert!(!cold.trace.as_ref().unwrap().warm, "first solve is cold");

        // Same structure, different probabilities: a fresh solve that can
        // start from the first solve's final basis.
        let mut second = Request::from_instance(2, &chain_instance(22));
        second.options = Some(options);
        let warm = svc.handle_request(&second);
        assert!(warm.ok, "warm solve failed: {:?}", warm.error);
        assert!(
            warm.trace.as_ref().unwrap().warm,
            "structural repeat should warm-start"
        );
        assert_eq!(svc.metrics().snapshot().warm_hits, 1);

        // With warm starts disabled the same traffic stays cold.
        let cold_svc = SchedulerService::new(ServiceConfig {
            warm_starts: false,
            ..ServiceConfig::default()
        });
        for (id, seed) in [(1, 21), (2, 22)] {
            let mut req = Request::from_instance(id, &chain_instance(seed));
            req.options = Some(options);
            let resp = cold_svc.handle_request(&req);
            assert!(resp.ok);
            assert!(!resp.trace.as_ref().unwrap().warm);
        }
        assert_eq!(cold_svc.metrics().snapshot().warm_hits, 0);

        // Warm and cold services computed identical artifacts.
        let warm_line = svc.handle_request(&{
            let mut req = Request::from_instance(9, &chain_instance(22));
            req.options = Some(options);
            req
        });
        let cold_line = cold_svc.handle_request(&{
            let mut req = Request::from_instance(9, &chain_instance(22));
            req.options = Some(options);
            req
        });
        // A warm start may land on a different optimal vertex than the cold
        // pivot path (degenerate optima), so the schedules need not be
        // byte-identical — the parity contract is on the objective.
        let warm_obj = warm_line.lp_value.expect("chains solve reports lp_value");
        let cold_obj = cold_line.lp_value.expect("chains solve reports lp_value");
        assert!(
            (warm_obj - cold_obj).abs() <= 1e-9 * cold_obj.abs().max(1.0),
            "warm/cold objective mismatch: {warm_obj} vs {cold_obj}"
        );
    }
}
